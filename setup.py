"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` in offline environments where
the ``wheel`` package (required by the PEP 517 editable path) is absent.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
