"""Dataset caching: persist extracted ACFG corpora to disk.

The paper spends 17 hours extracting MSKCFG's ACFGs and then reuses
them; this module gives the same workflow: write a
:class:`MalwareDataset` to a directory once, reload it instantly in
later sessions.  Format: one compact ACFG text record per sample (see
:mod:`repro.cfg.serialization`) plus a ``manifest.json`` with the family
table and sample order.

A 17-hour artifact deserves crash safety, so writes are atomic: the
whole corpus is staged in a sibling temp directory and swapped into
place with directory renames.  A kill mid-save leaves either the old
cache or the new one, never a torn mix — and saving a smaller corpus
over a larger one cannot leak stale ``*.acfg`` records, because the
previous directory is replaced wholesale.  Integrity is checked too:
``manifest.json`` carries a ``format_version`` and a per-record sha256,
verified on load (a corrupt record raises
:class:`~repro.exceptions.DatasetError` naming the file).  Legacy
checksum-less manifests still load, with a warning.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import warnings
from typing import List

from repro.cfg.serialization import acfg_from_text, acfg_to_text
from repro.datasets.loader import MalwareDataset
from repro.exceptions import DatasetError
from repro.features.acfg import ACFG

_MANIFEST = "manifest.json"

#: Manifest schema version.  Version 2 added ``format_version`` itself
#: and per-record ``sha256`` checksums; manifests without the field are
#: treated as legacy version 1.
_FORMAT_VERSION = 2


def _record_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def save_dataset(dataset: MalwareDataset, directory: str) -> None:
    """Write ``dataset`` to ``directory`` atomically.

    The corpus is staged in a temp directory next to the target and
    renamed into place, replacing any previous cache as a unit.
    """
    target = os.path.abspath(directory)
    parent = os.path.dirname(target)
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(prefix=".tmp-save-", dir=parent)
    try:
        records = []
        for index, acfg in enumerate(dataset.acfgs):
            filename = f"{index:06d}.acfg"
            text = acfg_to_text(acfg.adjacency, acfg.attributes)
            with open(os.path.join(staging, filename), "w",
                      encoding="utf-8") as fh:
                fh.write(text)
            records.append({
                "file": filename,
                "label": acfg.label,
                "name": acfg.name,
                "sha256": _record_digest(text),
            })
        manifest = {
            "format_version": _FORMAT_VERSION,
            "name": dataset.name,
            "family_names": dataset.family_names,
            "samples": records,
        }
        with open(os.path.join(staging, _MANIFEST), "w",
                  encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)

        if os.path.isdir(target):
            # A directory cannot be renamed over a non-empty directory,
            # so retire the old cache first; a crash between the two
            # renames costs the old cache but never tears the new one.
            retired = tempfile.mkdtemp(prefix=".tmp-old-", dir=parent)
            os.rename(target, os.path.join(retired, "cache"))
            os.rename(staging, target)
            shutil.rmtree(retired, ignore_errors=True)
        else:
            os.rename(staging, target)
    except BaseException:  # repro: allow[broad-except] — staging cleanup, re-raised
        shutil.rmtree(staging, ignore_errors=True)
        raise


def _validated_label(record: dict, num_families: int):
    """The record's label, checked against the family table.

    An out-of-range or non-integer label would otherwise surface much
    later as an opaque index error inside a training run.
    """
    label = record["label"]
    if not isinstance(label, int) or isinstance(label, bool):
        raise DatasetError(
            f"sample {record.get('name', record.get('file', '?'))!r} has a "
            f"non-integer label {label!r}"
        )
    if not 0 <= label < num_families:
        raise DatasetError(
            f"sample {record.get('name', record.get('file', '?'))!r} has "
            f"label {label}, outside the {num_families}-family table"
        )
    return label


def load_dataset(directory: str) -> MalwareDataset:
    """Reload a dataset written by :func:`save_dataset`.

    Verifies the per-record checksums when the manifest carries them and
    validates every label against the family table, so corruption is
    reported here — naming the offending file — rather than surfacing as
    an index error mid-training.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise DatasetError(f"cannot read manifest {manifest_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DatasetError(f"corrupt manifest {manifest_path}: {exc}") from exc

    version = manifest.get("format_version", 1)
    if version not in (1, _FORMAT_VERSION):
        raise DatasetError(
            f"unsupported cache format_version {version!r} in "
            f"{manifest_path} (this build reads versions 1-{_FORMAT_VERSION})"
        )
    if version == 1:
        warnings.warn(
            f"loading legacy checksum-less dataset cache at {directory}; "
            "re-save it to enable integrity verification",
            stacklevel=2,
        )

    family_names = manifest["family_names"]
    acfgs: List[ACFG] = []
    for record in manifest["samples"]:
        label = _validated_label(record, len(family_names))
        path = os.path.join(directory, record["file"])
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise DatasetError(f"missing sample file {path}: {exc}") from exc
        expected = record.get("sha256")
        if expected is not None and _record_digest(text) != expected:
            raise DatasetError(
                f"corrupt sample file {path}: sha256 mismatch against the "
                "manifest (cache was modified or torn after saving)"
            )
        adjacency, attributes, _ = acfg_from_text(text)
        acfgs.append(
            ACFG(
                adjacency=adjacency,
                attributes=attributes,
                label=label,
                name=record["name"],
            )
        )
    return MalwareDataset(
        acfgs=acfgs,
        family_names=family_names,
        name=manifest.get("name", ""),
    )
