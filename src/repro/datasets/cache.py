"""Dataset caching: persist extracted ACFG corpora to disk.

The paper spends 17 hours extracting MSKCFG's ACFGs and then reuses
them; this module gives the same workflow: write a
:class:`MalwareDataset` to a directory once, reload it instantly in
later sessions.  Format: one compact ACFG text record per sample (see
:mod:`repro.cfg.serialization`) plus a ``manifest.json`` with the family
table and sample order.
"""

from __future__ import annotations

import json
import os
from typing import List

from repro.cfg.serialization import acfg_from_text, acfg_to_text
from repro.datasets.loader import MalwareDataset
from repro.exceptions import DatasetError
from repro.features.acfg import ACFG

_MANIFEST = "manifest.json"


def save_dataset(dataset: MalwareDataset, directory: str) -> None:
    """Write ``dataset`` to ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    records = []
    for index, acfg in enumerate(dataset.acfgs):
        filename = f"{index:06d}.acfg"
        with open(os.path.join(directory, filename), "w", encoding="utf-8") as fh:
            fh.write(acfg_to_text(acfg.adjacency, acfg.attributes))
        records.append({
            "file": filename,
            "label": acfg.label,
            "name": acfg.name,
        })
    manifest = {
        "name": dataset.name,
        "family_names": dataset.family_names,
        "samples": records,
    }
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)


def load_dataset(directory: str) -> MalwareDataset:
    """Reload a dataset written by :func:`save_dataset`."""
    manifest_path = os.path.join(directory, _MANIFEST)
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except OSError as exc:
        raise DatasetError(f"cannot read manifest {manifest_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DatasetError(f"corrupt manifest {manifest_path}: {exc}") from exc

    acfgs: List[ACFG] = []
    for record in manifest["samples"]:
        path = os.path.join(directory, record["file"])
        try:
            with open(path, "r", encoding="utf-8") as fh:
                adjacency, attributes, _ = acfg_from_text(fh.read())
        except OSError as exc:
            raise DatasetError(f"missing sample file {path}: {exc}") from exc
        acfgs.append(
            ACFG(
                adjacency=adjacency,
                attributes=attributes,
                label=record["label"],
                name=record["name"],
            )
        )
    return MalwareDataset(
        acfgs=acfgs,
        family_names=manifest["family_names"],
        name=manifest.get("name", ""),
    )
