"""Synthetic YANCFG corpus (Section V-A, Figure 8).

The real YANCFG dataset contains 16,351 *pre-extracted* CFGs (no raw
code) across 12 malware families plus Benign, labelled by majority vote
over five AV scanners — a noisy process.  The paper observes:

* overall scores are lower than on MSKCFG,
* small families (Ldpinch, Lmir, Sdbot, Rbot) score markedly worse,
  with Rbot/Sdbot and Ldpinch/Lmir confusions (all four are classic
  IRC-bot / password-stealer lineages with shared codebases).

We reproduce those generating mechanisms directly:

* samples are delivered as CFGs (the dataset API exposes graphs, not
  listings — the asm is discarded after extraction, mirroring how YANCFG
  was distributed),
* profile pairs Rbot<->Sdbot and Ldpinch<->Lmir are *near-duplicates*
  with small parameter deltas,
* a fraction of the labels inside each confusable pair are swapped,
  simulating AV majority-vote noise.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.cfg.builder import build_cfg_from_text
from repro.datasets.loader import MalwareDataset
from repro.datasets.synthetic_asm import FamilyProfile, ProgramGenerator
from repro.exceptions import DatasetError
from repro.features.acfg import ACFG

#: Families and approximate sample counts (Figure 8 shape).
YANCFG_FAMILY_COUNTS: Dict[str, int] = {
    "Bagle": 100,
    "Benign": 1800,
    "Bifrose": 1300,
    "Hupigon": 5300,
    "Koobface": 300,
    "Ldpinch": 160,
    "Lmir": 180,
    "Rbot": 2200,
    "Sdbot": 700,
    "Swizzor": 1300,
    "Vundo": 1500,
    "Zbot": 700,
    "Zlob": 800,
}

YANCFG_FAMILIES: List[str] = list(YANCFG_FAMILY_COUNTS)

#: Pairs of families whose labels the AV vote confuses, with swap rates.
LABEL_NOISE_PAIRS: List[Tuple[str, str, float]] = [
    ("Rbot", "Sdbot", 0.10),
    ("Ldpinch", "Lmir", 0.08),
]

_BASE_BOT = dict(
    num_functions=(5, 9),
    blocks_per_function=(5, 11),
    block_length=(3, 9),
    loop_probability=0.30,
    branch_probability=0.35,
    call_probability=0.20,
    dispatch_probability=0.25,
    dispatch_fanout=(4, 7),
    weight_mov=2.5, weight_arith=1.8, weight_stack=1.2,
    weight_compare=2.0, weight_string=0.3,
    numeric_constant_rate=0.45,
)

_BASE_STEALER = dict(
    num_functions=(3, 5),
    blocks_per_function=(3, 6),
    block_length=(4, 10),
    loop_probability=0.15,
    branch_probability=0.40,
    call_probability=0.30,
    weight_mov=3.5, weight_arith=1.0, weight_stack=1.5,
    weight_compare=1.2, weight_string=1.2,
    numeric_constant_rate=0.5,
)

YANCFG_PROFILES: Dict[str, FamilyProfile] = {
    "Bagle": FamilyProfile(
        name="Bagle",
        num_functions=(3, 5), blocks_per_function=(3, 6), block_length=(6, 12),
        loop_probability=0.10, branch_probability=0.25, call_probability=0.35,
        data_blocks=(2, 4),
        weight_mov=2.0, weight_arith=0.8, weight_stack=2.0,
        weight_compare=0.8, weight_string=2.5, numeric_constant_rate=0.3,
    ),
    "Benign": FamilyProfile(
        name="Benign",
        num_functions=(10, 18), blocks_per_function=(4, 10), block_length=(4, 12),
        loop_probability=0.20, branch_probability=0.50, call_probability=0.40,
        weight_mov=4.0, weight_arith=1.5, weight_stack=2.5,
        weight_compare=1.5, weight_string=0.2, numeric_constant_rate=0.35,
    ),
    "Bifrose": FamilyProfile(
        name="Bifrose",
        num_functions=(5, 8), blocks_per_function=(6, 12), block_length=(3, 8),
        loop_probability=0.35, branch_probability=0.30, call_probability=0.15,
        dispatch_probability=0.15, weight_mov=2.0, weight_arith=2.8,
        weight_stack=1.0, weight_compare=1.5, weight_string=0.2,
        numeric_constant_rate=0.6,
    ),
    "Hupigon": FamilyProfile(
        name="Hupigon",
        num_functions=(7, 12), blocks_per_function=(5, 10), block_length=(4, 10),
        loop_probability=0.22, branch_probability=0.45, call_probability=0.30,
        junk_probability=0.15, weight_mov=3.0, weight_arith=2.0,
        weight_stack=1.5, weight_compare=1.5, weight_string=0.3,
        numeric_constant_rate=0.5,
    ),
    "Koobface": FamilyProfile(
        name="Koobface",
        num_functions=(4, 6), blocks_per_function=(3, 7), block_length=(5, 14),
        loop_probability=0.12, branch_probability=0.25, call_probability=0.45,
        weight_mov=3.0, weight_arith=0.8, weight_stack=3.0,
        weight_compare=0.8, weight_string=1.8, numeric_constant_rate=0.25,
    ),
    "Ldpinch": FamilyProfile(name="Ldpinch", **_BASE_STEALER),
    "Lmir": FamilyProfile(
        name="Lmir",
        **{**_BASE_STEALER, "call_probability": 0.18,
           "loop_probability": 0.28, "weight_string": 0.6,
           "weight_arith": 2.0, "weight_stack": 0.8,
           "block_length": (3, 7), "numeric_constant_rate": 0.65},
    ),
    "Rbot": FamilyProfile(name="Rbot", **_BASE_BOT),
    "Sdbot": FamilyProfile(
        name="Sdbot",
        **{**_BASE_BOT, "dispatch_probability": 0.15,
           "loop_probability": 0.24, "weight_arith": 2.4,
           "junk_probability": 0.10, "numeric_constant_rate": 0.55},
    ),
    "Swizzor": FamilyProfile(
        name="Swizzor",
        num_functions=(2, 4), blocks_per_function=(8, 16), block_length=(2, 6),
        loop_probability=0.55, branch_probability=0.20, call_probability=0.05,
        junk_probability=0.50, weight_mov=1.5, weight_arith=4.5,
        weight_stack=0.5, weight_compare=1.0, weight_string=0.1,
        numeric_constant_rate=0.8,
    ),
    "Vundo": FamilyProfile(
        name="Vundo",
        num_functions=(2, 5), blocks_per_function=(3, 7), block_length=(5, 14),
        loop_probability=0.45, branch_probability=0.25, call_probability=0.08,
        weight_mov=1.5, weight_arith=4.5, weight_stack=0.8,
        weight_compare=1.0, weight_string=0.1, numeric_constant_rate=0.75,
    ),
    "Zbot": FamilyProfile(
        name="Zbot",
        num_functions=(6, 9), blocks_per_function=(4, 9), block_length=(3, 7),
        loop_probability=0.25, branch_probability=0.40, call_probability=0.25,
        dispatch_probability=0.30, dispatch_fanout=(5, 9),
        data_blocks=(1, 3), weight_mov=3.5, weight_arith=2.2,
        weight_stack=1.2, weight_compare=2.5, weight_string=0.4,
        numeric_constant_rate=0.75,
    ),
    "Zlob": FamilyProfile(
        name="Zlob",
        num_functions=(4, 7), blocks_per_function=(3, 6), block_length=(6, 14),
        loop_probability=0.15, branch_probability=0.30, call_probability=0.20,
        data_blocks=(1, 2), weight_mov=4.0, weight_arith=1.2,
        weight_stack=1.0, weight_compare=0.8, weight_string=1.4,
        numeric_constant_rate=0.45,
    ),
}


def family_sample_counts(total: int, minimum_per_family: int = 4) -> Dict[str, int]:
    """Scale the Figure 8 proportions down to ``total`` samples."""
    real_total = sum(YANCFG_FAMILY_COUNTS.values())
    return {
        name: max(minimum_per_family, round(total * real / real_total))
        for name, real in YANCFG_FAMILY_COUNTS.items()
    }


def _apply_label_noise(
    dataset_labels: List[int], families: List[str], rng: np.random.Generator
) -> List[int]:
    """Swap labels inside each confusable pair at the configured rate."""
    index_of = {name: i for i, name in enumerate(families)}
    noisy = list(dataset_labels)
    for family_a, family_b, rate in LABEL_NOISE_PAIRS:
        a, b = index_of[family_a], index_of[family_b]
        for position, label in enumerate(noisy):
            if label in (a, b) and rng.random() < rate:
                noisy[position] = b if label == a else a
    return noisy


def generate_yancfg_dataset(
    total: int = 300,
    seed: int = 0,
    minimum_per_family: int = 4,
    label_noise: bool = True,
) -> MalwareDataset:
    """Generate the synthetic YANCFG corpus of pre-extracted ACFGs."""
    if total < len(YANCFG_FAMILIES):
        raise DatasetError(
            f"total={total} too small for {len(YANCFG_FAMILIES)} families"
        )
    counts = family_sample_counts(total, minimum_per_family)
    names: List[str] = []
    acfgs_raw: List[ACFG] = []
    labels: List[int] = []
    for label, family in enumerate(YANCFG_FAMILIES):
        profile = YANCFG_PROFILES[family]
        for index in range(counts[family]):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, 7000 + label, index])
            )
            listing = ProgramGenerator(profile, rng).generate_listing()
            name = f"{family}_{index:05d}"
            cfg = build_cfg_from_text(listing, name=name)
            acfgs_raw.append(ACFG.from_cfg(cfg))
            names.append(name)
            labels.append(label)

    if label_noise:
        noise_rng = np.random.default_rng(np.random.SeedSequence([seed, 99991]))
        labels = _apply_label_noise(labels, YANCFG_FAMILIES, noise_rng)

    acfgs = [
        ACFG(
            adjacency=acfg.adjacency,
            attributes=acfg.attributes,
            label=label,
            name=name,
        )
        for acfg, label, name in zip(acfgs_raw, labels, names)
    ]
    return MalwareDataset(
        acfgs=acfgs, family_names=list(YANCFG_FAMILIES), name="YANCFG-synthetic"
    )
