"""Malware corpora: synthetic MSKCFG and YANCFG substitutes plus loaders.

See DESIGN.md section 2 for why the corpora are synthetic and how the
substitution preserves the paper's experimental shape.
"""

from repro.datasets.loader import MalwareDataset
from repro.datasets.mskcfg import (
    MSKCFG_FAMILIES,
    MSKCFG_FAMILY_COUNTS,
    MSKCFG_PROFILES,
    generate_mskcfg_dataset,
    generate_mskcfg_listings,
)
from repro.datasets.synthetic_asm import (
    FamilyProfile,
    GenBlock,
    GenInstruction,
    GenProgram,
    ProgramGenerator,
    generate_family_listing,
)
from repro.datasets.yancfg import (
    YANCFG_FAMILIES,
    YANCFG_FAMILY_COUNTS,
    YANCFG_PROFILES,
    generate_yancfg_dataset,
)

__all__ = [
    "FamilyProfile",
    "GenBlock",
    "GenInstruction",
    "GenProgram",
    "MSKCFG_FAMILIES",
    "MSKCFG_FAMILY_COUNTS",
    "MSKCFG_PROFILES",
    "MalwareDataset",
    "ProgramGenerator",
    "YANCFG_FAMILIES",
    "YANCFG_FAMILY_COUNTS",
    "YANCFG_PROFILES",
    "generate_family_listing",
    "generate_mskcfg_dataset",
    "generate_mskcfg_listings",
    "generate_yancfg_dataset",
]
