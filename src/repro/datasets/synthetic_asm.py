"""Synthetic malware assembly generator.

The MSKCFG corpus (Kaggle 2015) cannot be redistributed and is not
available offline, so this module generates IDA-style ``.asm`` listings
with *family-conditioned structural signatures*.  The generator works at
the level MAGIC actually observes — control-flow structure and
instruction-category mix — so a family is characterised by:

* how many functions it has and how deeply they call each other,
* its loop density (back edges), branch density (diamonds),
  and dispatch-table usage (star-shaped switch blocks),
* the instruction mix inside blocks (arithmetic-heavy packers,
  mov-heavy droppers, call-heavy downloaders...),
* junk-code obfuscation (opaque predicates, dead arithmetic).

Programs are built as a block-level IR first (functions -> blocks ->
pseudo-instructions with symbolic branch targets), then laid out at
concrete addresses and rendered as parseable listing text.  The same IR
can also be lowered directly to a :class:`ControlFlowGraph`, which the
YANCFG generator uses to mimic that dataset's "pre-extracted CFGs only"
distribution shape.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import DatasetError

# ----------------------------------------------------------------------
# block-level IR

#: A pseudo-operand marking a branch to another block: ("->", block_id).
BranchTarget = Tuple[str, int]


@dataclasses.dataclass
class GenInstruction:
    mnemonic: str
    operands: Tuple = ()


@dataclasses.dataclass
class GenBlock:
    """IR block: body instructions plus an explicit terminator."""

    block_id: int
    body: List[GenInstruction] = dataclasses.field(default_factory=list)
    #: terminator: one of ("fall",), ("jmp", target), ("jcc", mnem, target),
    #: ("ret",), ("call_fall", target)
    terminator: Tuple = ("fall",)


@dataclasses.dataclass
class GenProgram:
    """IR program: blocks in layout order."""

    blocks: List[GenBlock] = dataclasses.field(default_factory=list)

    def new_block(self) -> GenBlock:
        block = GenBlock(block_id=len(self.blocks))
        self.blocks.append(block)
        return block


# ----------------------------------------------------------------------
# family profiles

@dataclasses.dataclass(frozen=True)
class FamilyProfile:
    """Structural signature of one malware family.

    All ``*_range`` values are inclusive ``(low, high)`` bounds sampled
    uniformly per program, so samples within a family vary while staying
    recognisable.
    """

    name: str
    num_functions: Tuple[int, int] = (3, 6)
    blocks_per_function: Tuple[int, int] = (4, 10)
    block_length: Tuple[int, int] = (3, 10)
    loop_probability: float = 0.2
    branch_probability: float = 0.4
    call_probability: float = 0.15
    dispatch_probability: float = 0.0
    dispatch_fanout: Tuple[int, int] = (3, 6)
    junk_probability: float = 0.0
    data_blocks: Tuple[int, int] = (0, 1)
    # Instruction-mix weights (relative) for block bodies.
    weight_mov: float = 3.0
    weight_arith: float = 2.0
    weight_stack: float = 1.0
    weight_compare: float = 1.0
    weight_string: float = 0.2
    numeric_constant_rate: float = 0.5


@dataclasses.dataclass(frozen=True)
class ObfuscationKnobs:
    """Per-sample overrides of a profile's obfuscation parameters.

    The generator's obfuscation behaviours — junk-code insertion (opaque
    predicates + dead arithmetic) and dispatch-table padding — are
    normally fixed per family by its :class:`FamilyProfile`.  Knobs
    override just those fields for *one* sample, leaving the structural
    signature (functions, loops, branches, instruction mix) untouched.
    ``None`` fields keep the profile's value.

    This is the lever of the problem-space attack
    (:mod:`repro.adv.asmattack`): an adversary cannot edit extracted
    features, but can re-obfuscate the binary and ship the variant.
    Junk insertion consumes no RNG draws beyond its gate, so raising
    ``junk_probability`` keeps the rest of the program bit-identical;
    dispatch overrides legitimately reshape downstream control flow.
    """

    junk_probability: Optional[float] = None
    dispatch_probability: Optional[float] = None
    dispatch_fanout: Optional[Tuple[int, int]] = None

    def apply(self, profile: FamilyProfile) -> FamilyProfile:
        """``profile`` with the non-``None`` knob fields replaced."""
        overrides = {
            name: value
            for name, value in (
                ("junk_probability", self.junk_probability),
                ("dispatch_probability", self.dispatch_probability),
                ("dispatch_fanout", self.dispatch_fanout),
            )
            if value is not None
        }
        if not overrides:
            return profile
        return dataclasses.replace(profile, **overrides)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the non-``None`` overrides."""
        payload: Dict[str, object] = {}
        if self.junk_probability is not None:
            payload["junk_probability"] = self.junk_probability
        if self.dispatch_probability is not None:
            payload["dispatch_probability"] = self.dispatch_probability
        if self.dispatch_fanout is not None:
            payload["dispatch_fanout"] = list(self.dispatch_fanout)
        return payload


_REGISTERS = ("eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp")
_MOV_MNEMONICS = ("mov", "movzx", "lea", "xchg")
_ARITH_MNEMONICS = ("add", "sub", "xor", "and", "or", "shl", "shr", "imul", "inc", "dec")
_STACK_MNEMONICS = ("push", "pop")
_COMPARE_MNEMONICS = ("cmp", "test")
_STRING_MNEMONICS = ("movsb", "scasb", "cmpsb")
_JCC_MNEMONICS = ("jz", "jnz", "je", "jne", "ja", "jb", "jge", "jle", "js", "jns")


class _BodyEmitter:
    """Samples block-body instructions according to a profile's mix."""

    def __init__(self, profile: FamilyProfile, rng: np.random.Generator) -> None:
        self._rng = rng
        self._profile = profile
        kinds = ["mov", "arith", "stack", "compare", "string"]
        weights = np.array([
            profile.weight_mov,
            profile.weight_arith,
            profile.weight_stack,
            profile.weight_compare,
            profile.weight_string,
        ])
        self._kinds = kinds
        self._weights = weights / weights.sum()

    def _register(self) -> str:
        return str(self._rng.choice(_REGISTERS))

    def _value_operand(self) -> str:
        if self._rng.random() < self._profile.numeric_constant_rate:
            return f"{int(self._rng.integers(0, 0xFFFF)):#x}"
        return self._register()

    def emit(self, count: int) -> List[GenInstruction]:
        instructions: List[GenInstruction] = []
        for _ in range(count):
            kind = self._rng.choice(self._kinds, p=self._weights)
            if kind == "mov":
                mnemonic = str(self._rng.choice(_MOV_MNEMONICS))
                instructions.append(
                    GenInstruction(mnemonic, (self._register(), self._value_operand()))
                )
            elif kind == "arith":
                mnemonic = str(self._rng.choice(_ARITH_MNEMONICS))
                if mnemonic in ("inc", "dec"):
                    instructions.append(GenInstruction(mnemonic, (self._register(),)))
                else:
                    instructions.append(
                        GenInstruction(mnemonic, (self._register(), self._value_operand()))
                    )
            elif kind == "stack":
                mnemonic = str(self._rng.choice(_STACK_MNEMONICS))
                operand = (
                    self._value_operand() if mnemonic == "push" else self._register()
                )
                instructions.append(GenInstruction(mnemonic, (operand,)))
            elif kind == "compare":
                mnemonic = str(self._rng.choice(_COMPARE_MNEMONICS))
                instructions.append(
                    GenInstruction(mnemonic, (self._register(), self._value_operand()))
                )
            else:
                instructions.append(GenInstruction(str(self._rng.choice(_STRING_MNEMONICS))))
        return instructions


class ProgramGenerator:
    """Generates IR programs (and listings) for one family profile."""

    def __init__(self, profile: FamilyProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self._rng = rng
        self._emitter = _BodyEmitter(profile, rng)

    # -- IR construction -------------------------------------------------

    def generate_ir(self) -> GenProgram:
        """Build the block-level IR of one program."""
        profile = self.profile
        rng = self._rng
        program = GenProgram()
        num_functions = int(rng.integers(profile.num_functions[0], profile.num_functions[1] + 1))
        entry_blocks: List[int] = []

        # First pass: create each function's blocks so calls can target
        # any function (including forward references).
        function_spans: List[List[GenBlock]] = []
        for _ in range(num_functions):
            count = int(rng.integers(
                profile.blocks_per_function[0], profile.blocks_per_function[1] + 1
            ))
            span = [program.new_block() for _ in range(max(2, count))]
            function_spans.append(span)
            entry_blocks.append(span[0].block_id)

        for span in function_spans:
            self._wire_function(span, entry_blocks)

        self._append_data_blocks(program)
        return program

    def _wire_function(self, span: List[GenBlock], entry_blocks: List[int]) -> None:
        profile = self.profile
        rng = self._rng
        last_index = len(span) - 1
        for position, block in enumerate(span):
            length = int(rng.integers(profile.block_length[0], profile.block_length[1] + 1))
            block.body = self._emitter.emit(length)

            if rng.random() < profile.call_probability and len(entry_blocks) > 1:
                callee = int(rng.choice(entry_blocks))
                block.body.append(GenInstruction("call", (("->", callee),)))

            if rng.random() < profile.junk_probability:
                # Opaque predicate: a compare that always falls the same
                # way, plus dead arithmetic — classic junk-code padding.
                block.body.extend([
                    GenInstruction("xor", ("eax", "eax")),
                    GenInstruction("cmp", ("eax", "0x0")),
                    GenInstruction("add", ("ebx", "0x0")),
                ])

            if position == last_index:
                block.terminator = ("ret",)
                continue

            if rng.random() < profile.dispatch_probability and last_index - position > 2:
                fanout = int(rng.integers(profile.dispatch_fanout[0], profile.dispatch_fanout[1] + 1))
                targets = rng.choice(
                    [b.block_id for b in span[position + 1:]],
                    size=min(fanout, last_index - position),
                    replace=False,
                )
                # A dispatch chain: successive conditional jumps fanning
                # out to many targets (the CFG shape of a switch).
                block.terminator = ("dispatch", tuple(int(t) for t in targets))
            elif rng.random() < profile.loop_probability and position > 0:
                back_target = span[int(rng.integers(0, position))].block_id
                jcc = str(rng.choice(_JCC_MNEMONICS))
                block.terminator = ("jcc", jcc, back_target)
            elif rng.random() < profile.branch_probability:
                forward = span[int(rng.integers(position + 1, last_index + 1))].block_id
                jcc = str(rng.choice(_JCC_MNEMONICS))
                block.terminator = ("jcc", jcc, forward)
            elif rng.random() < 0.15:
                forward = span[int(rng.integers(position + 1, last_index + 1))].block_id
                block.terminator = ("jmp", forward)
            else:
                block.terminator = ("fall",)

    def _append_data_blocks(self, program: GenProgram) -> None:
        profile = self.profile
        rng = self._rng
        low, high = profile.data_blocks
        for _ in range(int(rng.integers(low, high + 1))):
            block = program.new_block()
            for _ in range(int(rng.integers(2, 8))):
                value = int(rng.integers(0, 0xFF))
                block.body.append(GenInstruction("db", (f"{value:#x}",)))
            block.terminator = ("ret",)

    # -- lowering to listing text -----------------------------------------

    def render_listing(self, program: GenProgram, base_address: int = 0x401000) -> str:
        """Lay blocks out at concrete addresses and render listing text."""
        addresses = self._layout(program, base_address)
        lines: List[str] = []
        for block in program.blocks:
            block_addr = addresses[block.block_id]
            lines.append(f"loc_{block_addr:X}:")
            addr = block_addr
            for inst in block.body:
                operands = ", ".join(
                    self._render_operand(op, addresses) for op in inst.operands
                )
                text = f".text:{addr:08X} {inst.mnemonic}"
                if operands:
                    text += f" {operands}"
                lines.append(text)
                addr += 1
            lines.extend(self._render_terminator(block, addr, addresses))
        return "\n".join(lines) + "\n"

    def _layout(self, program: GenProgram, base_address: int) -> Dict[int, int]:
        addresses: Dict[int, int] = {}
        addr = base_address
        for block in program.blocks:
            addresses[block.block_id] = addr
            addr += len(block.body) + self._terminator_length(block)
        return addresses

    @staticmethod
    def _terminator_length(block: GenBlock) -> int:
        kind = block.terminator[0]
        if kind == "fall":
            return 0
        if kind == "dispatch":
            return len(block.terminator[1])
        return 1

    @staticmethod
    def _render_operand(operand, addresses: Dict[int, int]) -> str:
        if isinstance(operand, tuple) and len(operand) == 2 and operand[0] == "->":
            return f"loc_{addresses[operand[1]]:X}"
        return str(operand)

    def _render_terminator(
        self, block: GenBlock, addr: int, addresses: Dict[int, int]
    ) -> List[str]:
        kind = block.terminator[0]
        if kind == "fall":
            return []
        if kind == "ret":
            return [f".text:{addr:08X} retn"]
        if kind == "jmp":
            target = addresses[block.terminator[1]]
            return [f".text:{addr:08X} jmp loc_{target:X}"]
        if kind == "jcc":
            _, mnemonic, target_id = block.terminator
            target = addresses[target_id]
            return [f".text:{addr:08X} {mnemonic} loc_{target:X}"]
        if kind == "dispatch":
            lines = []
            for offset, target_id in enumerate(block.terminator[1]):
                target = addresses[target_id]
                mnemonic = _JCC_MNEMONICS[offset % len(_JCC_MNEMONICS)]
                lines.append(f".text:{addr + offset:08X} {mnemonic} loc_{target:X}")
            return lines
        raise DatasetError(f"unknown terminator kind {kind!r}")

    def generate_listing(self, base_address: int = 0x401000) -> str:
        """Generate one program and render it in a single call."""
        return self.render_listing(self.generate_ir(), base_address=base_address)


def generate_family_listing(
    profile: FamilyProfile, seed: int, base_address: int = 0x401000
) -> str:
    """Convenience: one listing for ``profile`` from a fixed seed."""
    generator = ProgramGenerator(profile, np.random.default_rng(seed))
    return generator.generate_listing(base_address=base_address)
