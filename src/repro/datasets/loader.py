"""Dataset container, stratified splitting, and k-fold cross validation.

The paper evaluates with five-fold cross validation over imbalanced
family distributions (Figures 7 and 8), so splits here are *stratified*:
every fold preserves per-family proportions, and every family with at
least ``n_splits`` members appears in every fold.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.features.acfg import ACFG


@dataclasses.dataclass
class MalwareDataset:
    """Labelled ACFGs plus the family-name table.

    ``acfgs[i].label`` indexes into ``family_names``.
    """

    acfgs: List[ACFG]
    family_names: List[str]
    name: str = ""

    def __post_init__(self) -> None:
        for acfg in self.acfgs:
            if acfg.label is None:
                raise DatasetError(f"sample {acfg.name!r} has no label")
            if not 0 <= acfg.label < len(self.family_names):
                raise DatasetError(
                    f"sample {acfg.name!r} label {acfg.label} out of range "
                    f"for {len(self.family_names)} families"
                )

    def __len__(self) -> int:
        return len(self.acfgs)

    def __getitem__(self, index: int) -> ACFG:
        return self.acfgs[index]

    @property
    def num_classes(self) -> int:
        return len(self.family_names)

    def labels(self) -> np.ndarray:
        return np.array([acfg.label for acfg in self.acfgs], dtype=np.int64)

    def graph_sizes(self) -> List[int]:
        return [acfg.num_vertices for acfg in self.acfgs]

    def family_counts(self) -> Dict[str, int]:
        """Sample count per family (the data behind Figures 7/8)."""
        counts = {name: 0 for name in self.family_names}
        for acfg in self.acfgs:
            counts[self.family_names[acfg.label]] += 1
        return counts

    def subset(self, indices: Sequence[int]) -> "MalwareDataset":
        return MalwareDataset(
            acfgs=[self.acfgs[i] for i in indices],
            family_names=list(self.family_names),
            name=self.name,
        )

    # ------------------------------------------------------------------
    # splits

    def stratified_split(
        self, test_fraction: float, seed: int = 0
    ) -> Tuple["MalwareDataset", "MalwareDataset"]:
        """``(train, test)`` preserving family proportions."""
        if not 0.0 < test_fraction < 1.0:
            raise DatasetError(
                f"test_fraction must be in (0, 1), got {test_fraction}"
            )
        rng = np.random.default_rng(seed)
        labels = self.labels()
        train_idx: List[int] = []
        test_idx: List[int] = []
        for family in range(self.num_classes):
            members = np.flatnonzero(labels == family)
            rng.shuffle(members)
            cut = max(1, int(round(test_fraction * len(members)))) if len(members) > 1 else 0
            test_idx.extend(members[:cut].tolist())
            train_idx.extend(members[cut:].tolist())
        rng.shuffle(train_idx)
        rng.shuffle(test_idx)
        return self.subset(train_idx), self.subset(test_idx)

    def stratified_kfold(
        self, n_splits: int = 5, seed: int = 0
    ) -> Iterator[Tuple[List[int], List[int]]]:
        """Yield ``(train_indices, validation_indices)`` per fold.

        Stratified: each family's members are dealt round-robin across the
        folds after a seeded shuffle, so every fold sees (approximately)
        the dataset's family distribution — the paper's 5-fold protocol.
        """
        if n_splits < 2:
            raise DatasetError(f"n_splits must be >= 2, got {n_splits}")
        if n_splits > len(self):
            raise DatasetError(
                f"cannot make {n_splits} folds from {len(self)} samples"
            )
        rng = np.random.default_rng(seed)
        labels = self.labels()
        folds: List[List[int]] = [[] for _ in range(n_splits)]
        for family in range(self.num_classes):
            members = np.flatnonzero(labels == family)
            rng.shuffle(members)
            for position, index in enumerate(members.tolist()):
                folds[position % n_splits].append(index)
        all_indices = set(range(len(self)))
        for fold in folds:
            validation = sorted(fold)
            training = sorted(all_indices - set(fold))
            if not validation or not training:
                raise DatasetError("a fold came out empty; dataset too small")
            yield training, validation
