"""Synthetic MSKCFG corpus (Section V-A, Figure 7).

The real MSKCFG dataset contains 10,868 ``.asm`` listings from the 2015
Microsoft Malware Classification Challenge, spanning nine families with
the (imbalanced) distribution of Figure 7.  This module generates a
corpus with:

* the same nine family names,
* the same relative family proportions (so Figure 7's shape reproduces),
* family-conditioned structural/instruction-mix signatures (see
  :mod:`repro.datasets.synthetic_asm`), with deliberately related
  profiles for the pairs the paper finds confusable
  (Ramnit <-> Obfuscator.ACY, Kelihos_ver1 <-> Kelihos_ver3).

The generated listings flow through the *full* MAGIC front end: parse ->
tag -> build CFG -> extract Table I attributes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.datasets.loader import MalwareDataset
from repro.datasets.synthetic_asm import (
    FamilyProfile,
    ObfuscationKnobs,
    ProgramGenerator,
)
from repro.exceptions import DatasetError
from repro.features.pipeline import AcfgPipeline

#: Families and their sample counts in the real corpus (Figure 7).
MSKCFG_FAMILY_COUNTS: Dict[str, int] = {
    "Ramnit": 1541,
    "Lollipop": 2478,
    "Kelihos_ver3": 2942,
    "Vundo": 475,
    "Simda": 42,
    "Tracur": 751,
    "Kelihos_ver1": 398,
    "Obfuscator.ACY": 1228,
    "Gatak": 1013,
}

MSKCFG_FAMILIES: List[str] = list(MSKCFG_FAMILY_COUNTS)

#: Structural profiles per family.  Related families get related profiles
#: on purpose: Kelihos_ver1 is a scaled-down ver3; Obfuscator.ACY reuses
#: Ramnit-like structure under heavy junk-code obfuscation.
MSKCFG_PROFILES: Dict[str, FamilyProfile] = {
    "Ramnit": FamilyProfile(
        name="Ramnit",
        num_functions=(4, 8),
        blocks_per_function=(4, 9),
        block_length=(3, 9),
        loop_probability=0.30,
        branch_probability=0.40,
        call_probability=0.20,
        junk_probability=0.05,
        weight_mov=3.0, weight_arith=1.5, weight_stack=1.5,
        weight_compare=1.0, weight_string=0.3,
        numeric_constant_rate=0.3,
    ),
    "Lollipop": FamilyProfile(
        name="Lollipop",
        num_functions=(8, 14),
        blocks_per_function=(5, 12),
        block_length=(4, 12),
        loop_probability=0.15,
        branch_probability=0.55,
        call_probability=0.35,
        weight_mov=4.0, weight_arith=1.5, weight_stack=2.5,
        weight_compare=1.5, weight_string=0.1,
        numeric_constant_rate=0.6,
    ),
    "Kelihos_ver3": FamilyProfile(
        name="Kelihos_ver3",
        num_functions=(6, 10),
        blocks_per_function=(8, 16),
        block_length=(3, 8),
        loop_probability=0.35,
        branch_probability=0.30,
        call_probability=0.15,
        dispatch_probability=0.35,
        dispatch_fanout=(4, 8),
        weight_mov=2.5, weight_arith=2.0, weight_stack=1.0,
        weight_compare=2.0, weight_string=0.2,
        numeric_constant_rate=0.5,
    ),
    "Vundo": FamilyProfile(
        name="Vundo",
        num_functions=(2, 4),
        blocks_per_function=(3, 6),
        block_length=(10, 20),
        loop_probability=0.60,
        branch_probability=0.10,
        call_probability=0.05,
        weight_mov=1.0, weight_arith=5.5, weight_stack=0.5,
        weight_compare=0.6, weight_string=0.1,
        numeric_constant_rate=0.85,
    ),
    "Simda": FamilyProfile(
        name="Simda",
        num_functions=(2, 4),
        blocks_per_function=(2, 5),
        block_length=(2, 6),
        loop_probability=0.10,
        branch_probability=0.20,
        call_probability=0.45,
        weight_mov=2.0, weight_arith=1.0, weight_stack=3.0,
        weight_compare=0.8, weight_string=0.1,
        numeric_constant_rate=0.3,
    ),
    "Tracur": FamilyProfile(
        name="Tracur",
        num_functions=(4, 7),
        blocks_per_function=(4, 8),
        block_length=(4, 10),
        loop_probability=0.20,
        branch_probability=0.45,
        call_probability=0.15,
        weight_mov=3.5, weight_arith=0.8, weight_stack=1.0,
        weight_compare=1.8, weight_string=3.0,
        numeric_constant_rate=0.55,
    ),
    "Kelihos_ver1": FamilyProfile(
        name="Kelihos_ver1",
        num_functions=(2, 4),
        blocks_per_function=(5, 9),
        block_length=(2, 5),
        loop_probability=0.32,
        branch_probability=0.30,
        call_probability=0.12,
        dispatch_probability=0.18,
        dispatch_fanout=(3, 5),
        data_blocks=(1, 3),
        weight_mov=2.5, weight_arith=2.0, weight_stack=1.0,
        weight_compare=1.7, weight_string=0.8,
        numeric_constant_rate=0.25,
    ),
    "Obfuscator.ACY": FamilyProfile(
        name="Obfuscator.ACY",
        num_functions=(4, 8),
        blocks_per_function=(4, 9),
        block_length=(3, 9),
        loop_probability=0.28,
        branch_probability=0.42,
        call_probability=0.18,
        junk_probability=0.60,
        weight_mov=2.5, weight_arith=3.5, weight_stack=1.2,
        weight_compare=1.5, weight_string=0.2,
        numeric_constant_rate=0.55,
    ),
    "Gatak": FamilyProfile(
        name="Gatak",
        num_functions=(5, 9),
        blocks_per_function=(4, 8),
        block_length=(4, 11),
        loop_probability=0.18,
        branch_probability=0.35,
        call_probability=0.22,
        data_blocks=(2, 5),
        weight_mov=4.5, weight_arith=1.5, weight_stack=1.2,
        weight_compare=1.0, weight_string=0.5,
        numeric_constant_rate=0.5,
    ),
}


def family_sample_counts(total: int, minimum_per_family: int = 4) -> Dict[str, int]:
    """Scale the real Figure 7 proportions down to ``total`` samples."""
    real_total = sum(MSKCFG_FAMILY_COUNTS.values())
    counts = {
        name: max(minimum_per_family, round(total * real / real_total))
        for name, real in MSKCFG_FAMILY_COUNTS.items()
    }
    return counts


def generate_mskcfg_sample(
    family: str,
    index: int,
    seed: int = 0,
    knobs: Optional[ObfuscationKnobs] = None,
) -> Tuple[str, str, int]:
    """Regenerate one corpus sample, optionally re-obfuscated.

    With ``knobs=None`` the returned ``(name, asm_text, label)`` triple is
    bit-identical to the corresponding entry of
    :func:`generate_mskcfg_listings` for the same ``seed`` — each sample
    draws from its own ``SeedSequence([seed, label, index])`` stream, so
    regeneration needs nothing but the coordinates.  Passing knobs
    re-obfuscates the *same* underlying program: the problem-space attack
    (:mod:`repro.adv.asmattack`) searches over these variants.
    """
    if family not in MSKCFG_PROFILES:
        raise DatasetError(
            f"unknown MSKCFG family {family!r}; "
            f"expected one of {MSKCFG_FAMILIES}"
        )
    label = MSKCFG_FAMILIES.index(family)
    profile = MSKCFG_PROFILES[family]
    if knobs is not None:
        profile = knobs.apply(profile)
    rng = np.random.default_rng(np.random.SeedSequence([seed, label, index]))
    listing = ProgramGenerator(profile, rng).generate_listing()
    return (f"{family}_{index:05d}", listing, label)


def generate_mskcfg_listings(
    total: int = 270,
    seed: int = 0,
    minimum_per_family: int = 4,
    knobs: Optional[ObfuscationKnobs] = None,
    per_sample_knobs: Optional[Mapping[str, ObfuscationKnobs]] = None,
) -> List[Tuple[str, str, int]]:
    """Generate ``(name, asm_text, label)`` triples for the corpus.

    ``knobs`` re-obfuscates every sample; ``per_sample_knobs`` maps
    sample names (``"<family>_<index:05d>"``) to per-sample overrides and
    wins over ``knobs`` where both apply.  With neither, the output is
    bit-identical to what this function produced before knob support
    existed (per-sample RNG streams are unchanged).
    """
    if total < len(MSKCFG_FAMILIES):
        raise DatasetError(
            f"total={total} too small for {len(MSKCFG_FAMILIES)} families"
        )
    counts = family_sample_counts(total, minimum_per_family)
    samples: List[Tuple[str, str, int]] = []
    for family in MSKCFG_FAMILIES:
        for index in range(counts[family]):
            name = f"{family}_{index:05d}"
            sample_knobs = knobs
            if per_sample_knobs is not None and name in per_sample_knobs:
                sample_knobs = per_sample_knobs[name]
            samples.append(
                generate_mskcfg_sample(
                    family, index, seed=seed, knobs=sample_knobs
                )
            )
    return samples


def generate_mskcfg_dataset(
    total: int = 270,
    seed: int = 0,
    minimum_per_family: int = 4,
    max_workers: int = 1,
) -> MalwareDataset:
    """Full pipeline: synthesize listings, run the MAGIC front end.

    This exercises parse -> tag (Algorithm 1) -> connect (Algorithm 2) ->
    Table I attribute extraction for every sample, exactly like the
    paper's 17-hour MSKCFG preprocessing run (just smaller).
    """
    listings = generate_mskcfg_listings(
        total=total, seed=seed, minimum_per_family=minimum_per_family
    )
    report = AcfgPipeline(max_workers=max_workers).extract_from_texts(listings)
    if report.failures:
        failed = ", ".join(f.name for f in report.failures[:5])
        raise DatasetError(
            f"{report.num_failed} samples failed ACFG extraction ({failed}...)"
        )
    return MalwareDataset(
        acfgs=report.acfgs, family_names=list(MSKCFG_FAMILIES), name="MSKCFG-synthetic"
    )
