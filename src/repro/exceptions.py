"""Exception hierarchy for the repro (MAGIC) library.

Every error raised on purpose by this library derives from
:class:`MagicError`, so callers can catch one base class at the pipeline
boundary and still discriminate finer-grained failures when needed.
"""

from __future__ import annotations


class MagicError(Exception):
    """Base class for all errors raised by the repro library."""


class AsmParseError(MagicError):
    """Raised when an assembly listing cannot be parsed into a program."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class CfgConstructionError(MagicError):
    """Raised when a control flow graph cannot be built from a program."""


class FeatureExtractionError(MagicError):
    """Raised when block attributes cannot be extracted from a CFG."""


class OversizeGraphError(FeatureExtractionError):
    """Raised when a sample's graph exceeds the pipeline's size guard.

    Pathological samples (packer stubs unrolled into megabyte CFGs) can
    stall attribute extraction for hours; the extraction service treats
    this as a structured per-sample failure, not a batch abort.
    """

    def __init__(self, name: str, num_vertices: int, limit: int) -> None:
        self.num_vertices = num_vertices
        self.limit = limit
        super().__init__(
            f"{name or 'sample'}: graph has {num_vertices} vertices, "
            f"exceeding the max_vertices guard of {limit}"
        )


class SerializationError(MagicError):
    """Raised when a CFG or ACFG fails to round-trip through serialization."""


class ShapeError(MagicError):
    """Raised by the neural-network engine on tensor shape mismatches."""


class GradientError(MagicError):
    """Raised when a backward pass is requested on an invalid graph."""


class ConfigurationError(MagicError):
    """Raised when a model or trainer is configured inconsistently."""


class CompilationError(MagicError):
    """Raised when a recorded graph cannot be compiled into a tape.

    Callers that opted into compiled execution treat this as a signal to
    fall back to the eager path (the model still works, just without the
    replay speedup) — e.g. a custom module built from untagged
    ``Tensor._make`` calls, or a float32 request against a training-mode
    graph.
    """


class DatasetError(MagicError):
    """Raised when a dataset cannot be generated, loaded, or split."""


class TrainingError(MagicError):
    """Raised when model training cannot proceed (e.g. empty fold)."""


class WorkerError(MagicError):
    """Raised by the supervised worker-process machinery (`repro.workers`).

    Covers protocol misuse of the shared pipe transport (sending to a
    stopped worker, double-starting a worker) — *not* per-unit failures,
    which stay structured data (:class:`FailureKind` tuples) so one bad
    sample never aborts a batch or a serving fleet.
    """


class WorkerStartupError(WorkerError):
    """Raised when a long-lived request worker fails to initialize.

    A request worker must announce readiness (after loading its model
    replica) before it may be routed traffic; failure to do so within
    the start deadline — or an explicit init-error report from the child
    — raises this in the parent instead of silently serving nothing.
    """

    def __init__(self, worker: str, detail: str) -> None:
        self.worker = worker
        self.detail = detail
        super().__init__(f"worker {worker!r} failed to start: {detail}")


class ServeError(MagicError):
    """Raised by the online classification service (`repro.serve`)."""


class FleetError(ServeError):
    """Raised on fleet dispatcher misuse or misconfiguration.

    Per-request trouble (a crashed replica, a timed-out batch) never
    raises this — it becomes a structured failure on the affected
    request after the retry budget is spent, while the fleet respawns
    the worker and keeps serving.
    """


class RolloutError(ServeError):
    """Raised on rollout state-machine violations.

    Starting a rollout while one is active, promoting when no candidate
    is shadowing, or targeting a version that is not published all land
    here; canary *outcomes* (promotion, rollback) are states, not
    errors.
    """


class RegistryError(ServeError):
    """Raised when a model archive fails integrity or schema checks.

    Covers tampered weights (sha256 mismatch against the archive
    manifest), family-table mismatches between the manifest and the
    model metadata, and unsupported archive format versions.
    """


class TrainingDivergedError(TrainingError):
    """Raised when training produces a non-finite loss or gradient.

    Carries the epoch/batch where divergence was detected so sweeps can
    record it as a structured failure instead of poisoning a grid with
    NaN scores.  ``TrainingConfig.halt_on_divergence=False`` downgrades
    this to an early stop recorded on the ``TrainingHistory``.
    """

    def __init__(self, message: str, epoch: int, batch: int,
                 loss: float | None = None) -> None:
        self.epoch = epoch
        self.batch = batch
        self.loss = loss
        super().__init__(
            f"{message} (epoch {epoch}, batch {batch}"
            + (f", loss {loss!r})" if loss is not None else ")")
        )


class SimilarityError(MagicError):
    """Raised on similarity-subsystem misuse (`repro.similarity`).

    Covers configuration errors (invalid threshold, band/permutation
    mismatch, negative WL iterations) and comparisons between
    fingerprints computed with different parameters.  A *miss* in the
    near-duplicate index is never an error — it just means the sample
    pays the full pipeline.
    """
