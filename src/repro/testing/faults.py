"""Deterministic fault injection for the extraction service.

The fault-tolerance paths of :class:`~repro.features.pipeline.AcfgPipeline`
— timeout kills, crash detection, corrupt-output rejection — cannot be
exercised by real inputs without non-determinism (a genuinely hung parser
or a segfault).  A :class:`FaultPlan` makes any extraction worker raise,
hang, hard-crash, or emit corrupt output on chosen *input indices*, and is
picklable so it survives the trip into pool worker processes.

The plan is applied at the worker boundary, before the real extraction
function runs, so every injected fault travels the exact recovery path a
real one would.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Optional


class FaultKind(str, Enum):
    """What a poisoned worker does instead of extracting its sample."""

    #: Raise ``RuntimeError`` — models a worker bug / parser edge case.
    RAISE = "raise"
    #: Sleep past any reasonable deadline — models a hung disassembler.
    HANG = "hang"
    #: ``os._exit`` without reporting — models a segfault / OOM kill.
    CRASH = "crash"
    #: Return garbage instead of a result — models torn IPC payloads.
    CORRUPT = "corrupt"


class _CorruptOutput:
    """Sentinel standing in for a worker result that is not a result."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<corrupt worker output>"


#: The object a CORRUPT-poisoned worker hands back in place of its result.
CORRUPT_OUTPUT = _CorruptOutput()


@dataclass(frozen=True)
class FaultPlan:
    """Maps input indices to injected faults; empty plan is a no-op.

    Parameters
    ----------
    faults:
        ``{input_index: FaultKind}``.  Indices refer to positions in the
        sample sequence handed to the pipeline, so a plan is reproducible
        across serial, thread, and process execution modes.
    hang_seconds:
        How long a HANG fault sleeps.  Defaults to an hour — far past any
        sane per-sample timeout — but tests that exercise the *untimed*
        paths can shrink it.
    exit_code:
        Process exit code of a CRASH fault (nonzero, and distinctive so
        crash reports in tests are recognizable).
    """

    faults: Dict[int, FaultKind] = field(default_factory=dict)
    hang_seconds: float = 3600.0
    exit_code: int = 23

    @classmethod
    def build(
        cls,
        raise_on: Iterable[int] = (),
        hang_on: Iterable[int] = (),
        crash_on: Iterable[int] = (),
        corrupt_on: Iterable[int] = (),
        hang_seconds: float = 3600.0,
        exit_code: int = 23,
    ) -> "FaultPlan":
        """Convenience constructor from per-kind index lists."""
        faults: Dict[int, FaultKind] = {}
        for kind, indices in (
            (FaultKind.RAISE, raise_on),
            (FaultKind.HANG, hang_on),
            (FaultKind.CRASH, crash_on),
            (FaultKind.CORRUPT, corrupt_on),
        ):
            for index in indices:
                if index in faults:
                    raise ValueError(
                        f"index {index} assigned two faults "
                        f"({faults[index].value} and {kind.value})"
                    )
                faults[index] = kind
        return cls(faults=faults, hang_seconds=hang_seconds,
                   exit_code=exit_code)

    def fault_for(self, index: int) -> Optional[FaultKind]:
        return self.faults.get(index)

    def apply(self, index: int):
        """Execute the fault for ``index``, if any.

        Returns :data:`CORRUPT_OUTPUT` for a CORRUPT fault (the caller
        substitutes it for the real result); returns ``None`` when the
        index is clean.  RAISE raises, CRASH exits the process, HANG
        sleeps and then raises (so a hang that outlives its sleep in an
        unkillable execution mode still surfaces as a failure rather
        than a silent success).
        """
        kind = self.fault_for(index)
        if kind is None:
            return None
        if kind is FaultKind.RAISE:
            raise RuntimeError(f"injected fault: worker raise at index {index}")
        if kind is FaultKind.HANG:
            time.sleep(self.hang_seconds)
            raise RuntimeError(
                f"injected fault: hang at index {index} outlived "
                f"{self.hang_seconds}s without being killed"
            )
        if kind is FaultKind.CRASH:
            os._exit(self.exit_code)
        return CORRUPT_OUTPUT
