"""Deterministic testing utilities for the repro library.

This package is importable from production code paths (the extraction
service accepts a :class:`~repro.testing.faults.FaultPlan`) but is inert
unless a test explicitly wires a plan in.
"""

from repro.testing.faults import CORRUPT_OUTPUT, FaultKind, FaultPlan

__all__ = ["CORRUPT_OUTPUT", "FaultKind", "FaultPlan"]
