"""Crash-safe file primitives shared by the JSONL checkpoint journals.

The extraction journal (:mod:`repro.features.journal`) and the sweep
journal (:mod:`repro.train.sweep`) both need the same thing: a
long-lived append handle whose every record survives a SIGKILL
immediately after the write.  Both used to manage a raw ``open()``
handle by hand; :class:`JsonlAppendWriter` is the single sanctioned
owner of that pattern — it creates the parent directory, truncates or
appends as asked, and flushes after every record so the only losable
data is the torn final line the journal loaders already tolerate.

The raw ``open`` below carries the one ``atomic-write`` pragma in the
library: every other write goes through a context manager or the
staged-swap helpers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, TextIO


class JsonlAppendWriter:
    """Append-only JSON-lines handle that flushes after every record."""

    def __init__(self, path: str, handle: TextIO, created: bool) -> None:
        self.path = path
        self.created = created
        self._handle: Optional[TextIO] = handle

    @classmethod
    def open(cls, path: str, fresh: bool) -> "JsonlAppendWriter":
        """Open ``path`` for appending, truncating when ``fresh``.

        ``created`` on the returned writer tells the caller whether the
        file was (re)started — i.e. whether a header line is needed.  A
        missing file counts as fresh regardless of ``fresh``.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        mode = "w" if fresh or not os.path.exists(path) else "a"
        handle = open(  # repro: allow[atomic-write] — the crash-safe append handle
            path, mode, encoding="utf-8"
        )
        return cls(path, handle, created=(mode == "w"))

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append one JSON record; a no-op once closed."""
        if self._handle is None:
            return
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()  # survive a SIGKILL between records

    @property
    def closed(self) -> bool:
        return self._handle is None

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
