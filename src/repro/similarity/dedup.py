"""Corpus dedup: near-duplicate clusters over extracted ACFG corpora.

Repacked and junk-padded variants do not just waste serve-time compute —
they poison *training*: near-duplicates straddling a train/validation
split leak labels and inflate every score in Tables III-V.  This module
runs the same topology-aware fingerprint the serving cache tier uses
over a whole corpus and reports (or drops) near-duplicate clusters
before the corpus reaches the trainer.

Clustering is greedy first-seen-keeps: samples are fingerprinted in
corpus order; a sample whose estimated Jaccard against an earlier
*keeper* clears the threshold joins that keeper's cluster, otherwise it
becomes a keeper itself.  Deterministic (fixed fingerprint and minhash
seeds, stable iteration order), single pass, O(n) LSH lookups.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.features.acfg import ACFG
from repro.similarity.fingerprint import (
    DEFAULT_WL_ITERATIONS,
    fingerprint_acfg,
)
from repro.similarity.lsh import (
    DEFAULT_NUM_BANDS,
    DEFAULT_NUM_PERMUTATIONS,
    DEFAULT_SIMILARITY_THRESHOLD,
    SimilarityIndex,
)


@dataclasses.dataclass
class DuplicateMember:
    """One dropped near-duplicate and its similarity to the keeper."""

    name: str
    index: int
    similarity: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "index": self.index,
            "similarity": round(self.similarity, 4),
        }


@dataclasses.dataclass
class DuplicateCluster:
    """A kept representative plus the near-duplicates it absorbs."""

    keeper_name: str
    keeper_index: int
    members: List[DuplicateMember]

    def to_dict(self) -> Dict[str, object]:
        return {
            "keeper": self.keeper_name,
            "keeper_index": self.keeper_index,
            "members": [member.to_dict() for member in self.members],
        }


@dataclasses.dataclass
class DedupReport:
    """Outcome of one dedup pass over a corpus."""

    total: int
    threshold: float
    iterations: int
    clusters: List[DuplicateCluster]
    kept_indices: List[int]

    @property
    def num_kept(self) -> int:
        return len(self.kept_indices)

    @property
    def num_dropped(self) -> int:
        return self.total - self.num_kept

    def dropped(self) -> List[DuplicateMember]:
        """Every dropped member, in corpus order."""
        members = [m for cluster in self.clusters for m in cluster.members]
        members.sort(key=lambda member: member.index)
        return members

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "kept": self.num_kept,
            "dropped": self.num_dropped,
            "threshold": self.threshold,
            "iterations": self.iterations,
            "clusters": [cluster.to_dict() for cluster in self.clusters],
        }


def find_near_duplicates(
    acfgs: Sequence[ACFG],
    threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
    iterations: int = DEFAULT_WL_ITERATIONS,
    num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
    num_bands: int = DEFAULT_NUM_BANDS,
) -> DedupReport:
    """Cluster ``acfgs`` into keepers and near-duplicate members.

    The first sample of each cluster (corpus order) is the keeper;
    labels are deliberately ignored — two near-identical graphs carrying
    *different* labels are exactly the leakage/relabeling cases a human
    should see in the report.
    """
    index = SimilarityIndex(
        threshold=threshold,
        iterations=iterations,
        num_permutations=num_permutations,
        num_bands=num_bands,
        max_entries=max(len(acfgs), 1),
    )
    clusters: Dict[int, DuplicateCluster] = {}
    kept: List[int] = []
    for position, acfg in enumerate(acfgs):
        name = acfg.name or f"sample-{position:06d}"
        signature = index.signature(
            fingerprint_acfg(acfg, iterations=iterations)
        )
        match = index.query(signature)
        if match is not None:
            keeper_index: int = match.payload
            cluster = clusters.get(keeper_index)
            if cluster is None:
                keeper = acfgs[keeper_index]
                cluster = DuplicateCluster(
                    keeper_name=keeper.name or f"sample-{keeper_index:06d}",
                    keeper_index=keeper_index,
                    members=[],
                )
                clusters[keeper_index] = cluster
            cluster.members.append(
                DuplicateMember(
                    name=name, index=position, similarity=match.similarity
                )
            )
            continue
        index.insert(str(position), signature, position)
        kept.append(position)
    ordered: List[DuplicateCluster] = [
        clusters[keeper_index] for keeper_index in sorted(clusters)
    ]
    return DedupReport(
        total=len(acfgs),
        threshold=threshold,
        iterations=iterations,
        clusters=ordered,
        kept_indices=kept,
    )


def keeper_of(report: DedupReport, index: int) -> Optional[str]:
    """The keeper name a dropped ``index`` was clustered under."""
    for cluster in report.clusters:
        for member in cluster.members:
            if member.index == index:
                return cluster.keeper_name
    return None
