"""Topology-aware CFG similarity: fingerprints, minhash, LSH, dedup.

Real malware traffic is dominated by repacked and trivially mutated
variants of a small number of families; the exact sha256-of-text
prediction cache misses on exactly those repeats.  This package computes
a fingerprint that survives such mutations — Weisfeiler-Lehman
relabeling over the CFG's adjacency structure, seeded with quantized
per-vertex attribute buckets — and the machinery to look near-duplicates
up fast:

* :mod:`repro.similarity.fingerprint` — deterministic, vertex-order
  invariant WL label multisets over quantized ACFG attributes.
* :mod:`repro.similarity.minhash` — fixed-seed minhash signatures with
  an estimated-Jaccard comparator.
* :mod:`repro.similarity.lsh` — the banded :class:`SimilarityIndex`:
  bounded (LRU), thread-safe, threshold-gated near-duplicate lookup.
* :mod:`repro.similarity.dedup` — corpus-level near-duplicate
  clustering for the ``repro.cli dedup`` pre-training pass.

The serving integration (second cache tier behind the exact tier) lives
in :mod:`repro.serve.engine`; every fingerprint and signature here is
bit-reproducible across processes (blake2b hashing, explicitly seeded
generators only).
"""

from repro.similarity.dedup import (
    DedupReport,
    DuplicateCluster,
    DuplicateMember,
    find_near_duplicates,
    keeper_of,
)
from repro.similarity.fingerprint import (
    DEFAULT_WL_ITERATIONS,
    CfgFingerprint,
    fingerprint_acfg,
    quantize_attributes,
)
from repro.similarity.lsh import (
    DEFAULT_INDEX_SIZE,
    DEFAULT_NUM_BANDS,
    DEFAULT_SIMILARITY_THRESHOLD,
    SimilarityIndex,
    SimilarityMatch,
)
from repro.similarity.minhash import (
    DEFAULT_MINHASH_SEED,
    DEFAULT_NUM_PERMUTATIONS,
    MinHasher,
    estimated_jaccard,
)

__all__ = [
    "CfgFingerprint",
    "DEFAULT_INDEX_SIZE",
    "DEFAULT_MINHASH_SEED",
    "DEFAULT_NUM_BANDS",
    "DEFAULT_NUM_PERMUTATIONS",
    "DEFAULT_SIMILARITY_THRESHOLD",
    "DEFAULT_WL_ITERATIONS",
    "DedupReport",
    "DuplicateCluster",
    "DuplicateMember",
    "MinHasher",
    "SimilarityIndex",
    "SimilarityMatch",
    "estimated_jaccard",
    "find_near_duplicates",
    "fingerprint_acfg",
    "keeper_of",
    "quantize_attributes",
]
