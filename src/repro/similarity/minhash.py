"""Fixed-seed minhash signatures over WL fingerprint multisets.

Exact multiset Jaccard between two fingerprints is O(labels); comparing
a new sample against *every* cached fingerprint is O(cache).  Minhash
compresses each fingerprint to a fixed-width signature whose
component-wise agreement rate is an unbiased estimate of the Jaccard
similarity — and, banded, feeds the LSH index (:mod:`repro.similarity
.lsh`) that makes candidate lookup O(1) in the cache size.

Determinism contract: the permutation parameters are drawn once from a
``default_rng`` seeded with an explicit constant (no global RNG), so
every process that builds a :class:`MinHasher` with the same
``num_permutations``/``seed`` produces bit-identical signatures for the
same fingerprint.  This is what lets fleet replicas, respawned workers,
and offline dedup runs share one fingerprint vocabulary.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.exceptions import SimilarityError
from repro.similarity.fingerprint import CfgFingerprint

#: Signature width.  128 permutations give a standard error of about
#: ``sqrt(s(1-s)/128)`` — under 0.05 at the thresholds that matter.
DEFAULT_NUM_PERMUTATIONS = 128

#: Fixed seed for the permutation parameters.  Changing it changes every
#: signature, so it is a format constant, not a knob.
DEFAULT_MINHASH_SEED = 0x7A51

#: Modulus for the universal hash family: the Mersenne prime 2^31 - 1.
#: Parameters and reduced elements stay below 2^31, so ``a * x + b``
#: fits comfortably in uint64 arithmetic with no overflow.
_PRIME = np.uint64(2**31 - 1)


def _mod_mersenne(values: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """Exact ``values % (2**31 - 1)`` without integer division.

    For a Mersenne modulus, folding the high bits onto the low bits
    (``(x & p) + (x >> 31)``) preserves the residue; two folds bring any
    uint64 under ``2p``, and one conditional subtract finishes.
    Produces bit-identical results to ``%`` at a fraction of the cost —
    uint64 division is the hot instruction in signature computation.
    """
    folded = (values & _PRIME) + (values >> np.uint64(31))
    folded = (folded & _PRIME) + (folded >> np.uint64(31))
    return np.asarray(
        np.where(folded >= _PRIME, folded - _PRIME, folded), dtype=np.uint64
    )


class MinHasher:
    """Maps fingerprints to fixed-width minhash signatures.

    Parameters
    ----------
    num_permutations:
        Signature width (estimation accuracy vs memory/time).
    seed:
        Seed for the hash-family parameters.  Two hashers agree on
        signatures iff they share ``num_permutations`` and ``seed``.
    """

    def __init__(
        self,
        num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
        seed: int = DEFAULT_MINHASH_SEED,
    ) -> None:
        if num_permutations < 1:
            raise SimilarityError(
                f"num_permutations must be >= 1, got {num_permutations}"
            )
        self.num_permutations = num_permutations
        self.seed = seed
        rng = np.random.default_rng(np.random.SeedSequence([seed]))
        prime = int(_PRIME)
        self._a = rng.integers(
            1, prime, size=num_permutations, dtype=np.uint64
        )
        self._b = rng.integers(
            0, prime, size=num_permutations, dtype=np.uint64
        )

    def signature(self, fingerprint: CfgFingerprint) -> npt.NDArray[np.uint64]:
        """The minhash signature of ``fingerprint`` (uint64, fixed width).

        ``sig[i] = min over elements x of (a_i * x + b_i) mod p`` — the
        classic universal-hash approximation of a random permutation's
        minimum.
        """
        elements = _mod_mersenne(fingerprint.expanded_elements())
        if elements.size == 0:
            raise SimilarityError("cannot sign an empty fingerprint")
        hashed = _mod_mersenne(
            self._a[:, np.newaxis] * elements[np.newaxis, :]
            + self._b[:, np.newaxis]
        )
        return np.asarray(hashed.min(axis=1), dtype=np.uint64)


def estimated_jaccard(
    signature_a: npt.NDArray[np.uint64], signature_b: npt.NDArray[np.uint64]
) -> float:
    """Unbiased Jaccard estimate: the signature agreement rate.

    Both signatures must come from the same :class:`MinHasher`
    configuration; widths are checked, parameters are the caller's
    contract.
    """
    if signature_a.shape != signature_b.shape:
        raise SimilarityError(
            f"signature widths differ: {signature_a.shape} vs "
            f"{signature_b.shape}"
        )
    return float(np.mean(signature_a == signature_b))
