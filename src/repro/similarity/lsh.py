"""LSH band index over minhash signatures: the near-duplicate cache tier.

A signature of ``P`` permutations is split into ``B`` bands of ``P/B``
rows; two signatures land in the same bucket of some band with
probability ``1 - (1 - s^rows)^B`` for true similarity ``s`` — the
classic S-curve.  With the defaults (128 permutations, 32 bands of 4
rows) a 0.7-similar pair — where junk-code variants of one sample live —
is found with probability > 0.999 while a 0.25-similar pair (where
distinct samples top out) rarely collides, so a query touches a handful
of candidates regardless of index size.

The index is a *cache tier*, so it carries cache obligations:

* **Bounded.**  ``max_entries`` with least-recently-used eviction; a
  query hit refreshes the matched entry's recency (it is serving
  traffic), eviction removes the entry from every band bucket.
* **Thread-safe.**  One lock serializes mutation and lookup; the engine
  calls it from HTTP handler / micro-batcher threads concurrently.
* **Honest about estimates.**  A bucket collision is only a candidate:
  the query computes the estimated Jaccard against each candidate's
  stored signature and applies the threshold, so the false-similar rate
  is bounded by the minhash estimation error, not by LSH banding luck.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np
import numpy.typing as npt

from repro.exceptions import SimilarityError
from repro.similarity.fingerprint import (
    DEFAULT_WL_ITERATIONS,
    CfgFingerprint,
)
from repro.similarity.minhash import (
    DEFAULT_MINHASH_SEED,
    DEFAULT_NUM_PERMUTATIONS,
    MinHasher,
    estimated_jaccard,
)

#: Default similarity threshold.  Calibrated on the synthetic corpus
#: (all nine families, three samples each, junk knobs up to +0.35):
#: junk-code variants of one sample estimate >= ~0.57 (most >= 0.7),
#: distinct samples (even same-family) <= ~0.38, so 0.5 sits
#: mid-corridor with >= 0.07 margin on each side — and the minhash
#: seeds are fixed, so those measurements are bit-reproducible, not
#: per-run noise (sigma ~= 0.045 at 128 permutations applies only
#: across corpus regeneration).
DEFAULT_SIMILARITY_THRESHOLD = 0.5

#: Default band count (with 128 permutations: 32 bands x 4 rows).
DEFAULT_NUM_BANDS = 32

#: Default bound on the number of indexed fingerprints.
DEFAULT_INDEX_SIZE = 4096


@dataclasses.dataclass
class SimilarityMatch:
    """A query hit: the matched entry and the similarity estimate."""

    key: str
    payload: Any
    similarity: float


class _Entry:
    __slots__ = ("signature", "payload", "band_keys")

    def __init__(self, signature: npt.NDArray[np.uint64], payload: Any,
                 band_keys: List[bytes]) -> None:
        self.signature = signature
        self.payload = payload
        self.band_keys = band_keys


class SimilarityIndex:
    """Bounded, thread-safe LSH index over CFG fingerprints.

    Parameters
    ----------
    threshold:
        Minimum estimated Jaccard for :meth:`query` to report a match.
    iterations:
        WL rounds expected of inserted fingerprints (checked, so one
        index never mixes incomparable fingerprints).
    num_permutations, num_bands, seed:
        Minhash/banding geometry; ``num_bands`` must divide
        ``num_permutations``.
    max_entries:
        LRU bound on indexed fingerprints (must be >= 1).
    """

    def __init__(
        self,
        threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
        iterations: int = DEFAULT_WL_ITERATIONS,
        num_permutations: int = DEFAULT_NUM_PERMUTATIONS,
        num_bands: int = DEFAULT_NUM_BANDS,
        max_entries: int = DEFAULT_INDEX_SIZE,
        seed: int = DEFAULT_MINHASH_SEED,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise SimilarityError(
                f"similarity threshold must be in (0, 1], got {threshold}"
            )
        if num_bands < 1 or num_permutations % num_bands != 0:
            raise SimilarityError(
                f"num_bands ({num_bands}) must divide num_permutations "
                f"({num_permutations})"
            )
        if max_entries < 1:
            raise SimilarityError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.threshold = threshold
        self.iterations = iterations
        self.num_bands = num_bands
        self.rows_per_band = num_permutations // num_bands
        self.max_entries = max_entries
        self._hasher = MinHasher(num_permutations=num_permutations, seed=seed)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._buckets: List[Dict[bytes, Set[str]]] = [
            {} for _ in range(num_bands)
        ]
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- signatures ----------------------------------------------------

    def signature(self, fingerprint: CfgFingerprint) -> npt.NDArray[np.uint64]:
        """Sign a fingerprint with this index's hasher configuration."""
        if fingerprint.iterations != self.iterations:
            raise SimilarityError(
                f"index expects {self.iterations}-iteration fingerprints, "
                f"got {fingerprint.iterations}"
            )
        return self._hasher.signature(fingerprint)

    def _band_keys(self, signature: npt.NDArray[np.uint64]) -> List[bytes]:
        rows = self.rows_per_band
        return [
            signature[band * rows:(band + 1) * rows].tobytes()
            for band in range(self.num_bands)
        ]

    # -- mutation ------------------------------------------------------

    def insert(self, key: str, signature: npt.NDArray[np.uint64],
               payload: Any) -> None:
        """Index ``signature`` under ``key``; replaces an existing key."""
        band_keys = self._band_keys(signature)
        with self._lock:
            if key in self._entries:
                self._remove_locked(key)
            entry = _Entry(signature, payload, band_keys)
            self._entries[key] = entry
            for band, band_key in enumerate(band_keys):
                self._buckets[band].setdefault(band_key, set()).add(key)
            while len(self._entries) > self.max_entries:
                evicted, _ = next(iter(self._entries.items()))
                self._remove_locked(evicted)
                self._evictions += 1

    def _remove_locked(self, key: str) -> None:
        entry = self._entries.pop(key)  # repro: allow[lock-discipline] — _locked helper, caller holds self._lock
        for band, band_key in enumerate(entry.band_keys):
            bucket = self._buckets[band].get(band_key)
            if bucket is None:
                continue
            bucket.discard(key)
            if not bucket:
                del self._buckets[band][band_key]

    # -- lookup --------------------------------------------------------

    def query(
        self, signature: npt.NDArray[np.uint64]
    ) -> Optional[SimilarityMatch]:
        """Best indexed entry whose estimated Jaccard clears the threshold.

        Returns ``None`` on a miss.  A hit refreshes the matched entry's
        LRU recency: an entry that keeps absorbing variant traffic is
        exactly the one worth keeping indexed.
        """
        band_keys = self._band_keys(signature)
        with self._lock:
            candidates: Set[str] = set()
            for band, band_key in enumerate(band_keys):
                candidates.update(
                    self._buckets[band].get(band_key, ())
                )
            best: Optional[Tuple[float, str]] = None
            for key in candidates:
                similarity = estimated_jaccard(
                    signature, self._entries[key].signature
                )
                if similarity < self.threshold:
                    continue
                if best is None or similarity > best[0]:
                    best = (similarity, key)
            if best is None:
                self._misses += 1
                return None
            similarity, key = best
            entry = self._entries[key]
            self._entries.move_to_end(key)
            self._hits += 1
            return SimilarityMatch(
                key=key, payload=entry.payload, similarity=similarity
            )

    # -- observability -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bound": self.max_entries,
                "threshold": self.threshold,
                "iterations": self.iterations,
                "num_bands": self.num_bands,
                "rows_per_band": self.rows_per_band,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
