"""Topology-aware CFG fingerprints: WL relabeling over quantized ACFGs.

The serve path's exact prediction cache keys on sha256-of-text, so a
repacked or junk-padded variant of a known sample — the dominant case in
real malware traffic — always misses.  Following "Topology-Aware Hashing
for Effective Control Flow Graph Similarity Analysis" (PAPERS.md), this
module computes a fingerprint that *survives* such mutations:

1. **Attribute quantization.**  Each vertex's Table I attribute vector
   (non-negative instruction/structure counts) is bucketed on a coarse
   log scale, so inserting a few junk instructions usually leaves the
   bucket tuple — and therefore the vertex's seed label — unchanged.
2. **Weisfeiler-Lehman relabeling, two streams.**  For ``iterations``
   rounds, every vertex's label is rehashed together with the sorted
   multisets of its out- and in-neighbour labels (the CFG is directed;
   direction is part of the topology).  Round ``k`` labels encode the
   vertex's radius-``k`` neighbourhood.  Two label streams run in
   parallel: an *attributed* stream seeded from the quantized buckets,
   and a *pure-structure* stream seeded from a constant.  Junk insertion
   perturbs attributes but barely touches adjacency, so the structure
   stream gives variants a high similarity floor, while distinct
   programs (different topology) diverge in both streams.
3. **Multiset feature map.**  The fingerprint is the multiset of labels
   from *all* rounds ``0..iterations`` of both streams, tagged by round
   and stream, with the structure stream double-weighted.  The Jaccard
   similarity of two fingerprints' multisets is then a
   structure-dominant, normalized WL subtree kernel.  Calibrated on the
   synthetic corpus (all nine families): junk-code variants of one
   sample score >= ~0.64 exact (>= ~0.57 minhash-estimated), distinct
   samples (even same-family) score <= ~0.34 exact (<= ~0.38
   estimated).

Labels are 64-bit integers driven by the splitmix64 finalizer over pure
integer arithmetic — no process-salted ``hash()``, no global RNG — so
the same ACFG produces the same fingerprint in every process, forever.
Neighbour multisets are combined as *sums* of mixed labels (addition is
commutative), so relabeling or reordering the vertices of a graph
yields an identical fingerprint.  The whole relabeling runs as numpy
array operations: fingerprinting must stay far cheaper than the forward
pass it lets the serving tier skip.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import Counter
from typing import Tuple

import numpy as np
import numpy.typing as npt

from repro.exceptions import SimilarityError
from repro.features.acfg import ACFG

#: Default WL relabeling rounds.  Round k sees a radius-k neighbourhood;
#: three rounds separate the nine synthetic families while junk-code
#: variants of one sample stay well above any sane threshold.
DEFAULT_WL_ITERATIONS = 3

#: Odd 64-bit constant (golden-ratio mix) used to spread multiset
#: occurrence indices across the hash space without re-hashing.
_OCCURRENCE_MIX = np.uint64(0x9E3779B97F4A7C15)

#: Multiplicity of the pure-structure label stream relative to the
#: attributed stream.  Structure survives junk-code mutation; weighting
#: it 2:1 keeps variants of one sample above ~0.7 Jaccard while distinct
#: topologies stay below ~0.25.
_STRUCTURE_WEIGHT = 2

#: splitmix64 finalizer constants (Steele et al.; public domain).
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_MUL_1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_MUL_2 = np.uint64(0x94D049BB133111EB)

#: Odd multipliers separating the three roles a label plays in one
#: relabeling step (the vertex's own label, an out-neighbour, an
#: in-neighbour) — without them ``a -> b`` and ``b -> a`` would hash
#: identically.
_ROLE_OWN = np.uint64(0xA24BAED4963EE407)
_ROLE_OUT = np.uint64(0x9FB21C651E98DF25)
_ROLE_IN = np.uint64(0xD6E8FEB86659FD93)

#: Stream domain-separation constants (arbitrary, fixed forever).
_DOMAIN_ATTRIBUTED = np.uint64(0x57_4C)    # "WL"
_DOMAIN_STRUCTURE = np.uint64(0x53_54)     # "ST"


def _mix64(values: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """Vectorized splitmix64 finalizer: a bijective 64-bit scrambler.

    All arithmetic wraps modulo 2**64 (numpy unsigned semantics), so the
    result is identical in every process and on every platform.  The
    Jaccard comparison only ever observes label *equality*, and a
    bijection preserves it exactly, so this cheap mixer is
    interchangeable with a cryptographic hash for similarity purposes —
    only multiset-sum combination below relies on its output spreading.
    """
    z = values + _SPLITMIX_GAMMA
    z = (z ^ (z >> np.uint64(30))) * _SPLITMIX_MUL_1
    z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_MUL_2
    return np.asarray(z ^ (z >> np.uint64(31)), dtype=np.uint64)


def quantize_attributes(
    attributes: npt.NDArray[np.float64],
) -> npt.NDArray[np.int64]:
    """Per-vertex log8 buckets of the (non-negative count) attributes.

    ``bucket = floor(log8(1 + value))`` maps 0-6 -> 0, 7-62 -> 1,
    63-510 -> 2, ...: small absolute perturbations (a junk opaque
    predicate adds three instructions to one block) usually stay inside
    the bucket, while order-of-magnitude differences — what actually
    distinguishes families — cross it.  Finer buckets (log2) flip under
    junk insertion and WL amplifies every flip through its whole
    radius-k neighbourhood, collapsing variant similarity.
    """
    counts = np.maximum(np.asarray(attributes, dtype=np.float64), 0.0)
    return np.asarray(np.floor(np.log2(1.0 + counts) / 3.0), dtype=np.int64)


@dataclasses.dataclass(frozen=True)
class CfgFingerprint:
    """The WL label multiset of one ACFG, plus its provenance.

    ``labels`` is the canonical sorted ``(element, count)`` view of the
    multiset, where each element is a 64-bit hash of ``(round, label)``.
    Two fingerprints are comparable only when they used the same number
    of ``iterations``.
    """

    labels: Tuple[Tuple[int, int], ...]
    num_vertices: int
    iterations: int

    @property
    def size(self) -> int:
        """Total multiset cardinality (both streams, structure weighted)."""
        return sum(count for _, count in self.labels)

    def expanded_elements(self) -> npt.NDArray[np.uint64]:
        """The multiset expanded to distinct 64-bit elements.

        Occurrence ``i`` of a label becomes ``label ^ (i * MIX)``, so
        multiplicities participate in Jaccard/minhash comparisons (the
        standard multiset-to-set expansion).
        """
        if not self.labels:
            return np.empty(0, dtype=np.uint64)
        num_labels = len(self.labels)
        elements = np.fromiter(
            (element for element, _ in self.labels),
            dtype=np.uint64, count=num_labels,
        )
        counts = np.fromiter(
            (count for _, count in self.labels),
            dtype=np.int64, count=num_labels,
        )
        repeated = np.repeat(elements, counts)
        # Per-group occurrence index: global position minus the group's
        # starting offset (the vectorized form of enumerate-per-label).
        ends = np.cumsum(counts)
        offsets = np.repeat(ends - counts, counts).astype(np.uint64)
        occurrences = np.arange(ends[-1], dtype=np.uint64) - offsets
        return np.asarray(
            repeated ^ (occurrences * _OCCURRENCE_MIX), dtype=np.uint64
        )

    def digest(self) -> str:
        """sha256 over the canonical serialization (reproducibility tests)."""
        hasher = hashlib.sha256()
        hasher.update(self.iterations.to_bytes(4, "big"))
        for element, count in self.labels:
            hasher.update(element.to_bytes(8, "big"))
            hasher.update(count.to_bytes(8, "big"))
        return hasher.hexdigest()

    def jaccard(self, other: "CfgFingerprint") -> float:
        """Exact multiset Jaccard (intersection / union of counts)."""
        if self.iterations != other.iterations:
            raise SimilarityError(
                f"cannot compare fingerprints with {self.iterations} vs "
                f"{other.iterations} WL iterations"
            )
        mine = dict(self.labels)
        theirs = dict(other.labels)
        intersection = sum(
            min(count, theirs[element])
            for element, count in mine.items()
            if element in theirs
        )
        union = self.size + other.size - intersection
        return intersection / union if union else 1.0


def fingerprint_acfg(
    acfg: ACFG, iterations: int = DEFAULT_WL_ITERATIONS
) -> CfgFingerprint:
    """Compute the topology-aware fingerprint of one ACFG.

    Deterministic, vertex-order invariant, and independent of the
    attribute *scaling* (it must run on raw extracted counts, before
    ``AttributeScaler.transform``).
    """
    if iterations < 0:
        raise SimilarityError(
            f"fingerprint iterations must be >= 0, got {iterations}"
        )
    n = acfg.num_vertices
    adjacency = (np.asarray(acfg.adjacency) != 0).astype(np.uint64)

    # Attributed-stream seeds: each vertex's bucket tuple, columns
    # distinguished by per-column tags (channel 3's bucket must not be
    # confused with channel 7's), combined as a sum of mixed values so
    # one matrix-wide _mix64 covers all channels at once.
    buckets = quantize_attributes(acfg.attributes).astype(np.uint64)
    if buckets.ndim == 2 and buckets.shape[1]:
        column_tags = (
            np.arange(1, buckets.shape[1] + 1, dtype=np.uint64)
            * _SPLITMIX_GAMMA
        )
        attr_seeds = _mix64(
            _mix64(buckets ^ column_tags[np.newaxis, :]).sum(axis=1)
        )
    else:
        attr_seeds = np.zeros(n, dtype=np.uint64)
    struct_seed = _mix64(np.zeros(1, dtype=np.uint64))[0]

    # Both streams run stacked as one (2, n) array: row 0 attributed,
    # row 1 pure-structure.  This is the serving tier's hot path — the
    # whole relabeling must stay far cheaper than one forward pass.
    labels = np.stack(
        [attr_seeds, np.full(n, struct_seed, dtype=np.uint64)]
    )
    domains = np.array(
        [_DOMAIN_ATTRIBUTED, _DOMAIN_STRUCTURE], dtype=np.uint64
    )
    collected = []
    for round_index in range(iterations + 1):
        if round_index:
            # One WL round, fully vectorized.  A neighbour multiset
            # enters as the *sum* of its mixed labels: addition is
            # commutative, so vertex order cannot influence the result,
            # and two different multisets colliding on their sum is a
            # ~2**-64 event.
            mixed = _mix64(labels)
            out_sum = mixed @ adjacency.T
            in_sum = mixed @ adjacency
            labels = _mix64(
                mixed * _ROLE_OWN + out_sum * _ROLE_OUT + in_sum * _ROLE_IN
            )
        # Tag by (stream, round) so identical labels from different
        # rounds stay distinct multiset elements.
        round_tags = _mix64(
            np.full(2, round_index, dtype=np.uint64)
            * _SPLITMIX_GAMMA ^ domains
        )
        collected.append(_mix64(labels ^ round_tags[:, np.newaxis]))

    multiset: Counter[int] = Counter()
    stacked = np.stack(collected)
    for stream_index, weight in ((0, 1), (1, _STRUCTURE_WEIGHT)):
        elements, counts = np.unique(
            stacked[:, stream_index, :], return_counts=True
        )
        for element, count in zip(elements.tolist(), counts.tolist()):
            multiset[element] += count * weight

    return CfgFingerprint(
        labels=tuple(sorted(multiset.items())),
        num_vertices=n,
        iterations=iterations,
    )
