"""Terminal-friendly reporting helpers.

The paper's Figures 7-11 are bar charts.  The benchmark suite and the
examples render them as aligned ASCII bars so a headless reproduction
still *shows* the figures, not just their numbers.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    fmt: str = "{:.3f}",
    sort: bool = False,
) -> str:
    """Render a labelled horizontal bar chart.

    Parameters
    ----------
    values:
        Label -> value.  Values may be counts or scores; bars scale to
        the maximum.
    width:
        Character width of the longest bar.
    fmt:
        Format applied to the numeric value column.
    sort:
        Sort bars by value descending (Figures 7/8 keep family order, so
        the default is insertion order).
    """
    items: List[Tuple[str, float]] = list(values.items())
    if sort:
        items.sort(key=lambda kv: -kv[1])
    if not items:
        return title
    label_width = max(len(label) for label, _ in items)
    peak = max((value for _, value in items), default=0.0)
    scale = width / peak if peak > 0 else 0.0
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(0, int(round(value * scale)))
        lines.append(f"{label:<{label_width}}  {fmt.format(value):>9} {bar}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
    fmt: str = "{:.3f}",
) -> str:
    """Render series side by side per label (Figure 9/10 style).

    ``groups`` maps series name -> (label -> value); all series should
    share labels.
    """
    series_names = list(groups)
    if not series_names:
        return title
    labels = list(groups[series_names[0]])
    label_width = max((len(label) for label in labels), default=0)
    peak = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    scale = width / peak if peak > 0 else 0.0
    lines = [title] if title else []
    glyphs = "#*+o@"
    for label in labels:
        for index, series_name in enumerate(series_names):
            value = groups[series_name].get(label, 0.0)
            bar = glyphs[index % len(glyphs)] * max(0, int(round(value * scale)))
            prefix = label if index == 0 else ""
            lines.append(
                f"{prefix:<{label_width}}  {series_name:>10} "
                f"{fmt.format(value):>9} {bar}"
            )
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series_names)
    )
    lines.append(f"({legend})")
    return "\n".join(lines)


def delta_chart(
    deltas: Mapping[str, float],
    title: str = "",
    width: int = 30,
    fmt: str = "{:+.3f}",
) -> str:
    """Render signed improvements around a zero axis (Figure 11 style)."""
    items = list(deltas.items())
    if not items:
        return title
    label_width = max(len(label) for label, _ in items)
    peak = max((abs(value) for _, value in items), default=0.0)
    scale = width / peak if peak > 0 else 0.0
    lines = [title] if title else []
    for label, value in items:
        magnitude = max(0, int(round(abs(value) * scale)))
        if value >= 0:
            bar = " " * width + "|" + "+" * magnitude
        else:
            bar = " " * (width - magnitude) + "-" * magnitude + "|"
        lines.append(f"{label:<{label_width}} {fmt.format(value):>8} {bar}")
    return "\n".join(lines)
