"""Batch ACFG extraction pipeline.

The paper extracts 10,868 ACFGs in ~17 hours using Python
multi-threading (Section V-A).  This module reproduces that front half of
the MAGIC workflow: a pool of workers that turn assembly text (or files,
or pre-built CFGs) into labelled ACFGs, tolerating individual failures
(packed samples that defeat disassembly are a fact of life in the Kaggle
corpus).
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cfg.builder import build_cfg_from_text
from repro.cfg.graph import ControlFlowGraph
from repro.exceptions import MagicError
from repro.features.acfg import ACFG


@dataclass
class ExtractionReport:
    """Outcome of a batch extraction run."""

    acfgs: List[ACFG]
    failures: List[Tuple[str, str]] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def num_succeeded(self) -> int:
        return len(self.acfgs)

    @property
    def num_failed(self) -> int:
        return len(self.failures)

    @property
    def seconds_per_sample(self) -> float:
        total = self.num_succeeded + self.num_failed
        if total == 0:
            return 0.0
        return self.elapsed_seconds / total


def _extract_one_from_text(
    item: Tuple[str, str, Optional[int]]
) -> ACFG:
    name, text, label = item
    cfg = build_cfg_from_text(text, name=name)
    return ACFG.from_cfg(cfg, label=label)


def _describe_failure(exc: Exception) -> str:
    """One-line failure record for ``ExtractionReport.failures``.

    Expected, domain-level failures (``MagicError`` subclasses — packed
    samples, unparseable listings) keep their message; anything else is
    a bug in a worker or a parser edge case, so the exception type is
    kept for triage.  Either way the batch continues.
    """
    if isinstance(exc, MagicError):
        return str(exc)
    return f"unexpected {type(exc).__name__}: {exc}"


class AcfgPipeline:
    """Parallel ACFG extraction from assembly text or pre-built CFGs.

    Parameters
    ----------
    max_workers:
        Thread-pool size; ``1`` (the default) runs inline, which is the
        right choice for small corpora and deterministic tests.
    """

    def __init__(self, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise MagicError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def extract_from_texts(
        self,
        samples: Sequence[Tuple[str, str, Optional[int]]],
    ) -> ExtractionReport:
        """Extract ACFGs from ``(name, asm_text, label)`` triples.

        Failures are collected per-sample rather than aborting the batch.
        Result order follows input order for succeeded samples.
        """
        return self._run(samples, _extract_one_from_text)

    def extract_from_cfgs(
        self,
        samples: Sequence[Tuple[ControlFlowGraph, Optional[int]]],
    ) -> ExtractionReport:
        """Extract ACFGs from pre-built CFGs (the YANCFG ingestion path)."""
        items = [(cfg.name, cfg, label) for cfg, label in samples]

        def worker(item: Tuple[str, ControlFlowGraph, Optional[int]]) -> ACFG:
            _, cfg, label = item
            return ACFG.from_cfg(cfg, label=label)

        return self._run(items, worker)

    def _run(
        self,
        items: Sequence[Tuple],
        worker: Callable,
    ) -> ExtractionReport:
        started = time.perf_counter()
        acfgs: List[ACFG] = []
        failures: List[Tuple[str, str]] = []

        if self.max_workers == 1:
            for item in items:
                self._collect(worker, item, acfgs, failures)
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers
            ) as pool:
                # Futures are keyed by input *index*, not sample name:
                # names are caller-provided and may collide, and a name
                # key would silently drop one result and duplicate the
                # other when two samples share a name.
                futures = {
                    pool.submit(worker, item): index
                    for index, item in enumerate(items)
                }
                results: Dict[int, ACFG] = {}
                failed: Dict[int, Tuple[str, str]] = {}
                for future in concurrent.futures.as_completed(futures):
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except Exception as exc:  # noqa: BLE001 — see _describe
                        failed[index] = (items[index][0], _describe_failure(exc))
                # Preserve input order among successes and failures alike.
                for index in range(len(items)):
                    if index in results:
                        acfgs.append(results[index])
                    else:
                        failures.append(failed[index])

        elapsed = time.perf_counter() - started
        return ExtractionReport(
            acfgs=acfgs, failures=failures, elapsed_seconds=elapsed
        )

    @staticmethod
    def _collect(
        worker: Callable,
        item: Tuple,
        acfgs: List[ACFG],
        failures: List[Tuple[str, str]],
    ) -> None:
        try:
            acfgs.append(worker(item))
        except Exception as exc:  # noqa: BLE001 — tolerate any sample failure
            failures.append((item[0], _describe_failure(exc)))
