"""Fault-tolerant batch ACFG extraction service.

The paper extracts 10,868 ACFGs in ~17 hours using Python
multi-threading (Section V-A) and explicitly tolerates packed samples
that defeat disassembly.  This module reproduces that front half of the
MAGIC workflow as a *service* that survives the failure modes a
production corpus actually produces:

* per-sample failures are classified into a structured taxonomy
  (:class:`FailureKind`) instead of aborting the batch;
* a process-pool mode gives per-sample wall-clock timeouts and a
  graph-size guard — a hung or pathological sample is killed and the
  batch continues (threads cannot be cancelled, so the killable path
  runs on :class:`~repro.features.pool.ProcessWorkerPool`);
* a JSONL journal (one line per finished sample, torn-line tolerant)
  makes multi-hour runs SIGKILL-and-resumable;
* failed inputs can be preserved in a quarantine directory for triage;
* a deterministic fault plan (:mod:`repro.testing.faults`) can poison
  chosen sample indices so every recovery path is testable.
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import re
import shutil
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.cfg.builder import build_cfg_from_text
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.serialization import acfg_from_text, acfg_to_text, cfg_to_dict
from repro.exceptions import (
    ConfigurationError,
    MagicError,
    OversizeGraphError,
)
from repro.features.acfg import ACFG
from repro.features.journal import open_journal, samples_fingerprint
from repro.features.pool import ProcessWorkerPool
from repro.testing.faults import FaultPlan


class FailureKind(str, Enum):
    """Structured taxonomy of per-sample extraction failures."""

    #: Expected, domain-level failure: the sample defeats parsing / CFG
    #: construction / attribute extraction (packed binaries, empty
    #: listings).  The paper's baseline failure mode.
    PARSE = "parse"
    #: The sample exceeded the per-sample wall-clock limit and its
    #: worker process was killed.
    TIMEOUT = "timeout"
    #: The sample's graph tripped the ``max_vertices`` size guard.
    OVERSIZE = "oversize"
    #: The worker process died without reporting (segfault, OOM kill).
    CRASH = "crash"
    #: Anything else: a bug in a worker, a parser edge case raising a
    #: non-domain exception, or corrupt worker output.
    UNEXPECTED = "unexpected"


@dataclass(frozen=True)
class ExtractionFailure:
    """One sample that did not produce an ACFG, with triage context."""

    name: str
    kind: FailureKind
    detail: str = ""
    index: int = -1

    def describe(self) -> str:
        return f"{self.name} [{self.kind.value}] {self.detail}"


@dataclass
class ExtractionReport:
    """Outcome of a batch extraction run."""

    acfgs: List[ACFG]
    failures: List[ExtractionFailure] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Samples replayed from a resume journal rather than re-extracted.
    resumed_samples: int = 0

    @property
    def num_succeeded(self) -> int:
        return len(self.acfgs)

    @property
    def num_failed(self) -> int:
        return len(self.failures)

    @property
    def seconds_per_sample(self) -> float:
        total = self.num_succeeded + self.num_failed
        if total == 0:
            return 0.0
        return self.elapsed_seconds / total

    def failures_by_kind(self) -> Dict[FailureKind, List[ExtractionFailure]]:
        grouped: Dict[FailureKind, List[ExtractionFailure]] = {}
        for failure in self.failures:
            grouped.setdefault(failure.kind, []).append(failure)
        return grouped


# ----------------------------------------------------------------------
# worker registry
#
# Workers are referenced by *name* so the process pool never pickles a
# callable (closures would break, and spawn-based platforms could not
# import them).  Each worker owns its journal payload codec and its
# quarantine writer, keeping the service generic over what a "sample" is.


@dataclass(frozen=True)
class WorkerContext:
    """Picklable per-run settings shipped into every worker."""

    max_vertices: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None


@dataclass(frozen=True)
class WorkerSpec:
    """One registered extraction worker and its serialization hooks."""

    fn: Callable[[Tuple, WorkerContext], Any]
    encode: Callable[[Any], Dict]
    decode: Callable[[Dict], Any]
    validate: Callable[[Any], bool]
    quarantine: Callable[[Tuple, str], None]


def _guard_size(name: str, num_vertices: int, ctx: WorkerContext) -> None:
    if ctx.max_vertices is not None and num_vertices > ctx.max_vertices:
        raise OversizeGraphError(name, num_vertices, ctx.max_vertices)


def _worker_text(item: Tuple, ctx: WorkerContext) -> ACFG:
    name, text, label = item
    cfg = build_cfg_from_text(text, name=name)
    _guard_size(name, cfg.num_vertices, ctx)
    return ACFG.from_cfg(cfg, label=label)


def _worker_cfg(item: Tuple, ctx: WorkerContext) -> ACFG:
    name, cfg, label = item
    _guard_size(name, cfg.num_vertices, ctx)
    return ACFG.from_cfg(cfg, label=label)


def _worker_cfg_json(item: Tuple, ctx: WorkerContext) -> Dict:
    """CLI ``extract`` unit: listing file -> cached CFG JSON on disk.

    The worker writes its own output file (workers own distinct
    destinations, so this is race-free) via a temp-file rename, so a
    kill mid-write never leaves a torn JSON behind; the returned summary
    is what lands in the journal.
    """
    from repro.asm.parser import AsmParser
    from repro.cfg.builder import CfgBuilder
    from repro.cfg.serialization import save_cfg

    name, payload, _ = item
    path, destination = payload["path"], payload["destination"]
    parser = AsmParser()
    program = parser.parse_file(path)
    cfg = CfgBuilder(resolve_target=parser.resolve_target).build(
        program, name=name
    )
    _guard_size(name, cfg.num_vertices, ctx)
    staging = destination + ".tmp"
    save_cfg(cfg, staging)
    os.replace(staging, destination)  # repro: allow[atomic-write] — worker-owned temp-file swap
    return {
        "destination": destination,
        "num_vertices": cfg.num_vertices,
        "num_edges": cfg.num_edges,
    }


def _encode_acfg(acfg: ACFG) -> Dict:
    return {
        "record": acfg_to_text(acfg.adjacency, acfg.attributes),
        "label": acfg.label,
        "name": acfg.name,
    }


def _decode_acfg(payload: Dict) -> ACFG:
    adjacency, attributes, _ = acfg_from_text(payload["record"])
    return ACFG(
        adjacency=adjacency,
        attributes=attributes,
        label=payload["label"],
        name=payload["name"],
    )


def _quarantine_text(item: Tuple, destination_base: str) -> None:
    with open(destination_base + ".asm", "w", encoding="utf-8") as handle:
        handle.write(item[1])


def _quarantine_cfg(item: Tuple, destination_base: str) -> None:
    with open(destination_base + ".json", "w", encoding="utf-8") as handle:
        json.dump(cfg_to_dict(item[1]), handle)


def _quarantine_file(item: Tuple, destination_base: str) -> None:
    source = item[1]["path"]
    extension = os.path.splitext(source)[1] or ".asm"
    shutil.copyfile(source, destination_base + extension)


_WORKERS: Dict[str, WorkerSpec] = {
    "text": WorkerSpec(
        fn=_worker_text,
        encode=_encode_acfg,
        decode=_decode_acfg,
        validate=lambda result: isinstance(result, ACFG),
        quarantine=_quarantine_text,
    ),
    "cfg": WorkerSpec(
        fn=_worker_cfg,
        encode=_encode_acfg,
        decode=_decode_acfg,
        validate=lambda result: isinstance(result, ACFG),
        quarantine=_quarantine_cfg,
    ),
    "cfg-json": WorkerSpec(
        fn=_worker_cfg_json,
        encode=lambda summary: summary,
        decode=lambda payload: payload,
        validate=lambda result: isinstance(result, dict)
        and "destination" in result,
        quarantine=_quarantine_file,
    ),
}


def resolve_worker(name: str) -> WorkerSpec:
    try:
        return _WORKERS[name]
    except KeyError:
        raise ConfigurationError(f"unknown extraction worker {name!r}")


def execute_unit(
    worker_fn: Callable[[Tuple, WorkerContext], Any],
    item: Tuple,
    index: int,
    ctx: WorkerContext,
) -> Tuple:
    """Run one unit through the fault plan and failure classifier.

    Never raises: returns ``("ok", result)`` or
    ``("fail", kind_value, detail)``.  This is the single fault-isolation
    boundary shared by the serial, thread, and process execution modes,
    so every mode classifies identically.
    """
    try:
        if ctx.fault_plan is not None:
            injected = ctx.fault_plan.apply(index)
            if injected is not None:
                return ("ok", injected)  # corrupt output; validation rejects
        return ("ok", worker_fn(item, ctx))
    except OversizeGraphError as exc:
        return ("fail", FailureKind.OVERSIZE.value, str(exc))
    except MagicError as exc:
        # Expected, domain-level failures (packed samples, unparseable
        # listings) keep their message for the report.
        return ("fail", FailureKind.PARSE.value, str(exc))
    except Exception as exc:  # repro: allow[broad-except] — fault isolation boundary
        return (
            "fail",
            FailureKind.UNEXPECTED.value,
            f"{type(exc).__name__}: {exc}",
        )


# ----------------------------------------------------------------------
# the pipeline


@dataclass
class UnitReport:
    """Generic outcome for non-ACFG workers (the CLI's CFG-JSON path)."""

    results: List[Tuple[int, str, Any]]
    failures: List[ExtractionFailure]
    elapsed_seconds: float = 0.0
    resumed_samples: int = 0


class AcfgPipeline:
    """Parallel, fault-tolerant ACFG extraction.

    Parameters
    ----------
    max_workers:
        Worker count; ``1`` without ``use_processes`` runs inline, which
        is the right choice for small corpora and deterministic tests.
    use_processes:
        Run workers in supervised child processes instead of threads.
        Required for ``timeout`` (a hung thread cannot be cancelled; a
        hung process is killed) and for surviving hard worker crashes.
    timeout:
        Per-sample wall-clock limit in seconds (process mode only).
    max_vertices:
        Graph-size guard: samples whose CFG exceeds this vertex count
        fail with :attr:`FailureKind.OVERSIZE` instead of stalling
        attribute extraction.
    journal_path:
        JSONL journal recording every finished sample; with ``resume``,
        samples already journaled are replayed instead of re-extracted.
    resume:
        Resume from ``journal_path`` (requires it to be set).
    quarantine_dir:
        Directory that receives a copy of every failing input, named
        ``<index>_<kind>_<name>``, for offline triage.
    fault_plan:
        Deterministic fault injection (testing only); see
        :mod:`repro.testing.faults`.
    """

    def __init__(
        self,
        max_workers: int = 1,
        *,
        use_processes: bool = False,
        timeout: Optional[float] = None,
        max_vertices: Optional[int] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        quarantine_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if max_workers < 1:
            raise MagicError(f"max_workers must be >= 1, got {max_workers}")
        if timeout is not None:
            if timeout <= 0:
                raise ConfigurationError(
                    f"timeout must be positive, got {timeout}"
                )
            if not use_processes:
                raise ConfigurationError(
                    "timeout requires use_processes=True: a hung thread "
                    "cannot be cancelled, only a worker process can be "
                    "killed"
                )
        if max_vertices is not None and max_vertices < 1:
            raise ConfigurationError(
                f"max_vertices must be >= 1, got {max_vertices}"
            )
        if resume and journal_path is None:
            raise ConfigurationError("resume=True requires journal_path")
        self.max_workers = max_workers
        self.use_processes = use_processes
        self.timeout = timeout
        self.max_vertices = max_vertices
        self.journal_path = journal_path
        self.resume = resume
        self.quarantine_dir = quarantine_dir
        self.fault_plan = fault_plan

    # -- public entry points ------------------------------------------

    def extract_from_texts(
        self,
        samples: Sequence[Tuple[str, str, Optional[int]]],
    ) -> ExtractionReport:
        """Extract ACFGs from ``(name, asm_text, label)`` triples.

        Failures are collected per-sample rather than aborting the batch.
        Result order follows input order for successes and failures alike.
        """
        return self._to_extraction_report(self.run_units(samples, "text"))

    def extract_from_cfgs(
        self,
        samples: Sequence[Tuple[ControlFlowGraph, Optional[int]]],
    ) -> ExtractionReport:
        """Extract ACFGs from pre-built CFGs (the YANCFG ingestion path)."""
        items = [(cfg.name, cfg, label) for cfg, label in samples]
        return self._to_extraction_report(self.run_units(items, "cfg"))

    def run_units(
        self,
        items: Sequence[Tuple[str, Any, Any]],
        worker: str,
    ) -> UnitReport:
        """Run ``(name, payload, label)`` units through a named worker.

        The generic service entry point: the CLI's CFG-JSON extraction
        uses it directly; the ACFG entry points wrap it.
        """
        started = time.perf_counter()
        spec = resolve_worker(worker)
        ctx = WorkerContext(
            max_vertices=self.max_vertices, fault_plan=self.fault_plan
        )
        fingerprint = {
            "worker": worker,
            "num_samples": len(items),
            "samples": samples_fingerprint([item[0] for item in items]),
            "timeout": self.timeout,
            "max_vertices": self.max_vertices,
        }
        journal, completed = open_journal(
            self.journal_path, fingerprint, self.resume
        )

        results: Dict[int, Any] = {}
        failures: Dict[int, ExtractionFailure] = {}
        for index, record in completed.items():
            if record["kind"] == "sample":
                try:
                    results[index] = spec.decode(record["payload"])
                except Exception as exc:  # repro: allow[broad-except] — corrupt journal
                    raise ConfigurationError(
                        f"journal entry for sample {index} "
                        f"({record.get('name', '?')}) is corrupt: {exc}"
                    )
            else:
                failures[index] = ExtractionFailure(
                    name=record["name"],
                    kind=FailureKind(record["failure_kind"]),
                    detail=record["detail"],
                    index=index,
                )
        resumed = len(completed)

        def on_fail(index: int, kind_value: str, detail: str) -> None:
            failure = ExtractionFailure(
                name=items[index][0],
                kind=FailureKind(kind_value),
                detail=detail,
                index=index,
            )
            failures[index] = failure
            if journal is not None:
                journal.record_failure(
                    index, failure.name, failure.kind.value, detail
                )
            self._quarantine(spec, items[index], failure)

        def on_ok(index: int, result: Any) -> None:
            if not spec.validate(result):
                on_fail(
                    index,
                    FailureKind.UNEXPECTED.value,
                    f"worker emitted corrupt output ({type(result).__name__})",
                )
                return
            results[index] = result
            if journal is not None:
                journal.record_sample(
                    index, items[index][0], spec.encode(result)
                )

        pending = [
            (index, item)
            for index, item in enumerate(items)
            if index not in results and index not in failures
        ]
        try:
            if self.use_processes:
                ProcessWorkerPool(
                    worker, ctx, self.max_workers, timeout=self.timeout
                ).run(pending, on_ok, on_fail)
            elif self.max_workers == 1:
                for index, item in pending:
                    self._apply(
                        execute_unit(spec.fn, item, index, ctx),
                        index, on_ok, on_fail,
                    )
            else:
                self._run_threaded(spec, ctx, pending, on_ok, on_fail)
        finally:
            if journal is not None:
                journal.close()

        ordered = sorted(set(results) | set(failures))
        return UnitReport(
            results=[
                (index, items[index][0], results[index])
                for index in ordered
                if index in results
            ],
            failures=[
                failures[index] for index in ordered if index in failures
            ],
            elapsed_seconds=time.perf_counter() - started,
            resumed_samples=resumed,
        )

    # -- internals ----------------------------------------------------

    @staticmethod
    def _apply(outcome: Tuple, index: int, on_ok, on_fail) -> None:
        status, *payload = outcome
        if status == "ok":
            on_ok(index, payload[0])
        else:
            on_fail(index, payload[0], payload[1])

    def _run_threaded(self, spec, ctx, pending, on_ok, on_fail) -> None:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            # Futures are keyed by input *index*, not sample name: names
            # are caller-provided and may collide, and a name key would
            # silently drop one result when two samples share a name.
            futures = {
                pool.submit(execute_unit, spec.fn, item, index, ctx): index
                for index, item in pending
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                self._apply(future.result(), index, on_ok, on_fail)

    def _quarantine(
        self, spec: WorkerSpec, item: Tuple, failure: ExtractionFailure
    ) -> None:
        if self.quarantine_dir is None:
            return
        os.makedirs(self.quarantine_dir, exist_ok=True)
        safe_name = re.sub(r"[^\w.-]+", "_", failure.name) or "sample"
        destination_base = os.path.join(
            self.quarantine_dir,
            f"{failure.index:06d}_{failure.kind.value}_{safe_name}",
        )
        try:
            spec.quarantine(item, destination_base)
        except Exception:  # repro: allow[broad-except] — quarantine is best-effort
            pass

    @staticmethod
    def _to_extraction_report(report: UnitReport) -> ExtractionReport:
        return ExtractionReport(
            acfgs=[acfg for _, _, acfg in report.results],
            failures=report.failures,
            elapsed_seconds=report.elapsed_seconds,
            resumed_samples=report.resumed_samples,
        )
