"""JSON-lines checkpoint journal for extraction runs.

The paper's MSKCFG preprocessing is a 17-hour batch job; at that scale an
extraction run must survive SIGKILL.  :class:`ExtractionJournal` mirrors
the sweep engine's :class:`~repro.train.sweep.SweepJournal`: line 1 is a
header fingerprinting the run (worker kind, sample count, an order-aware
hash of the sample names, timeout and size-guard settings), every
subsequent line records one *finished* sample — success payload or
structured failure — and a torn final line (the run was killed mid-write)
is tolerated on load.  Resuming against a journal whose fingerprint
differs raises :class:`~repro.exceptions.ConfigurationError` rather than
silently splicing two different runs together.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.fileio import JsonlAppendWriter

#: Journal schema version; bumped on incompatible format changes.
JOURNAL_VERSION = 1


def samples_fingerprint(names: Sequence[str]) -> str:
    """Order-aware content hash of the input sample names.

    Sample *names* (not payloads) keep header writes cheap on large
    corpora while still catching the dangerous resume mistakes: a
    different corpus, a reordered corpus, or a truncated one.
    """
    digest = hashlib.sha256()
    for name in names:
        digest.update(name.encode("utf-8", errors="replace"))
        digest.update(b"\x00")
    digest.update(str(len(names)).encode("ascii"))
    return digest.hexdigest()[:16]


class ExtractionJournal:
    """Append-only JSONL record of per-sample extraction outcomes.

    Completed entries are keyed by *input index*: sample names are
    caller-provided and may collide, but the position in the input
    sequence is unique, and the fingerprint pins the input sequence
    itself.
    """

    def __init__(self, path: str, fingerprint: Dict[str, Any]) -> None:
        self.path = path
        self.fingerprint = dict(fingerprint, version=JOURNAL_VERSION)
        self._writer: Optional[JsonlAppendWriter] = None

    # -- reading ------------------------------------------------------

    def load_completed(self) -> Dict[int, Dict[str, Any]]:
        """Finished samples from a previous run, keyed by input index.

        Each value is the raw journal record (``kind`` is ``"sample"``
        for a success carrying its encoded payload, ``"failure"`` for a
        structured failure).  Both are replayed on resume: extraction
        failures are deterministic properties of the input, so redoing
        them would only re-pay the timeout.  Empty when the journal does
        not exist yet.
        """
        if not os.path.exists(self.path):
            return {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"extraction journal {self.path!r} has an unreadable "
                f"header: {exc}"
            )
        if header.get("kind") != "header":
            raise ConfigurationError(
                f"extraction journal {self.path!r} does not start with a "
                "header line"
            )
        recorded = {k: v for k, v in header.items() if k != "kind"}
        if recorded != self.fingerprint:
            raise ConfigurationError(
                "extraction journal fingerprint mismatch — the journal at "
                f"{self.path!r} was written by a run configured as "
                f"{recorded}, but this run is {self.fingerprint}; refusing "
                "to resume across different inputs or settings"
            )
        completed: Dict[int, Dict[str, Any]] = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a killed run
            if record.get("kind") not in ("sample", "failure"):
                continue
            index = record.get("index")
            if isinstance(index, int):
                completed[index] = record
        return completed

    # -- writing ------------------------------------------------------

    def open_for_append(self, fresh: bool) -> None:
        self._writer = JsonlAppendWriter.open(self.path, fresh=fresh)
        if self._writer.created:
            self._write_line(dict({"kind": "header"}, **self.fingerprint))

    def record_sample(
        self, index: int, name: str, payload: Dict[str, Any]
    ) -> None:
        self._write_line(
            {"kind": "sample", "index": index, "name": name,
             "payload": payload}
        )

    def record_failure(self, index: int, name: str, kind: str,
                       detail: str) -> None:
        self._write_line(
            {"kind": "failure", "index": index, "name": name,
             "failure_kind": kind, "detail": detail}
        )

    def _write_line(self, record: Dict[str, Any]) -> None:
        if self._writer is not None:
            self._writer.write_record(record)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


def open_journal(
    path: Optional[str], fingerprint: Dict[str, Any], resume: bool
) -> Tuple[Optional[ExtractionJournal], Dict[int, Dict[str, Any]]]:
    """Standard open-or-resume dance shared by the pipeline entry points."""
    if path is None:
        return None, {}
    journal = ExtractionJournal(path, fingerprint)
    completed = journal.load_completed() if resume else {}
    journal.open_for_append(fresh=not resume)
    return journal, completed
