"""Attributed CFG extraction (Section II-B, Table I)."""

from repro.features.acfg import ACFG
from repro.features.attributes import (
    DEFAULT_ATTRIBUTES,
    attribute_names,
    extract_attribute_matrix,
    extract_block_attributes,
    num_attributes,
    register_attribute,
    unregister_attribute,
)
from repro.features.extra_attributes import (
    EXTENDED_ATTRIBUTES,
    disable_extended_attributes,
    enable_extended_attributes,
)
from repro.features.journal import ExtractionJournal
from repro.features.pipeline import (
    AcfgPipeline,
    ExtractionFailure,
    ExtractionReport,
    FailureKind,
)
from repro.features.scaling import AttributeScaler

__all__ = [
    "ACFG",
    "AcfgPipeline",
    "AttributeScaler",
    "DEFAULT_ATTRIBUTES",
    "EXTENDED_ATTRIBUTES",
    "ExtractionFailure",
    "ExtractionJournal",
    "ExtractionReport",
    "FailureKind",
    "disable_extended_attributes",
    "enable_extended_attributes",
    "attribute_names",
    "extract_attribute_matrix",
    "extract_block_attributes",
    "num_attributes",
    "register_attribute",
    "unregister_attribute",
]
