"""Attributed control flow graph (ACFG).

The ACFG is the unit of input to DGCNN: a directed graph abstracted to
its adjacency matrix ``A`` plus a per-vertex attribute matrix ``X`` of
shape ``(n, c)`` (Section II-B).  The class also precomputes the
normalized propagation operator ``D̂^-1 Â`` of Equation (1) so that the
graph-convolution layers do not repeat the normalization on every
forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.sparse

from repro.cfg.graph import ControlFlowGraph
from repro.exceptions import FeatureExtractionError
from repro.features.attributes import extract_attribute_matrix


@dataclass
class ACFG:
    """An attributed CFG: ``(A, X)`` plus an optional family label.

    Parameters
    ----------
    adjacency:
        Dense adjacency matrix ``A`` of shape ``(n, n)``; not necessarily
        symmetric (the CFG is directed).
    attributes:
        Attribute matrix ``X`` of shape ``(n, c)``.
    label:
        Family label (class index) for supervised training, or ``None``.
    name:
        Identifier of the originating sample, for error reporting.
    """

    adjacency: np.ndarray
    attributes: np.ndarray
    label: Optional[int] = None
    name: str = ""
    _propagation: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _propagation_sparse: Optional[scipy.sparse.csr_matrix] = field(
        default=None, repr=False, compare=False
    )
    _augmented_sparse: Optional[scipy.sparse.csr_matrix] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.adjacency = np.asarray(self.adjacency, dtype=np.float64)
        self.attributes = np.asarray(self.attributes, dtype=np.float64)
        n = self.adjacency.shape[0]
        if self.adjacency.ndim != 2 or self.adjacency.shape != (n, n):
            raise FeatureExtractionError(
                f"{self.name or 'ACFG'}: adjacency must be square, "
                f"got {self.adjacency.shape}"
            )
        if self.attributes.ndim != 2 or self.attributes.shape[0] != n:
            raise FeatureExtractionError(
                f"{self.name or 'ACFG'}: attributes must have one row per "
                f"vertex ({n}), got {self.attributes.shape}"
            )
        if n == 0:
            raise FeatureExtractionError(
                f"{self.name or 'ACFG'}: graph has no vertices"
            )
        if not np.isfinite(self.attributes).all():
            raise FeatureExtractionError(
                f"{self.name or 'ACFG'}: attributes contain NaN/inf"
            )
        if not np.isfinite(self.adjacency).all():
            raise FeatureExtractionError(
                f"{self.name or 'ACFG'}: adjacency contains NaN/inf"
            )

    @property
    def num_vertices(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_attributes(self) -> int:
        """The number of attribute channels ``c``."""
        return self.attributes.shape[1]

    @property
    def num_edges(self) -> int:
        return int(np.count_nonzero(self.adjacency))

    def augmented_adjacency(self) -> np.ndarray:
        """``Â = A + I``."""
        augmented = self.adjacency.copy()
        np.fill_diagonal(augmented, augmented.diagonal() + 1.0)
        return augmented

    def propagation_operator(self) -> np.ndarray:
        """``D̂^-1 Â``, the row-normalized augmented adjacency.

        ``D̂`` is always invertible because the self-loop guarantees every
        row sum is at least one.  The result is cached: ACFGs are
        immutable once constructed.
        """
        if self._propagation is None:
            augmented = self.augmented_adjacency()
            degrees = augmented.sum(axis=1, keepdims=True)
            self._propagation = augmented / degrees
        return self._propagation

    def propagation_operator_sparse(self) -> scipy.sparse.csr_matrix:
        """``D̂^-1 Â`` as a cached CSR matrix.

        This is the form :class:`~repro.core.batched.GraphBatch` assembles
        into its block-diagonal operator.  CFGs are sparse (out-degree is
        bounded by the branching factor), so CSR stores ``n + |E|`` values
        instead of ``n^2`` — assembling batches from dense blocks would
        keep every explicit zero and make the "sparse" product slower
        than the dense per-graph loop.
        """
        if self._propagation_sparse is None:
            self._propagation_sparse = scipy.sparse.csr_matrix(
                self.propagation_operator()
            )
        return self._propagation_sparse

    def augmented_adjacency_sparse(self) -> scipy.sparse.csr_matrix:
        """``Â = A + I`` as a cached CSR matrix (unnormalized ablation)."""
        if self._augmented_sparse is None:
            self._augmented_sparse = scipy.sparse.csr_matrix(
                self.augmented_adjacency()
            )
        return self._augmented_sparse

    @classmethod
    def from_cfg(
        cls,
        cfg: ControlFlowGraph,
        label: Optional[int] = None,
    ) -> "ACFG":
        """Extract an ACFG from a built CFG using the Table I attributes.

        The extracted matrix is checked against the ACFG semantic
        invariants (:mod:`repro.features.validator`) before it leaves the
        front end — a custom registered extractor that emits negative or
        fractional counts fails here, at the extraction boundary, rather
        than as an unexplained accuracy regression downstream.
        """
        from repro.features.validator import validate_attributes

        acfg = cls(
            adjacency=cfg.adjacency_matrix(),
            attributes=extract_attribute_matrix(cfg),
            label=label,
            name=cfg.name,
        )
        validate_attributes(acfg.attributes, acfg.adjacency, name=acfg.name)
        return acfg
