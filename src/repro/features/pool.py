"""Compatibility shim: the supervised pool moved to ``repro.workers``.

The batch-mode :class:`ProcessWorkerPool` (pipe transport, per-sample
wall-clock deadline with SIGKILL+respawn, crash detection via pipe EOF)
now lives in :mod:`repro.workers.pool`, where it shares its process
machinery with the long-lived request workers that back the serving
fleet.  This module re-exports the public (and test-visible) names so
existing imports — notably ``from repro.features.pool import
ProcessWorkerPool`` in :mod:`repro.features.pipeline` — keep working
unchanged.
"""

from repro.workers.pool import (
    _JOIN_SECONDS,
    _TICK_SECONDS,
    ProcessWorkerPool,
    _Slot,
    _worker_main,
)

__all__ = [
    "ProcessWorkerPool",
    "_Slot",
    "_worker_main",
    "_TICK_SECONDS",
    "_JOIN_SECONDS",
]
