"""Block-level attribute extraction (Table I of the paper).

Each basic block is summarized by 11 numeric attributes:

From the code sequence (independent of graph structure):
  0. # Numeric Constants
  1. # Transfer Instructions
  2. # Call Instructions
  3. # Arithmetic Instructions
  4. # Compare Instructions
  5. # Mov Instructions
  6. # Termination Instructions
  7. # Data Declaration Instructions
  8. # Total Instructions

From the vertex structure:
  9. # Offspring, i.e. out-degree
 10. # Instructions in the Vertex

"More attributes can be conveniently added" (Section II-B): register an
extractor with :func:`register_attribute` and every downstream consumer —
ACFG construction, datasets, models — picks it up through
:func:`attribute_names` / :func:`extract_block_attributes`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.asm.isa import InstructionCategory
from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.exceptions import FeatureExtractionError

#: Extractor signature: (block, graph) -> float.
AttributeExtractor = Callable[[BasicBlock, ControlFlowGraph], float]


def _count_category(block: BasicBlock, category: InstructionCategory) -> float:
    return float(sum(1 for inst in block.instructions if inst.category is category))


def _numeric_constants(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return float(sum(inst.count_numeric_constants() for inst in block.instructions))


def _transfer(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return _count_category(block, InstructionCategory.TRANSFER)


def _call(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return _count_category(block, InstructionCategory.CALL)


def _arithmetic(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return _count_category(block, InstructionCategory.ARITHMETIC)


def _compare(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return _count_category(block, InstructionCategory.COMPARE)


def _mov(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return _count_category(block, InstructionCategory.MOV)


def _termination(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return _count_category(block, InstructionCategory.TERMINATION)


def _data_declaration(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return _count_category(block, InstructionCategory.DATA_DECLARATION)


def _total_instructions(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return float(len(block))


def _offspring(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return float(graph.out_degree(block))


def _vertex_instructions(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return float(len(block))


#: Ordered registry of attribute extractors; order defines channel order.
_REGISTRY: Dict[str, AttributeExtractor] = {
    "numeric_constants": _numeric_constants,
    "transfer_instructions": _transfer,
    "call_instructions": _call,
    "arithmetic_instructions": _arithmetic,
    "compare_instructions": _compare,
    "mov_instructions": _mov,
    "termination_instructions": _termination,
    "data_declaration_instructions": _data_declaration,
    "total_instructions": _total_instructions,
    "offspring": _offspring,
    "vertex_instructions": _vertex_instructions,
}

#: The 11 attributes of Table I, in registry order.
DEFAULT_ATTRIBUTES: List[str] = list(_REGISTRY)


def attribute_names() -> List[str]:
    """Names of all registered attributes, in channel order."""
    return list(_REGISTRY)


def num_attributes() -> int:
    """Number of registered attribute channels (``c`` in the paper)."""
    return len(_REGISTRY)


def register_attribute(name: str, extractor: AttributeExtractor) -> None:
    """Register a custom block attribute.

    The new channel is appended after the existing ones.  Re-registering
    an existing name is rejected to keep channel order stable.
    """
    if name in _REGISTRY:
        raise FeatureExtractionError(f"attribute {name!r} already registered")
    _REGISTRY[name] = extractor


def unregister_attribute(name: str) -> None:
    """Remove a previously registered custom attribute."""
    if name in DEFAULT_ATTRIBUTES:
        raise FeatureExtractionError(f"cannot remove built-in attribute {name!r}")
    if name not in _REGISTRY:
        raise FeatureExtractionError(f"attribute {name!r} is not registered")
    del _REGISTRY[name]


def extract_block_attributes(
    block: BasicBlock, graph: ControlFlowGraph
) -> np.ndarray:
    """The attribute vector of one block, shape ``(c,)``."""
    return np.array(
        [extractor(block, graph) for extractor in _REGISTRY.values()],
        dtype=np.float64,
    )


def extract_attribute_matrix(graph: ControlFlowGraph) -> np.ndarray:
    """The attribute matrix ``X`` of shape ``(n, c)`` in vertex order."""
    blocks = graph.blocks()
    if not blocks:
        raise FeatureExtractionError(
            f"cannot extract attributes from empty CFG {graph.name!r}"
        )
    return np.stack([extract_block_attributes(b, graph) for b in blocks])
