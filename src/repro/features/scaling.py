"""Attribute scaling for ACFGs.

Raw Table I attributes are heavy-tailed counts (a dispatcher block may
hold hundreds of instructions while most hold a handful).  Feeding raw
counts into tanh graph convolutions saturates them immediately, so MAGIC
standardizes attributes over the *training* split.  The scaler applies
``log1p`` first (count data) and then a per-channel z-score.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import FeatureExtractionError
from repro.features.acfg import ACFG


class AttributeScaler:
    """``log1p`` + per-channel standardization fitted on training ACFGs.

    The scaler must be fitted on the training split only and then applied
    to both splits — fitting on validation data would leak label-adjacent
    statistics across the fold boundary.
    """

    def __init__(self, use_log: bool = True) -> None:
        self.use_log = use_log
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def _pretransform(self, attributes: np.ndarray) -> np.ndarray:
        if self.use_log:
            return np.log1p(np.maximum(attributes, 0.0))
        return attributes

    def fit(self, acfgs: Sequence[ACFG]) -> "AttributeScaler":
        if not acfgs:
            raise FeatureExtractionError("cannot fit a scaler on zero ACFGs")
        stacked = np.concatenate(
            [self._pretransform(a.attributes) for a in acfgs], axis=0
        )
        self.mean_ = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        # Constant channels scale to zero rather than exploding.
        std[std < 1e-12] = 1.0
        self.std_ = std
        return self

    def transform_matrix(self, attributes: np.ndarray) -> np.ndarray:
        """Scale one raw attribute matrix to z-scored feature space."""
        if not self.is_fitted:
            raise FeatureExtractionError("scaler used before fit()")
        return (self._pretransform(np.asarray(attributes)) - self.mean_) / self.std_

    def inverse_transform_matrix(self, scaled: np.ndarray) -> np.ndarray:
        """Map a scaled matrix back to raw count space.

        Inverts ``transform_matrix`` up to the ``max(x, 0)`` clamp in the
        forward direction: the round trip is exact for the non-negative
        count matrices ACFG extraction produces.  The adversarial attack
        uses this to project perturbed *scaled* features back onto ACFG
        semantics, which are defined over raw counts.
        """
        if not self.is_fitted:
            raise FeatureExtractionError("scaler used before fit()")
        raw = np.asarray(scaled) * self.std_ + self.mean_
        if self.use_log:
            raw = np.expm1(raw)
        return np.maximum(raw, 0.0)

    def transform(self, acfgs: Sequence[ACFG]) -> List[ACFG]:
        """Scaled copies of ``acfgs``; adjacency and labels are shared."""
        if not self.is_fitted:
            raise FeatureExtractionError("scaler used before fit()")
        transformed = []
        for acfg in acfgs:
            scaled = self.transform_matrix(acfg.attributes)
            transformed.append(
                ACFG(
                    adjacency=acfg.adjacency,
                    attributes=scaled,
                    label=acfg.label,
                    name=acfg.name,
                )
            )
        return transformed

    def fit_transform(self, acfgs: Sequence[ACFG]) -> List[ACFG]:
        return self.fit(acfgs).transform(acfgs)
