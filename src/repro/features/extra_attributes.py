"""Optional extra block attributes beyond Table I.

Section II-B: "more attributes can be conveniently added to further
improve malware classification performance."  This module provides a
curated set of such extras and a one-call switch.  They are *off* by
default so that the default channel layout matches the paper exactly.

Usage::

    from repro.features.extra_attributes import enable_extended_attributes
    enable_extended_attributes()          # now c = 11 + 4
    ...
    disable_extended_attributes()         # restore the Table I layout
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List

from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.features.attributes import register_attribute, unregister_attribute


def _in_degree(block: BasicBlock, graph: ControlFlowGraph) -> float:
    """Predecessor count: join points and loop headers score high."""
    return float(graph.in_degree(block))


def _mnemonic_entropy(block: BasicBlock, graph: ControlFlowGraph) -> float:
    """Shannon entropy of the block's mnemonic distribution.

    Junk-code padding repeats a few mnemonics (low entropy); hand-written
    or compiler-generated code mixes more operations.
    """
    if block.is_empty:
        return 0.0
    counts = Counter(inst.mnemonic for inst in block.instructions)
    total = len(block)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def _unique_mnemonics(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return float(len({inst.mnemonic for inst in block.instructions}))


def _operand_count(block: BasicBlock, graph: ControlFlowGraph) -> float:
    return float(sum(len(inst.operands) for inst in block.instructions))


#: Name -> extractor of every extended attribute, in channel order.
EXTENDED_ATTRIBUTES = {
    "in_degree": _in_degree,
    "mnemonic_entropy": _mnemonic_entropy,
    "unique_mnemonics": _unique_mnemonics,
    "operand_count": _operand_count,
}


def enable_extended_attributes() -> List[str]:
    """Register all extended attributes; returns the names added."""
    added = []
    for name, extractor in EXTENDED_ATTRIBUTES.items():
        register_attribute(name, extractor)
        added.append(name)
    return added


def disable_extended_attributes() -> None:
    """Unregister the extended attributes, restoring Table I layout."""
    for name in EXTENDED_ATTRIBUTES:
        unregister_attribute(name)
