"""ACFG semantic-invariant validator and projector.

Table I attributes are not free real-valued vectors: they are counts
derived from a concrete basic block and its CFG context, so any matrix
that claims to be an ACFG attribute matrix must satisfy a handful of
semantic invariants:

* every count channel is a non-negative integer;
* ``offspring`` equals the vertex's out-degree in the adjacency matrix;
* ``vertex_instructions`` equals ``total_instructions`` (both are
  defined as the block's instruction count);
* the per-category instruction counts (transfer/call/arithmetic/compare/
  mov/termination/data-declaration) sum to at most
  ``total_instructions`` (the ISA also has an OTHER category, so the sum
  may fall short but never exceed);
* ``total_instructions`` is at least one (a basic block is non-empty).

Three consumers share this module: extraction (:meth:`ACFG.from_cfg`
validates its own output), the feature-space adversarial attack
(:mod:`repro.adv.attack` projects every gradient step back onto this
set), and the test suite.  :func:`project_attributes` is idempotent —
projecting an already-valid matrix returns it unchanged — which the
attack relies on and ``tests/features/test_validator.py`` pins.

Channels are resolved from the attribute registry by *name*, so custom
channels appended via :func:`repro.features.attributes.register_attribute`
are passed through untouched (only finiteness is required of them).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import FeatureExtractionError
from repro.features.attributes import attribute_names

#: Tolerance for "is an integer" checks on float64 count channels.
_INTEGER_TOLERANCE = 1e-6

#: Instruction-category channels whose sum is bounded by the block total.
CATEGORY_CHANNELS = (
    "transfer_instructions",
    "call_instructions",
    "arithmetic_instructions",
    "compare_instructions",
    "mov_instructions",
    "termination_instructions",
    "data_declaration_instructions",
)

#: Channels the non-negative-integer check applies to: every Table I
#: channel is a count.  Custom registered channels are *not* listed here
#: and therefore only need to be finite.
_COUNT_CHANNELS = frozenset({
    "numeric_constants",
    "total_instructions",
    "offspring",
    "vertex_instructions",
    *CATEGORY_CHANNELS,
})


@dataclasses.dataclass(frozen=True)
class SemanticViolation:
    """One violated ACFG invariant, attributed to a vertex and channel."""

    vertex: int
    channel: str
    detail: str

    def describe(self) -> str:
        return f"vertex {self.vertex} [{self.channel}]: {self.detail}"


def _channel_index(names: Sequence[str], name: str) -> Optional[int]:
    try:
        return names.index(name)  # type: ignore[attr-defined]
    except ValueError:
        return None


def _out_degrees(adjacency: np.ndarray) -> np.ndarray:
    """Out-degree per vertex: the number of distinct successors."""
    return np.count_nonzero(np.asarray(adjacency) != 0.0, axis=1).astype(
        np.float64
    )


def semantic_violations(
    attributes: np.ndarray,
    adjacency: np.ndarray,
    names: Optional[Sequence[str]] = None,
) -> List[SemanticViolation]:
    """All semantic-invariant violations of an attribute matrix.

    ``names`` defaults to the live attribute registry; pass it explicitly
    when validating matrices extracted under a different channel set.
    """
    names = list(names) if names is not None else attribute_names()
    attributes = np.asarray(attributes, dtype=np.float64)
    if attributes.ndim != 2 or attributes.shape[1] != len(names):
        raise FeatureExtractionError(
            f"attribute matrix shape {attributes.shape} does not match "
            f"{len(names)} registered channels"
        )
    violations: List[SemanticViolation] = []

    bad_finite = ~np.isfinite(attributes)
    for vertex, channel in zip(*np.nonzero(bad_finite)):
        violations.append(SemanticViolation(
            int(vertex), names[channel], "value is not finite"
        ))
    if violations:
        # Every later check compares against non-finite garbage; stop here.
        return violations

    count_columns = [
        index for index, name in enumerate(names)
        if name in _COUNT_CHANNELS
    ]
    for column in count_columns:
        values = attributes[:, column]
        for vertex in np.nonzero(values < 0.0)[0]:
            violations.append(SemanticViolation(
                int(vertex), names[column],
                f"count is negative ({values[vertex]!r})",
            ))
        rounded = np.round(values)
        for vertex in np.nonzero(np.abs(values - rounded) > _INTEGER_TOLERANCE)[0]:
            violations.append(SemanticViolation(
                int(vertex), names[column],
                f"count is not an integer ({values[vertex]!r})",
            ))

    offspring = _channel_index(names, "offspring")
    if offspring is not None:
        degrees = _out_degrees(adjacency)
        for vertex in np.nonzero(
            np.abs(attributes[:, offspring] - degrees) > _INTEGER_TOLERANCE
        )[0]:
            violations.append(SemanticViolation(
                int(vertex), "offspring",
                f"offspring {attributes[vertex, offspring]!r} != "
                f"out-degree {degrees[vertex]!r}",
            ))

    total = _channel_index(names, "total_instructions")
    vertex_count = _channel_index(names, "vertex_instructions")
    if total is not None:
        for vertex in np.nonzero(attributes[:, total] < 1.0 - _INTEGER_TOLERANCE)[0]:
            violations.append(SemanticViolation(
                int(vertex), "total_instructions",
                "basic block holds no instructions",
            ))
    if total is not None and vertex_count is not None:
        for vertex in np.nonzero(
            np.abs(attributes[:, total] - attributes[:, vertex_count])
            > _INTEGER_TOLERANCE
        )[0]:
            violations.append(SemanticViolation(
                int(vertex), "vertex_instructions",
                f"vertex_instructions {attributes[vertex, vertex_count]!r} != "
                f"total_instructions {attributes[vertex, total]!r}",
            ))

    category_columns = [
        index for index, name in enumerate(names) if name in CATEGORY_CHANNELS
    ]
    if total is not None and category_columns:
        category_sum = attributes[:, category_columns].sum(axis=1)
        for vertex in np.nonzero(
            category_sum > attributes[:, total] + _INTEGER_TOLERANCE
        )[0]:
            violations.append(SemanticViolation(
                int(vertex), "total_instructions",
                f"category counts sum to {category_sum[vertex]!r}, "
                f"exceeding total_instructions "
                f"{attributes[vertex, total]!r}",
            ))
    return violations


def validate_attributes(
    attributes: np.ndarray,
    adjacency: np.ndarray,
    name: str = "",
    names: Optional[Sequence[str]] = None,
) -> None:
    """Raise :class:`FeatureExtractionError` on any semantic violation."""
    violations = semantic_violations(attributes, adjacency, names=names)
    if violations:
        shown = "; ".join(v.describe() for v in violations[:3])
        more = f" (+{len(violations) - 3} more)" if len(violations) > 3 else ""
        raise FeatureExtractionError(
            f"{name or 'ACFG'}: attribute matrix violates ACFG semantics: "
            f"{shown}{more}"
        )


def is_semantically_valid(
    attributes: np.ndarray,
    adjacency: np.ndarray,
    names: Optional[Sequence[str]] = None,
) -> bool:
    """``True`` when the matrix satisfies every ACFG invariant."""
    return not semantic_violations(attributes, adjacency, names=names)


def project_attributes(
    attributes: np.ndarray,
    adjacency: np.ndarray,
    names: Optional[Sequence[str]] = None,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Nearest semantically-valid attribute matrix (idempotent).

    Projection order matters for idempotence:

    1. round count channels to integers, clip at zero and (when given)
       into the per-element ``[lower, upper]`` raw-count box;
    2. pin ``offspring`` to the adjacency out-degree (it is structural,
       not free);
    3. raise ``total_instructions`` to cover the category-count sum and
       the one-instruction minimum;
    4. copy the result into ``vertex_instructions``.

    A second application is a no-op: step 1 fixes integers/negatives only
    once, steps 2–4 recompute the same derived values.  Custom registered
    channels (anything not in Table I) are passed through untouched.

    ``lower``/``upper`` are optional full-shape raw-count bound matrices
    (the adversarial attack maps its scaled-space epsilon ball through
    the scaler's inverse to keep projected integers *inside* the ball);
    they are rounded outward to the nearest enclosed integers and only
    constrain count channels.  Callers must pass a box that contains at
    least one integer per element — the attack's box always contains the
    original count.
    """
    names = list(names) if names is not None else attribute_names()
    projected = np.array(attributes, dtype=np.float64, copy=True)
    if projected.ndim != 2 or projected.shape[1] != len(names):
        raise FeatureExtractionError(
            f"attribute matrix shape {projected.shape} does not match "
            f"{len(names)} registered channels"
        )
    if not np.isfinite(projected).all():
        raise FeatureExtractionError(
            "cannot project a non-finite attribute matrix onto ACFG "
            "semantics"
        )
    count_columns = [
        index for index, name in enumerate(names) if name in _COUNT_CHANNELS
    ]
    projected[:, count_columns] = np.maximum(
        np.round(projected[:, count_columns]), 0.0
    )
    if lower is not None and upper is not None:
        # Integer window inside the raw box; _INTEGER_TOLERANCE absorbs
        # the float noise of a round-tripped exact integer bound.
        lower_int = np.ceil(
            np.asarray(lower)[:, count_columns] - _INTEGER_TOLERANCE
        )
        upper_int = np.floor(
            np.asarray(upper)[:, count_columns] + _INTEGER_TOLERANCE
        )
        projected[:, count_columns] = np.clip(
            projected[:, count_columns], lower_int, upper_int
        )

    offspring = _channel_index(names, "offspring")
    if offspring is not None:
        projected[:, offspring] = _out_degrees(adjacency)

    total = _channel_index(names, "total_instructions")
    category_columns = [
        index for index, name in enumerate(names) if name in CATEGORY_CHANNELS
    ]
    if total is not None:
        floor = np.ones(projected.shape[0])
        if category_columns:
            floor = np.maximum(
                floor, projected[:, category_columns].sum(axis=1)
            )
        projected[:, total] = np.maximum(projected[:, total], floor)
        vertex_count = _channel_index(names, "vertex_instructions")
        if vertex_count is not None:
            projected[:, vertex_count] = projected[:, total]
    return projected
