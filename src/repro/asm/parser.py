"""Parser for IDA Pro-style ``.asm`` listings.

The Microsoft Malware Classification Challenge ships one ``.asm`` file per
sample, produced by IDA Pro.  A representative line looks like::

    .text:00401000 55 8B EC                 push    ebp ; set up frame

i.e. ``<section>:<hex address> [hex bytes] <mnemonic> [operands] [; comment]``.
This parser also accepts the two simpler shapes used by our synthetic
corpus and by hand-written tests::

    00401000: push ebp
    0x401000  push ebp

Label-only lines (``loc_401010:``) attach a symbolic name to the next
instruction's address so jumps may refer to them by name.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.asm.instruction import Instruction
from repro.asm.program import Program
from repro.exceptions import AsmParseError

#: ``.text:00401000`` or ``00401000:`` or ``0x401000`` at line start.
_ADDRESS_RE = re.compile(
    r"^\s*(?:(?P<section>[.\w]+):)?(?P<addr>0x[0-9a-fA-F]+|[0-9a-fA-F]{4,16})\s*:?\s+"
)

#: A run of hex byte pairs right after the address, e.g. ``55 8B EC``.
_BYTES_RE = re.compile(r"^((?:[0-9a-fA-F]{2}\s+)+)")

#: A label-only line: ``loc_401010:`` possibly preceded by a section.
_LABEL_RE = re.compile(r"^\s*(?:[.\w]+:)?(?P<label>[A-Za-z_@?$][\w@?$]*):\s*(?:;.*)?$")

#: A mnemonic token.
_MNEMONIC_RE = re.compile(r"^(?P<mnemonic>[A-Za-z][\w.]*)\s*(?P<rest>.*)$")

#: A label on an addressed line: ``.text:00401000 sub_401000:``.
_ADDRESSED_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_@?$][\w@?$]*):\s*$")

#: A named data item: ``aGreeting db 'hello',0``.
_NAMED_DATA_RE = re.compile(
    r"^(?P<label>[A-Za-z_@?$][\w@?$]*)\s+(?P<decl>db|dw|dd|dq|dt|unicode)\b\s*(?P<rest>.*)$",
    re.IGNORECASE,
)

#: Symbolic jump targets that encode their address, e.g. ``loc_401010``.
_SYMBOLIC_ADDR_RE = re.compile(r"^(?:loc|sub|locret|off|unk|byte|dword)_([0-9a-fA-F]+)$")

#: Directive mnemonics that are not instructions and carry no address flow.
_SKIPPED_DIRECTIVES = frozenset({
    "proc", "endp", "segment", "ends", "assume", "public", "extrn",
    "include", "model", "org", "end",
})


def _parse_address_token(token: str) -> int:
    if token.lower().startswith("0x"):
        return int(token, 16)
    return int(token, 16)


def _split_operands(rest: str) -> List[str]:
    """Split an operand string on top-level commas.

    Commas inside brackets (memory operands such as ``[eax+ebx*4]`` never
    contain commas in x86, but some macro operands might) are preserved.
    """
    operands: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in rest:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            operand = "".join(current).strip()
            if operand:
                operands.append(operand)
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return operands


class AsmParser:
    """Parses assembly listing text into a :class:`Program`.

    Parameters
    ----------
    strict:
        When ``True``, unparseable non-empty lines raise
        :class:`AsmParseError`.  When ``False`` (the default, matching how
        MAGIC tolerates IDA's noisy output on packed samples) such lines
        are skipped and counted in :attr:`skipped_lines`.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.skipped_lines = 0
        self.labels: Dict[str, int] = {}

    def parse(self, text: str) -> Program:
        """Parse listing text into a :class:`Program`.

        The returned program has normalized instruction sizes: each
        instruction's ``size`` is the gap to the next address, so the
        fall-through address ``inst.addr + inst.size`` always lands on the
        textually-next instruction, as Algorithm 1 requires.
        """
        self.skipped_lines = 0
        self.labels = {}
        rows, pending_labels = self._parse_lines(text.splitlines())
        return self._build_program(rows, pending_labels)

    def parse_file(self, path: str) -> Program:
        """Parse an ``.asm`` file from disk (UTF-8 with latin-1 fallback)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except UnicodeDecodeError:
            with open(path, "r", encoding="latin-1") as handle:
                text = handle.read()
        return self.parse(text)

    # ------------------------------------------------------------------
    # internals

    def _parse_lines(
        self, lines: Iterable[str]
    ) -> Tuple[List[Tuple[int, str, List[str], int]], List[str]]:
        rows: List[Tuple[int, str, List[str], int]] = []
        pending_labels: List[str] = []
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.split(";", 1)[0].rstrip()
            if not line.strip():
                continue

            label_match = _LABEL_RE.match(line)
            if label_match:
                pending_labels.append(label_match.group("label"))
                continue

            parsed = self._parse_instruction_line(line, line_number)
            if parsed is None:
                continue
            address, mnemonic, operands, size = parsed
            for label in pending_labels:
                self.labels[label] = address
            pending_labels = []
            rows.append((address, mnemonic, operands, size))
        return rows, pending_labels

    def _parse_instruction_line(
        self, line: str, line_number: int
    ) -> Optional[Tuple[int, str, List[str], int]]:
        address_match = _ADDRESS_RE.match(line)
        if not address_match:
            return self._skip(line, line_number, "no address prefix")
        try:
            address = _parse_address_token(address_match.group("addr"))
        except ValueError:
            return self._skip(line, line_number, "bad address token")

        body = line[address_match.end():]
        size = 0
        bytes_match = _BYTES_RE.match(body)
        if bytes_match:
            hex_bytes = bytes_match.group(1).split()
            # Only treat it as encoded bytes when a mnemonic follows;
            # otherwise the "bytes" are data and the line is data-only.
            remainder = body[bytes_match.end():]
            if _MNEMONIC_RE.match(remainder.strip()):
                size = len(hex_bytes)
                body = remainder

        body = body.strip()

        # Label on its own addressed line: record and skip.
        addressed_label = _ADDRESSED_LABEL_RE.match(body)
        if addressed_label:
            self.labels[addressed_label.group("label")] = address
            return None

        # Named data item: the name is a label, the declaration is the
        # instruction (Table I counts data declarations).
        named_data = _NAMED_DATA_RE.match(body)
        if named_data:
            self.labels[named_data.group("label")] = address
            return (
                address,
                named_data.group("decl").lower(),
                _split_operands(named_data.group("rest")),
                size,
            )

        mnemonic_match = _MNEMONIC_RE.match(body)
        if not mnemonic_match:
            return self._skip(line, line_number, "no mnemonic")
        mnemonic = mnemonic_match.group("mnemonic").lower()
        if mnemonic in _SKIPPED_DIRECTIVES:
            return None
        rest = mnemonic_match.group("rest")
        # Trailing ``endp``/``proc`` markers: ``sub_401000 endp``.
        if rest.strip().lower() in _SKIPPED_DIRECTIVES:
            return None
        operands = _split_operands(rest)
        return address, mnemonic, operands, size

    def _skip(self, line: str, line_number: int, reason: str) -> None:
        if self.strict:
            raise AsmParseError(f"{reason}: {line.strip()!r}", line_number)
        self.skipped_lines += 1
        return None

    def _build_program(
        self,
        rows: List[Tuple[int, str, List[str], int]],
        trailing_labels: List[str],
    ) -> Program:
        # De-duplicate addresses keeping the first occurrence, mirroring
        # how IDA listings repeat addresses for multi-line data items.
        seen: Dict[int, Tuple[int, str, List[str], int]] = {}
        for row in rows:
            seen.setdefault(row[0], row)
        ordered = sorted(seen.values(), key=lambda row: row[0])

        program = Program()
        for index, (address, mnemonic, operands, size) in enumerate(ordered):
            if index + 1 < len(ordered):
                gap = ordered[index + 1][0] - address
                size = gap
            elif size <= 0:
                size = 1
            program.add(
                Instruction(
                    address=address,
                    mnemonic=mnemonic,
                    operands=operands,
                    size=size,
                )
            )
        for label in trailing_labels:
            # A label at end-of-file points one past the last instruction.
            last = program.first()
            if last is not None:
                self.labels.setdefault(label, max(program.addresses) + 1)
        return program

    def resolve_target(self, operand: str) -> Optional[int]:
        """Resolve a jump/call operand to a destination address.

        Handles symbolic ``loc_``/``sub_`` names, labels collected during
        parsing, and literal hex/decimal addresses.  Register-indirect and
        memory targets resolve to ``None`` (statically unknown), which the
        CFG builder treats as "no edge", the same policy the paper's
        implementation applies.
        """
        token = operand.strip()
        # Strip IDA operand decorations, possibly stacked ("dword ptr ...",
        # "offset loc_401000", "near ptr sub_401020").
        stripped = True
        while stripped:
            stripped = False
            for prefix in ("short", "near", "far", "ptr", "offset",
                           "dword", "word", "byte", "qword"):
                if token.lower().startswith(prefix + " "):
                    token = token[len(prefix) + 1:].strip()
                    stripped = True
        if token in self.labels:
            return self.labels[token]
        symbolic = _SYMBOLIC_ADDR_RE.match(token)
        if symbolic:
            return int(symbolic.group(1), 16)
        if token.lower().startswith("0x"):
            try:
                return int(token, 16)
            except ValueError:
                return None
        if re.fullmatch(r"[0-9a-fA-F]+h", token):
            return int(token[:-1], 16)
        if re.fullmatch(r"[0-9a-fA-F]{4,16}", token):
            return int(token, 16)
        return None
