"""Instruction model.

An :class:`Instruction` is one line of a disassembled program: an address,
a mnemonic, and operands.  The CFG construction algorithm of the paper
(Section IV-A) associates four tags with each instruction — ``start``,
``branchTo``, ``fallThrough`` and ``return`` — which are filled in by the
first (tagging) pass and consumed by the second (block-building) pass.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.asm.isa import (
    ControlFlowKind,
    InstructionCategory,
    categorize,
    control_flow_kind,
)

#: Matches immediate numeric operands: decimal, hex (0x1F or 1Fh), negative.
_NUMERIC_CONSTANT_RE = re.compile(
    r"(?<![\w.])"
    r"(?:0x[0-9a-fA-F]+|[0-9a-fA-F]+h|\d+)"
    r"(?![\w.])"
)


@dataclass
class Instruction:
    """A single assembly instruction plus the CFG-builder tags.

    Parameters
    ----------
    address:
        Virtual address of the instruction (unique within a program).
    mnemonic:
        Lower-cased operation mnemonic, e.g. ``"mov"`` or ``"jnz"``.
    operands:
        Raw operand strings, e.g. ``["eax", "[ebp+8]"]``.
    size:
        Encoded size in bytes; ``address + size`` is the fall-through
        address used by Algorithm 1.
    """

    address: int
    mnemonic: str
    operands: List[str] = field(default_factory=list)
    size: int = 1

    # Tags written by the first (visitor) pass -- Section IV-A.
    start: bool = False
    branch_to: Optional[int] = None
    fall_through: bool = False
    is_return: bool = False

    def __post_init__(self) -> None:
        self.mnemonic = self.mnemonic.lower()

    @property
    def category(self) -> InstructionCategory:
        """Table I attribute category of this instruction."""
        return categorize(self.mnemonic)

    @property
    def flow_kind(self) -> ControlFlowKind:
        """Control-flow behaviour used by the CFG builder."""
        return control_flow_kind(self.mnemonic)

    @property
    def next_address(self) -> int:
        """Address of the instruction that textually follows this one."""
        return self.address + self.size

    def count_numeric_constants(self) -> int:
        """Number of immediate numeric constants among the operands.

        Memory-operand base registers and the like do not count; only
        literal decimal/hex tokens do.  This feeds the "# Numeric
        Constants" attribute of Table I.
        """
        total = 0
        for operand in self.operands:
            total += len(_NUMERIC_CONSTANT_RE.findall(operand))
        return total

    def operand_text(self) -> str:
        """The operands re-joined the way they appeared in the listing."""
        return ", ".join(self.operands)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        text = f"{self.address:#010x}  {self.mnemonic}"
        if self.operands:
            text += " " + self.operand_text()
        return text
