"""x86-flavoured instruction set taxonomy.

MAGIC's block attributes (Table I of the paper) count instructions by
category: transfer, call, arithmetic, compare, mov, termination, and data
declaration.  The CFG builder additionally needs to know which mnemonics
change control flow (conditional jumps, unconditional jumps, calls,
returns, and terminating instructions).

This module is the single source of truth for that classification.  The
mnemonic tables cover the instructions produced by IDA Pro-style listings
of 32/64-bit x86 binaries, which is what both the Kaggle `.asm` corpus and
our synthetic corpus emit.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class InstructionCategory(enum.Enum):
    """Semantic category of an instruction, as counted in Table I."""

    TRANSFER = "transfer"
    CALL = "call"
    ARITHMETIC = "arithmetic"
    COMPARE = "compare"
    MOV = "mov"
    TERMINATION = "termination"
    DATA_DECLARATION = "data_declaration"
    OTHER = "other"


class ControlFlowKind(enum.Enum):
    """How an instruction affects control flow, as used by the CFG builder."""

    SEQUENTIAL = "sequential"
    CONDITIONAL_JUMP = "conditional_jump"
    UNCONDITIONAL_JUMP = "unconditional_jump"
    CALL = "call"
    RETURN = "return"
    TERMINATE = "terminate"


#: Conditional jump mnemonics: branch to a target *and* fall through.
CONDITIONAL_JUMPS: FrozenSet[str] = frozenset({
    "ja", "jae", "jb", "jbe", "jc", "jcxz", "jecxz", "jrcxz",
    "je", "jg", "jge", "jl", "jle", "jna", "jnae", "jnb", "jnbe",
    "jnc", "jne", "jng", "jnge", "jnl", "jnle", "jno", "jnp", "jns",
    "jnz", "jo", "jp", "jpe", "jpo", "js", "jz",
    "loop", "loope", "loopne", "loopnz", "loopz",
})

#: Unconditional jump mnemonics: branch to a target, never fall through.
UNCONDITIONAL_JUMPS: FrozenSet[str] = frozenset({"jmp", "ljmp"})

#: Call mnemonics: branch to a target *and* (conceptually) return to the
#: fall-through instruction afterwards.
CALLS: FrozenSet[str] = frozenset({"call", "lcall"})

#: Return mnemonics: end the current function; no fall-through edge.
RETURNS: FrozenSet[str] = frozenset({"ret", "retn", "retf", "iret", "iretd"})

#: Program/termination mnemonics (counted as "termination" in Table I).
TERMINATIONS: FrozenSet[str] = frozenset({
    "hlt", "ud2", "int3",
}) | RETURNS

#: Data movement mnemonics (counted as "mov" in Table I).
MOVS: FrozenSet[str] = frozenset({
    "mov", "movzx", "movsx", "movsxd", "movs", "movsb", "movsw", "movsd",
    "movq", "movaps", "movups", "movdqa", "movdqu", "cmova",
    "cmovae", "cmovb", "cmovbe", "cmove", "cmovg", "cmovge", "cmovl",
    "cmovle", "cmovne", "cmovno", "cmovnp", "cmovns", "cmovnz", "cmovo",
    "cmovp", "cmovs", "cmovz", "lea", "xchg", "bswap",
})

#: Stack / register transfer mnemonics (counted as "transfer" in Table I).
#: Jumps are also transfers of control and are counted here too, following
#: the convention of Yan et al.'s attribute extractor.
TRANSFERS: FrozenSet[str] = frozenset({
    "push", "pop", "pusha", "pushad", "popa", "popad", "pushf", "pushfd",
    "popf", "popfd", "enter", "leave",
}) | CONDITIONAL_JUMPS | UNCONDITIONAL_JUMPS

#: Arithmetic and logic mnemonics (counted as "arithmetic" in Table I).
ARITHMETICS: FrozenSet[str] = frozenset({
    "add", "adc", "sub", "sbb", "mul", "imul", "div", "idiv",
    "inc", "dec", "neg", "not", "and", "or", "xor",
    "shl", "shr", "sal", "sar", "rol", "ror", "rcl", "rcr",
    "shld", "shrd", "cdq", "cwd", "cbw", "cwde", "cdqe",
    "addss", "subss", "mulss", "divss", "addsd", "subsd", "mulsd", "divsd",
    "paddb", "paddw", "paddd", "psubb", "psubw", "psubd",
    "fadd", "fsub", "fmul", "fdiv", "fiadd", "fisub", "fimul", "fidiv",
})

#: Comparison mnemonics (counted as "compare" in Table I).
COMPARES: FrozenSet[str] = frozenset({
    "cmp", "test", "cmps", "cmpsb", "cmpsw", "cmpsd", "scas", "scasb",
    "scasw", "scasd", "comiss", "comisd", "ucomiss", "ucomisd",
    "fcom", "fcomp", "fcompp", "ficom", "ficomp", "ptest",
})

#: Assembler data-declaration directives (counted as "data declaration").
DATA_DECLARATIONS: FrozenSet[str] = frozenset({
    "db", "dw", "dd", "dq", "dt", "dup", "byte", "word", "dword", "qword",
    "align", "unicode",
})


def categorize(mnemonic: str) -> InstructionCategory:
    """Map a mnemonic to its Table I attribute category.

    Unknown mnemonics fall into :attr:`InstructionCategory.OTHER`; they
    still contribute to the "total instructions" attribute.
    """
    m = mnemonic.lower()
    if m in CALLS:
        return InstructionCategory.CALL
    if m in TERMINATIONS:
        return InstructionCategory.TERMINATION
    if m in TRANSFERS:
        return InstructionCategory.TRANSFER
    if m in MOVS:
        return InstructionCategory.MOV
    if m in ARITHMETICS:
        return InstructionCategory.ARITHMETIC
    if m in COMPARES:
        return InstructionCategory.COMPARE
    if m in DATA_DECLARATIONS:
        return InstructionCategory.DATA_DECLARATION
    return InstructionCategory.OTHER


def control_flow_kind(mnemonic: str) -> ControlFlowKind:
    """Map a mnemonic to its control-flow behaviour for the CFG builder."""
    m = mnemonic.lower()
    if m in CONDITIONAL_JUMPS:
        return ControlFlowKind.CONDITIONAL_JUMP
    if m in UNCONDITIONAL_JUMPS:
        return ControlFlowKind.UNCONDITIONAL_JUMP
    if m in CALLS:
        return ControlFlowKind.CALL
    if m in RETURNS:
        return ControlFlowKind.RETURN
    if m in TERMINATIONS:
        return ControlFlowKind.TERMINATE
    return ControlFlowKind.SEQUENTIAL
