"""Program: a one-to-one mapping from sorted addresses to instructions.

Section IV-A of the paper: "we first pre-process the input files so that
the resulting program ``P`` is a one-to-one mapping from sorted addresses
to assembly instructions, e.g. ``P : Z+ -> I``".  This module provides
that structure plus the iteration helpers (``getNextInst``) that
Algorithm 2 assumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.asm.instruction import Instruction
from repro.exceptions import AsmParseError


class Program:
    """An ordered, address-indexed sequence of instructions.

    The class maintains the invariant that instruction addresses are
    unique and iteration is in ascending address order, which is what the
    two-pass CFG construction relies on.
    """

    def __init__(self, instructions: Iterable[Instruction] = ()) -> None:
        self._by_address: Dict[int, Instruction] = {}
        self._sorted_addresses: List[int] = []
        self._sorted_dirty = False
        for instruction in instructions:
            self.add(instruction)

    def add(self, instruction: Instruction) -> None:
        """Insert an instruction; addresses must be unique."""
        if instruction.address in self._by_address:
            raise AsmParseError(
                f"duplicate instruction address {instruction.address:#x}"
            )
        self._by_address[instruction.address] = instruction
        self._sorted_addresses.append(instruction.address)
        self._sorted_dirty = True

    def _ensure_sorted(self) -> None:
        if self._sorted_dirty:
            self._sorted_addresses.sort()
            self._sorted_dirty = False

    def __len__(self) -> int:
        return len(self._by_address)

    def __contains__(self, address: int) -> bool:
        return address in self._by_address

    def __getitem__(self, address: int) -> Instruction:
        try:
            return self._by_address[address]
        except KeyError:
            raise KeyError(f"no instruction at address {address:#x}") from None

    def get(self, address: int) -> Optional[Instruction]:
        """The instruction at ``address``, or ``None``."""
        return self._by_address.get(address)

    def __iter__(self) -> Iterator[Instruction]:
        self._ensure_sorted()
        for address in self._sorted_addresses:
            yield self._by_address[address]

    @property
    def addresses(self) -> List[int]:
        """All instruction addresses in ascending order."""
        self._ensure_sorted()
        return list(self._sorted_addresses)

    def first(self) -> Optional[Instruction]:
        """The instruction with the lowest address, or ``None`` if empty."""
        self._ensure_sorted()
        if not self._sorted_addresses:
            return None
        return self._by_address[self._sorted_addresses[0]]

    def next_instruction(self, instruction: Instruction) -> Optional[Instruction]:
        """``getNextInst(P, inst)`` from Algorithm 2.

        Returns the instruction that textually follows ``instruction``
        (the one at the next higher address), or ``None`` when
        ``instruction`` is the last one.
        """
        self._ensure_sorted()
        # Fast path: contiguous encodings mean next_address is usually it.
        fast = self._by_address.get(instruction.next_address)
        if fast is not None:
            return fast
        # Slow path: binary search for the next higher address (listings
        # may contain gaps between sections).
        import bisect

        index = bisect.bisect_right(self._sorted_addresses, instruction.address)
        if index >= len(self._sorted_addresses):
            return None
        return self._by_address[self._sorted_addresses[index]]

    def nearest_at_or_after(self, address: int) -> Optional[Instruction]:
        """The instruction at ``address``, or the first one after it.

        Jump targets occasionally land between instructions in noisy
        disassembly; resolving them to the next real instruction mirrors
        what IDA-style tools do.
        """
        exact = self._by_address.get(address)
        if exact is not None:
            return exact
        import bisect

        self._ensure_sorted()
        index = bisect.bisect_left(self._sorted_addresses, address)
        if index >= len(self._sorted_addresses):
            return None
        return self._by_address[self._sorted_addresses[index]]
