"""Assembly substrate: instruction model, ISA taxonomy, parser, tagger.

This package implements everything MAGIC needs *below* the control flow
graph: a model of disassembled programs (:class:`Program`), an
IDA-listing parser (:class:`AsmParser`), the Table I instruction
taxonomy (:mod:`repro.asm.isa`), and the first pass of CFG construction
(:class:`InstructionTagger`, Algorithm 1 of the paper).
"""

from repro.asm.instruction import Instruction
from repro.asm.isa import (
    ControlFlowKind,
    InstructionCategory,
    categorize,
    control_flow_kind,
)
from repro.asm.parser import AsmParser
from repro.asm.program import Program
from repro.asm.visitor import InstructionTagger

__all__ = [
    "AsmParser",
    "ControlFlowKind",
    "Instruction",
    "InstructionCategory",
    "InstructionTagger",
    "Program",
    "categorize",
    "control_flow_kind",
]
