"""First pass of CFG construction: visitor-pattern instruction tagging.

Section IV-A: "To adapt to (potentially) hundreds of types of
instructions, the first pass applies the visitor pattern to implement
if-else free instruction tagging."  Each control-flow class gets its own
``visit_*`` method; Algorithm 1 of the paper is :meth:`visit_conditional_jump`.

The tags written here (``start``, ``branch_to``, ``fall_through``,
``is_return``) are consumed by :class:`repro.cfg.builder.CfgBuilder`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.asm.instruction import Instruction
from repro.asm.isa import ControlFlowKind
from repro.asm.program import Program


class InstructionTagger:
    """Tags every instruction in a program for block construction.

    Parameters
    ----------
    resolve_target:
        Callable mapping a branch operand string to a destination address
        (or ``None`` when statically unknown).  Typically
        :meth:`repro.asm.parser.AsmParser.resolve_target`.
    follow_calls:
        When ``True``, ``call`` instructions contribute a branch edge to
        the callee (intra-procedural *and* inter-procedural CFG, which is
        what MAGIC builds over whole ``.asm`` files).  When ``False``,
        calls are treated as sequential instructions.
    """

    def __init__(
        self,
        resolve_target: Callable[[str], Optional[int]],
        follow_calls: bool = True,
    ) -> None:
        self._resolve_target = resolve_target
        self.follow_calls = follow_calls
        self._dispatch: Dict[ControlFlowKind, Callable[[Program, Instruction], None]] = {
            ControlFlowKind.SEQUENTIAL: self.visit_sequential,
            ControlFlowKind.CONDITIONAL_JUMP: self.visit_conditional_jump,
            ControlFlowKind.UNCONDITIONAL_JUMP: self.visit_unconditional_jump,
            ControlFlowKind.CALL: self.visit_call,
            ControlFlowKind.RETURN: self.visit_return,
            ControlFlowKind.TERMINATE: self.visit_terminate,
        }

    def tag(self, program: Program) -> Program:
        """Run the tagging pass over ``program`` in place and return it."""
        first = program.first()
        if first is not None:
            first.start = True
        for instruction in program:
            self._dispatch[instruction.flow_kind](program, instruction)
        return program

    # ------------------------------------------------------------------
    # visit methods, one per control-flow class (if-else free dispatch)

    def visit_sequential(self, program: Program, inst: Instruction) -> None:
        """Ordinary instructions simply fall through."""
        inst.fall_through = True

    def visit_conditional_jump(self, program: Program, inst: Instruction) -> None:
        """Algorithm 1 of the paper: ``visitConditionalJump(cj)``.

        A conditional jump branches to its target (lines 2-3) *and* falls
        through to the next instruction (lines 4-5).
        """
        dst_addr = self._find_dst_addr(inst)
        if dst_addr is not None:
            inst.branch_to = dst_addr
            self._mark_start(program, dst_addr)
        inst.fall_through = True
        self._mark_start(program, inst.next_address)

    def visit_unconditional_jump(self, program: Program, inst: Instruction) -> None:
        """``jmp`` branches to its target and never falls through."""
        dst_addr = self._find_dst_addr(inst)
        if dst_addr is not None:
            inst.branch_to = dst_addr
            self._mark_start(program, dst_addr)
        inst.fall_through = False
        # The instruction after a jmp starts a new block (it can only be
        # reached via some other branch).
        self._mark_start(program, inst.next_address)

    def visit_call(self, program: Program, inst: Instruction) -> None:
        """``call`` transfers to the callee and then resumes after itself."""
        if self.follow_calls:
            dst_addr = self._find_dst_addr(inst)
            if dst_addr is not None:
                inst.branch_to = dst_addr
                self._mark_start(program, dst_addr)
        inst.fall_through = True
        self._mark_start(program, inst.next_address)

    def visit_return(self, program: Program, inst: Instruction) -> None:
        """``ret`` ends the block with no static successor."""
        inst.is_return = True
        inst.fall_through = False
        self._mark_start(program, inst.next_address)

    def visit_terminate(self, program: Program, inst: Instruction) -> None:
        """``hlt``/``int3``-style terminators end the block."""
        inst.fall_through = False
        self._mark_start(program, inst.next_address)

    # ------------------------------------------------------------------

    def _find_dst_addr(self, inst: Instruction) -> Optional[int]:
        """``findDstAddr(inst)`` helper from Algorithm 1."""
        if not inst.operands:
            return None
        return self._resolve_target(inst.operands[0])

    @staticmethod
    def _mark_start(program: Program, address: int) -> None:
        target = program.get(address)
        if target is not None:
            target.start = True
