"""Micro-batching request queue: coalesce concurrent requests.

The batched forward path (PR 1) makes a 32-graph batch barely more
expensive than a single graph — but an online service receives requests
one at a time.  The :class:`MicroBatcher` bridges the two: concurrent
``submit`` calls park on a queue, a single worker thread drains it into
batches of up to ``max_batch_size`` (waiting at most ``max_wait_ms``
after the first request arrives for stragglers to join), and each batch
runs through :meth:`InferenceEngine.classify_texts` as **one**
``GraphBatch`` forward.

Latency/throughput knobs:

* ``max_batch_size`` caps how many requests share a forward pass;
* ``max_wait_ms`` caps how long the *first* request of a batch waits
  for company — ``0`` degenerates to one-request-at-a-time.

The wait window also closes **early** once every outstanding request is
already aboard (queued requests == submitted-but-unanswered requests):
when offered concurrency is below ``max_batch_size``, nobody else can
join the batch until someone gets an answer, so running out the window
would be pure latency tax.  Coalescing under load still happens the
same way — requests pile up behind the in-flight forward and leave as
one batch.

The worker serializes model access, so the engine never sees two
concurrent forwards; HTTP handler threads only block on their own
request's event.  Batch sizes are recorded into the shared
:class:`~repro.serve.metrics.ServeMetrics` histogram, which is how the
end-to-end tests (and operators) observe that coalescing actually
happened.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional

from repro.exceptions import ServeError
from repro.features.pipeline import ExtractionFailure, FailureKind
from repro.serve.engine import ClassificationResult, InferenceEngine

#: Default coalescing knobs: favour latency (a few ms) over batch size.
DEFAULT_MAX_BATCH_SIZE = 32
DEFAULT_MAX_WAIT_MS = 5.0


class _PendingRequest:
    __slots__ = ("name", "text", "event", "result")

    def __init__(self, name: str, text: str) -> None:
        self.name = name
        self.text = text
        self.event = threading.Event()
        self.result: Optional[ClassificationResult] = None


class MicroBatcher:
    """Coalesces concurrent classification requests into shared forwards."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    ) -> None:
        if max_batch_size < 1:
            raise ServeError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_wait_ms < 0:
            raise ServeError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.engine = engine
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._queue: Deque[_PendingRequest] = deque()
        self._state = threading.Condition()
        self._running = False
        self._thread: Optional[threading.Thread] = None
        # Submitted but not yet answered (queued + in the current batch);
        # when the queue holds this many, the wait window closes early.
        self._waiters = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "MicroBatcher":
        with self._state:
            if self._running:
                raise ServeError("MicroBatcher is already running")
            self._running = True
        self._thread = threading.Thread(
            target=self._worker, name="micro-batcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work and drain what is already queued."""
        with self._state:
            if not self._running:
                return
            self._running = False
            self._state.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    @property
    def pending_count(self) -> int:
        """Requests submitted but not yet answered (queued + in-flight)."""
        with self._state:
            return self._waiters

    # -- request side --------------------------------------------------

    def submit(
        self, text: str, name: str = "", timeout: Optional[float] = 30.0
    ) -> ClassificationResult:
        """Classify ``text``; blocks until its micro-batch completes."""
        pending = _PendingRequest(name, text)
        with self._state:
            if not self._running:
                raise ServeError(
                    "MicroBatcher is not running; call start() first"
                )
            self._queue.append(pending)
            self._waiters += 1
            self._state.notify_all()
        if not pending.event.wait(timeout):
            raise ServeError(
                f"classification of {name or 'sample'!r} timed out after "
                f"{timeout}s in the micro-batch queue"
            )
        assert pending.result is not None
        return pending.result

    # -- worker side ---------------------------------------------------

    def _worker(self) -> None:
        while True:
            batch = self._collect()  # repro: allow[fault-contract] — Condition.wait on the condition we hold does not raise; waiters are covered by their own timeout
            if not batch:
                return  # stopped and drained
            try:
                results = self.engine.classify_texts(
                    [(request.name, request.text) for request in batch]
                )
            except Exception as exc:  # repro: allow[broad-except] — keep the batch loop alive
                # An engine bug must not strand the waiting requests (or
                # kill the worker): every request in the batch gets a
                # structured unexpected-failure result.
                results = [
                    ClassificationResult(
                        name=request.name,
                        failure=ExtractionFailure(
                            name=request.name,
                            kind=FailureKind.UNEXPECTED,
                            detail=f"{type(exc).__name__}: {exc}",
                            index=index,
                        ),
                    )
                    for index, request in enumerate(batch)
                ]
            self.engine.metrics.observe_batch(len(batch))
            for request, result in zip(batch, results):
                request.result = result
                request.event.set()
            with self._state:
                self._waiters -= len(batch)
                self._state.notify_all()

    def _collect(self) -> List[_PendingRequest]:
        """Block for the next batch: first arrival opens a wait window."""
        with self._state:
            while self._running and not self._queue:
                self._state.wait()
            if not self._queue:
                return []  # stop() with an empty queue
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            while (
                self._running
                and len(self._queue) < self.max_batch_size
            ):
                if len(self._queue) >= self._waiters:
                    # Everyone submitted-but-unanswered is already in the
                    # queue; nobody else can join until someone gets an
                    # answer, so the rest of the window is pure latency.
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._state.wait(remaining)
            batch = []
            while self._queue and len(batch) < self.max_batch_size:
                batch.append(self._queue.popleft())
            return batch
