"""Online inference engine: disassembly text -> family, fault-isolated.

The engine runs the full MAGIC prediction path — parse the listing,
build the CFG, extract the ACFG, apply the *training-time* attribute
scaling, and run one batched DGCNN forward over the whole request batch
(the PR-1 ``GraphBatch`` contract, via ``Magic.predict_proba``).

Two production concerns shape it:

* **Per-request fault isolation.**  Every sample goes through the same
  :func:`~repro.features.pipeline.execute_unit` boundary as batch
  extraction, so a malformed listing becomes a structured
  :class:`~repro.features.pipeline.ExtractionFailure` (``parse`` /
  ``oversize`` / ``unexpected``) on *its own* result — it never poisons
  the other requests coalesced into the same micro-batch.
* **A two-tier prediction cache.**  Malware corpora are heavy with
  exact duplicates (repacked submissions, re-scanned files); a
  sha256-of-text key serves repeats without re-running disassembly or
  the model.  Failures are cached too — they are deterministic
  properties of the input, the same philosophy as the extraction
  journal's replay-not-retry rule.  Behind the exact tier, an opt-in
  **similarity tier** (``similar_threshold``) indexes the
  topology-aware fingerprints of :mod:`repro.similarity`: a request
  that misses the exact cache but whose CFG fingerprint is
  near-duplicate to a previously classified sample is served that
  sample's prediction, explicitly flagged ``similar`` with the
  estimated Jaccard.  Only successful predictions enter the similarity
  index — a cached *failure* is an exact property of one input and is
  never generalized to near-duplicates.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.magic import Magic
from repro.exceptions import CompilationError, ServeError
from repro.features.acfg import ACFG
from repro.features.pipeline import (
    ExtractionFailure,
    FailureKind,
    WorkerContext,
    execute_unit,
    resolve_worker,
)
from repro.nn.tape import CompiledModel
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import ArchiveInfo, load, load_archive
from repro.similarity import (
    DEFAULT_WL_ITERATIONS,
    SimilarityIndex,
    SimilarityMatch,
    fingerprint_acfg,
)
from repro.testing.faults import FaultPlan
from repro.train.batching import BatchCollator

#: Default bound on the content-hash prediction cache.
DEFAULT_CACHE_SIZE = 1024

#: Forward chunk size — matches ``Trainer.predict_proba`` so the
#: compiled path stays bitwise-comparable with ``Magic.predict_proba``.
_FORWARD_CHUNK = 64

#: Dtypes the serving path accepts for ``infer_dtype``.
_INFER_DTYPES = ("float64", "float32")


@dataclasses.dataclass
class ClassificationResult:
    """Outcome of one classification request.

    Exactly one of (``family``, ``failure``) is set: a request either
    produces a prediction or a structured extraction failure.
    """

    name: str
    family: Optional[str] = None
    label: Optional[int] = None
    probabilities: Optional[np.ndarray] = None
    #: Served from the prediction cache instead of a fresh forward.
    cached: bool = False
    #: Served a *near-duplicate*'s prediction (similarity tier); the
    #: flag sticks to exact repeats of the same variant, so a response
    #: assembled from a similar match is never presented as exact.
    similar: bool = False
    #: Estimated Jaccard of the fingerprint match (set when ``similar``).
    similarity: Optional[float] = None
    failure: Optional[ExtractionFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def confidence(self) -> float:
        if self.probabilities is None:
            return 0.0
        return float(self.probabilities.max())

    @property
    def margin(self) -> float:
        """Top-1 minus top-2 probability: the score margin of the call.

        A small margin means the prediction sits near a decision
        boundary — exactly the samples the adversarial attacks
        (:mod:`repro.adv`) flip first, so monitoring margins is the
        cheap online proxy for attack surface.  ``0.0`` when there is no
        prediction or fewer than two classes.
        """
        if self.probabilities is None or self.probabilities.size < 2:
            return 0.0
        top2 = np.sort(self.probabilities)[-2:]
        return float(top2[1] - top2[0])

    def describe(self) -> str:
        if self.failure is not None:
            return (f"{self.name}: FAILED [{self.failure.kind.value}] "
                    f"{self.failure.detail}")
        if self.similar and self.similarity is not None:
            suffix = f" (similar {self.similarity:.3f})"
        elif self.cached:
            suffix = " (cached)"
        else:
            suffix = ""
        return (f"{self.name}: {self.family} "
                f"(confidence {self.confidence:.3f}){suffix}")


#: Cache entry: ("ok", family, label, probabilities) or
#: ("similar", family, label, probabilities, similarity) or
#: ("fail", kind_value, detail).
_CacheEntry = Tuple


class InferenceEngine:
    """Classifies disassembly listings with a loaded :class:`Magic` system.

    Parameters
    ----------
    magic:
        A fitted system (trained in-process or loaded from an archive).
    model_info:
        Archive identity for ``/healthz`` and logs; optional for
        in-process models.
    metrics:
        Shared :class:`ServeMetrics` sink; a private one is created when
        omitted.
    cache_size:
        Bound on the content-hash prediction cache (``0`` disables all
        result caching, the similarity tier included).
    similar_threshold:
        Estimated-Jaccard threshold for the similarity cache tier;
        ``None`` (the default) keeps the tier off.  When set, a request
        missing the exact cache is fingerprinted and may be served a
        near-duplicate's prediction, flagged ``similar``.
    fingerprint_iterations:
        WL relabeling rounds for the similarity fingerprints (more
        rounds = stricter topology matching).
    max_vertices:
        Per-request graph-size guard, same semantics as the extraction
        pipeline's (oversize requests fail with ``[oversize]``).
    fault_plan:
        Deterministic fault injection for tests; indices refer to
        positions within one ``classify_texts`` batch.
    compiled:
        Route GraphBatch-capable models through the :mod:`repro.nn.tape`
        replay engine (capture once per collated batch shape, replay on
        repeats).  Float64 replay is bit-exact with the eager path; a
        model the tape cannot record silently falls back to eager.
    infer_dtype:
        ``"float64"`` (default, bit-exact) or ``"float32"`` (compiled
        replay only; probabilities are cast back to float64 at the
        serving boundary).
    collator:
        A shared memoizing :class:`BatchCollator`; a private one is
        created when omitted.  Combined with the content-keyed
        scaled-ACFG cache, repeat collations of identical graph sets
        reuse their merged block-diagonal operators.
    """

    def __init__(
        self,
        magic: Magic,
        *,
        model_info: Optional[ArchiveInfo] = None,
        metrics: Optional[ServeMetrics] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        similar_threshold: Optional[float] = None,
        fingerprint_iterations: int = DEFAULT_WL_ITERATIONS,
        max_vertices: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        compiled: bool = True,
        infer_dtype: str = "float64",
        collator: Optional[BatchCollator] = None,
    ) -> None:
        if not magic.scaler.is_fitted:
            raise ServeError(
                "cannot serve an unfitted model: train it or load a "
                "published archive first"
            )
        if cache_size < 0:
            raise ServeError(f"cache_size must be >= 0, got {cache_size}")
        if fingerprint_iterations < 0:
            raise ServeError(
                "fingerprint_iterations must be >= 0, got "
                f"{fingerprint_iterations}"
            )
        if infer_dtype not in _INFER_DTYPES:
            raise ServeError(
                f"infer_dtype must be one of {_INFER_DTYPES}, got {infer_dtype!r}"
            )
        if infer_dtype != "float64" and not compiled:
            raise ServeError(
                "float32 inference is implemented by the compiled tape only; "
                "drop --no-compiled or use float64"
            )
        self.magic = magic
        self.model_info = model_info
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.cache_size = cache_size
        self.max_vertices = max_vertices
        self.fault_plan = fault_plan
        self.infer_dtype = infer_dtype
        self._spec = resolve_worker("text")
        self._cache: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._cache_lock = threading.Lock()
        # Second cache tier: near-duplicate fingerprint lookup.  Bounded
        # by cache_size like the exact tier, and off entirely when
        # result caching is disabled (cache_size=0): an engine asked not
        # to cache must not serve *any* remembered prediction.
        self._fingerprint_iterations = fingerprint_iterations
        self._similarity: Optional[SimilarityIndex] = None
        if similar_threshold is not None and cache_size > 0:
            self._similarity = SimilarityIndex(
                threshold=similar_threshold,
                iterations=fingerprint_iterations,
                max_entries=cache_size,
            )
        # GraphBatch-capable models get the shared collate memo and
        # (opt-out) the tape cache; raw-ACFG models keep the eager
        # Magic.predict_proba path untouched.
        self._collator: Optional[BatchCollator] = None
        self._compiled: Optional[CompiledModel] = None
        if getattr(magic.model, "accepts_graph_batch", False):
            self._collator = collator if collator is not None else BatchCollator(
                normalize_propagation=getattr(
                    magic.model, "normalize_propagation", True
                )
            )
            if compiled:
                self._compiled = CompiledModel(magic.model, dtype=infer_dtype)
        # Content-keyed cache of *scaled* ACFGs: scaling is per-sample
        # deterministic, so repeats present the same objects to the
        # collator and its identity-keyed memo hits.  Kept independent
        # of the prediction cache so cache_size=0 (no result caching)
        # still reuses merged operators.
        self._scaled: "OrderedDict[str, ACFG]" = OrderedDict()
        self._scaled_bound = DEFAULT_CACHE_SIZE

    # -- constructors over the registry -------------------------------

    @classmethod
    def from_registry(
        cls,
        root: str,
        name: str,
        version: Optional[str] = None,
        **kwargs,
    ) -> "InferenceEngine":
        """Engine over a registry archive (``version=None`` = latest)."""
        loaded = load(root, name, version)
        return cls(loaded.magic, model_info=loaded.info, **kwargs)

    @classmethod
    def from_archive(cls, path: str, **kwargs) -> "InferenceEngine":
        """Engine over one archive directory (legacy dirs load with a
        warning)."""
        loaded = load_archive(path)
        return cls(loaded.magic, model_info=loaded.info, **kwargs)

    # -- classification ------------------------------------------------

    @property
    def family_names(self) -> List[str]:
        return self.magic.family_names

    def classify_text(self, text: str, name: str = "") -> ClassificationResult:
        """Classify one listing (a batch of one)."""
        return self.classify_texts([(name, text)])[0]

    def classify_texts(
        self, samples: Sequence[Tuple[str, str]]
    ) -> List[ClassificationResult]:
        """Classify ``(name, asm_text)`` samples in one batched forward.

        Results align with the input order.  Extraction runs per sample
        behind the shared fault-isolation boundary; all surviving ACFGs
        then go through a single scaled ``GraphBatch`` forward pass.
        """
        results: List[Optional[ClassificationResult]] = [None] * len(samples)
        pending: List[Tuple[int, str, ACFG]] = []  # (index, cache key, acfg)
        in_flight: set = set()  # keys with an extraction pending this batch
        followers: Dict[str, List[Tuple[int, str]]] = {}
        signatures: Dict[str, np.ndarray] = {}  # key -> minhash signature

        for index, (name, text) in enumerate(samples):
            key = hashlib.sha256(text.encode("utf-8")).hexdigest()
            entry = self._cache_get(key)
            if entry is not None:
                self.metrics.observe_cache_tier("exact")
                results[index] = self._from_cache(name, index, entry)
                self._count(results[index])
                continue
            if key in in_flight:
                # Exact duplicate of an earlier sample in this batch:
                # serve it from that sample's forthcoming prediction
                # instead of extracting and forwarding it again.
                self.metrics.observe_cache_tier("exact")
                followers.setdefault(key, []).append((index, name))
                continue
            started = time.perf_counter()
            outcome = execute_unit(
                self._spec.fn,
                (name, text, None),
                index,
                WorkerContext(
                    max_vertices=self.max_vertices,
                    fault_plan=self.fault_plan,
                ),
            )
            self.metrics.observe_stage(
                "extract", time.perf_counter() - started
            )
            status, *payload = outcome
            if status == "ok" and not self._spec.validate(payload[0]):
                status, payload = "fail", [
                    FailureKind.UNEXPECTED.value,
                    "worker emitted corrupt output "
                    f"({type(payload[0]).__name__})",
                ]
            if status == "ok":
                match, signature = self._similar_lookup(payload[0])
                if match is not None:
                    # Similarity-tier hit: serve the near-duplicate's
                    # prediction, flagged.  The flagged entry also goes
                    # into the exact cache so repeats of this exact
                    # variant keep the flag.
                    _, family, label, probabilities = match.payload
                    entry = (
                        "similar", family, label, probabilities,
                        match.similarity,
                    )
                    self._cache_put(key, entry)
                    self.metrics.observe_cache_tier(
                        "similar", match.similarity
                    )
                    results[index] = self._from_cache(name, index, entry)
                    self._count(results[index])
                    continue
                self.metrics.observe_cache_tier("miss")
                if signature is not None:
                    signatures[key] = signature
                in_flight.add(key)
                pending.append((index, key, payload[0]))
            else:
                self.metrics.observe_cache_tier("miss")
                entry = ("fail", payload[0], payload[1])
                self._cache_put(key, entry)
                results[index] = self._from_cache(
                    name, index, entry, cached=False
                )
                self._count(results[index])

        if pending:
            started = time.perf_counter()
            probabilities = self._predict_proba(
                [(key, acfg) for _, key, acfg in pending]
            )
            self.metrics.observe_stage(
                "forward", time.perf_counter() - started
            )
            for (index, key, _), row in zip(pending, probabilities):
                label = int(row.argmax())
                entry = ("ok", self.family_names[label], label, row.copy())
                self._cache_put(key, entry)
                if self._similarity is not None and key in signatures:
                    # Only fresh successful predictions feed the
                    # similarity tier; failures never generalize.
                    self._similarity.insert(key, signatures[key], entry)
                name = samples[index][0]
                results[index] = ClassificationResult(
                    name=name,
                    family=entry[1],
                    label=label,
                    probabilities=row,
                )
                self._count(results[index])
                for dup_index, dup_name in followers.pop(key, ()):
                    results[dup_index] = self._from_cache(
                        dup_name, dup_index, entry
                    )
                    self._count(results[dup_index])

        return results  # type: ignore[return-value] — every slot is filled

    # -- internals -----------------------------------------------------

    def _similar_lookup(
        self, acfg: ACFG
    ) -> Tuple[Optional[SimilarityMatch], Optional[np.ndarray]]:
        """Similarity-tier probe for one freshly extracted ACFG.

        Returns ``(match, signature)``: the best near-duplicate clearing
        the threshold (or ``None``) and the minhash signature to index
        this sample under after its own forward completes.  Both are
        ``None`` when the tier is off or the graph is empty (an empty
        fingerprint cannot be signed — and matching on it would equate
        every degenerate listing).
        """
        if self._similarity is None or acfg.num_vertices == 0:
            return None, None
        started = time.perf_counter()
        fingerprint = fingerprint_acfg(
            acfg, iterations=self._fingerprint_iterations
        )
        signature = self._similarity.signature(fingerprint)
        match = self._similarity.query(signature)
        self.metrics.observe_stage(
            "fingerprint", time.perf_counter() - started
        )
        return match, signature

    def _predict_proba(
        self, keyed_acfgs: Sequence[Tuple[str, ACFG]]
    ) -> np.ndarray:
        """Per-family probabilities for ``(content_key, acfg)`` pairs.

        GraphBatch models run through the shared collator (and, when
        enabled, the compiled tape) in the same 64-graph chunks as
        ``Magic.predict_proba``, so the float64 output is bitwise
        identical to the plain path.  Anything else defers to
        ``Magic.predict_proba`` unchanged.
        """
        if self._collator is None:
            return self.magic.predict_proba([acfg for _, acfg in keyed_acfgs])
        scaled = self._scaled_acfgs(keyed_acfgs)
        model = self.magic.model
        model.train(False)
        chunks = []
        for start in range(0, len(scaled), _FORWARD_CHUNK):
            batch = self._collator(scaled[start : start + _FORWARD_CHUNK])
            log_probs: Optional[np.ndarray] = None
            if self._compiled is not None:
                try:
                    log_probs = self._compiled.infer(batch)
                except CompilationError:
                    self._compiled = None  # permanent eager fallback
            if log_probs is None:
                log_probs = model(batch).data
            if log_probs.dtype != np.float64:
                # float32 stays inside the tape; probabilities leave the
                # serving boundary as float64 like every other path.
                log_probs = log_probs.astype(np.float64)
            chunks.append(np.exp(log_probs))
        return np.concatenate(chunks, axis=0)

    def _scaled_acfgs(
        self, keyed_acfgs: Sequence[Tuple[str, ACFG]]
    ) -> List[ACFG]:
        """Scaled ACFGs, reused by content key across requests.

        ``AttributeScaler.transform`` is per-sample (fixed ``mean_`` /
        ``std_``), so caching individual scaled graphs is bitwise
        identical to scaling the whole batch — and keeps object ids
        stable so the collator memo can hit on repeat graph sets.
        """
        out: List[Optional[ACFG]] = []
        missing: List[Tuple[int, str, ACFG]] = []
        for key, acfg in keyed_acfgs:
            hit = self._scaled.get(key)
            if hit is not None:
                self._scaled.move_to_end(key)
            else:
                missing.append((len(out), key, acfg))
            out.append(hit)
        if missing:
            fresh = self.magic.scaler.transform([acfg for _, _, acfg in missing])
            for (position, key, _), scaled in zip(missing, fresh):
                out[position] = scaled
                self._scaled[key] = scaled
            while len(self._scaled) > self._scaled_bound:
                self._scaled.popitem(last=False)
        return out  # type: ignore[return-value] — every slot is filled

    def compile_stats(self) -> Optional[Dict]:
        """Tape-cache counters (``None`` when compiled execution is off)."""
        if self._compiled is None:
            return None
        return self._compiled.stats()

    def collator_stats(self) -> Optional[Dict[str, int]]:
        """Shared collate-memo counters (``None`` for raw-ACFG models)."""
        if self._collator is None:
            return None
        return {
            "hits": self._collator.hits,
            "misses": self._collator.misses,
            "entries": len(self._collator),
        }

    def _from_cache(
        self, name: str, index: int, entry: _CacheEntry, cached: bool = True
    ) -> ClassificationResult:
        if entry[0] == "ok":
            _, family, label, probabilities = entry
            return ClassificationResult(
                name=name,
                family=family,
                label=label,
                probabilities=probabilities,
                cached=cached,
            )
        if entry[0] == "similar":
            _, family, label, probabilities, similarity = entry
            return ClassificationResult(
                name=name,
                family=family,
                label=label,
                probabilities=probabilities,
                cached=cached,
                similar=True,
                similarity=similarity,
            )
        _, kind_value, detail = entry
        return ClassificationResult(
            name=name,
            cached=cached,
            failure=ExtractionFailure(
                name=name,
                kind=FailureKind(kind_value),
                detail=detail,
                index=index,
            ),
        )

    def _count(self, result: ClassificationResult) -> None:
        kind = result.failure.kind.value if result.failure else None
        self.metrics.observe_request(result.ok, kind)

    def _cache_get(self, key: str) -> Optional[_CacheEntry]:
        if self.cache_size == 0:
            return None
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
            return entry

    def _cache_put(self, key: str, entry: _CacheEntry) -> None:
        if self.cache_size == 0:
            return
        with self._cache_lock:
            self._cache[key] = entry
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def cache_info(self) -> Dict:
        with self._cache_lock:
            info: Dict = {
                "entries": len(self._cache), "bound": self.cache_size,
            }
        if self._similarity is not None:
            info["similarity"] = self._similarity.info()
        return info
