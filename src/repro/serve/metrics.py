"""Thread-safe serving metrics: counters, histograms, latency percentiles.

One :class:`ServeMetrics` instance is shared by the inference engine
(cache hits, per-stage latencies), the micro-batcher (batch-size
histogram), and the HTTP front end (request outcomes).  ``snapshot()``
returns a plain-JSON view — what ``/metrics`` serves — so operators can
watch coalescing behaviour (the batch-size histogram) and the per-stage
latency distribution without attaching a profiler.

Latency percentiles are computed over a bounded ring of recent
observations per stage: a long-running server keeps O(1) memory and the
percentiles track current behaviour rather than the all-time mix.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Any, Deque, Dict, Optional

import numpy as np

from repro.exceptions import ServeError

#: Default per-stage latency window (observations kept for percentiles).
DEFAULT_LATENCY_WINDOW = 2048

#: Percentiles reported per stage, in ``pNN`` key form.
PERCENTILES = (50, 90, 99)

#: Prediction-cache tiers: exact sha256 hit, similarity-tier hit, miss.
CACHE_TIERS = ("exact", "similar", "miss")

#: Bin width of the similarity histogram (estimated Jaccard of
#: similar-tier hits, floored to the bin's lower edge).
SIMILARITY_BIN = 0.05


class ServeMetrics:
    """Aggregates serving observations from engine, batcher, and HTTP."""

    def __init__(self, latency_window: int = DEFAULT_LATENCY_WINDOW) -> None:
        if latency_window < 1:
            raise ServeError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._lock = threading.Lock()
        self._latency_window = latency_window
        self._requests_ok = 0
        self._requests_failed = 0
        self._failures_by_kind: Counter[str] = Counter()
        self._cache_exact_hits = 0
        self._cache_similar_hits = 0
        self._cache_misses = 0
        self._similarity_bins: Counter[str] = Counter()
        self._batch_sizes: Counter[int] = Counter()
        self._stage_seconds: Dict[str, Deque[float]] = {}
        self._stage_counts: Counter[str] = Counter()

    # -- recording ----------------------------------------------------

    def observe_request(self, ok: bool, kind: Optional[str] = None) -> None:
        """One classification request finished (success or failure)."""
        with self._lock:
            if ok:
                self._requests_ok += 1
            else:
                self._requests_failed += 1
                if kind:
                    self._failures_by_kind[kind] += 1

    def observe_cache(self, hit: bool) -> None:
        """Back-compat shim: a plain hit is an exact-tier hit."""
        self.observe_cache_tier("exact" if hit else "miss")

    def observe_cache_tier(
        self, tier: str, similarity: Optional[float] = None
    ) -> None:
        """One prediction-cache lookup resolved at ``tier``.

        ``similarity`` (the estimated Jaccard of the match) is recorded
        into the similarity histogram for ``"similar"``-tier hits.
        """
        if tier not in CACHE_TIERS:
            raise ServeError(
                f"cache tier must be one of {CACHE_TIERS}, got {tier!r}"
            )
        with self._lock:
            if tier == "exact":
                self._cache_exact_hits += 1
            elif tier == "similar":
                self._cache_similar_hits += 1
                if similarity is not None:
                    edge = int(similarity / SIMILARITY_BIN) * SIMILARITY_BIN
                    self._similarity_bins[f"{edge:.2f}"] += 1
            else:
                self._cache_misses += 1

    def observe_batch(self, size: int) -> None:
        """One micro-batch went through the model."""
        with self._lock:
            self._batch_sizes[int(size)] += 1

    def observe_stage(self, stage: str, seconds: float) -> None:
        """One timed pass through a pipeline stage (extract/forward/...)."""
        with self._lock:
            ring = self._stage_seconds.get(stage)
            if ring is None:
                ring = deque(maxlen=self._latency_window)
                self._stage_seconds[stage] = ring
            ring.append(float(seconds))
            self._stage_counts[stage] += 1

    # -- reading ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of everything observed so far."""
        with self._lock:
            total = self._requests_ok + self._requests_failed
            cache_hits = self._cache_exact_hits + self._cache_similar_hits
            cache_total = cache_hits + self._cache_misses
            batches = sum(self._batch_sizes.values())
            batched_requests = sum(
                size * count for size, count in self._batch_sizes.items()
            )
            latency_ms = {
                stage: self._percentiles_ms(ring, self._stage_counts[stage])
                for stage, ring in sorted(self._stage_seconds.items())
            }
            return {
                "requests": {
                    "total": total,
                    "ok": self._requests_ok,
                    "failed": self._requests_failed,
                    "failures_by_kind": dict(sorted(
                        self._failures_by_kind.items()
                    )),
                },
                "cache": {
                    # "hits" (both tiers combined) and "hit_rate" predate
                    # the tiered cache and stay for dashboard compat.
                    "hits": cache_hits,
                    "exact_hits": self._cache_exact_hits,
                    "similar_hits": self._cache_similar_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (
                        cache_hits / cache_total if cache_total else 0.0
                    ),
                    "similarity_histogram": {
                        edge: count for edge, count in sorted(
                            self._similarity_bins.items()
                        )
                    },
                },
                "batches": {
                    "count": batches,
                    "mean_size": (
                        batched_requests / batches if batches else 0.0
                    ),
                    # JSON object keys are strings; sizes sort numerically
                    # before stringifying so the histogram reads in order.
                    "size_histogram": {
                        str(size): count for size, count in sorted(
                            self._batch_sizes.items()
                        )
                    },
                },
                "latency_ms": latency_ms,
            }

    @staticmethod
    def _percentiles_ms(ring: Deque[float], count: int) -> Dict[str, Any]:
        values = np.asarray(ring, dtype=np.float64) * 1000.0
        stats: Dict[str, Any] = {"count": count}
        for percentile in PERCENTILES:
            stats[f"p{percentile}"] = round(
                float(np.percentile(values, percentile)), 3
            )
        return stats
