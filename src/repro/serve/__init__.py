"""Online classification service: the deployment layer of MAGIC.

The paper frames per-sample testing time as the deployment-relevant
metric (Section V-E); this package turns the trained pieces into the
service that metric describes:

* :mod:`repro.serve.registry` — versioned, sha256-verified model
  archives carrying the family table and the fitted scaling parameters.
* :mod:`repro.serve.engine` — the text -> CFG -> ACFG -> batched-DGCNN
  prediction path with per-request fault isolation and a content-hash
  LRU prediction cache.
* :mod:`repro.serve.batching` — micro-batching queue coalescing
  concurrent requests into shared ``GraphBatch`` forwards.
* :mod:`repro.serve.fleet` — multi-process dispatcher fanning traffic
  over long-lived model-replica workers (least-loaded routing,
  per-worker batching, SIGKILL+respawn supervision).
* :mod:`repro.serve.rollout` — zero-downtime rollout: shadow a
  candidate registry version on mirrored traffic, judge the canary
  report, promote or roll back atomically.
* :mod:`repro.serve.http` — stdlib threaded HTTP front end
  (``/classify``, ``/healthz``, ``/metrics``, ``/rollout/*``) over
  either backend.
* :mod:`repro.serve.metrics` — thread-safe counters, latency
  percentiles, and the micro-batch size histogram behind ``/metrics``.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.engine import ClassificationResult, InferenceEngine
from repro.serve.fleet import FleetDispatcher
from repro.serve.http import (
    ClassificationServer,
    EngineBackend,
    build_fleet_server,
    build_server,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import (
    ArchiveInfo,
    LoadedModel,
    list_models,
    list_versions,
    load,
    load_archive,
    publish,
    read_manifest,
    resolve_version,
)
from repro.serve.rollout import CanaryReport, RolloutConfig, RolloutController

__all__ = [
    "ArchiveInfo",
    "CanaryReport",
    "ClassificationResult",
    "ClassificationServer",
    "EngineBackend",
    "FleetDispatcher",
    "InferenceEngine",
    "LoadedModel",
    "MicroBatcher",
    "RolloutConfig",
    "RolloutController",
    "ServeMetrics",
    "build_fleet_server",
    "build_server",
    "list_models",
    "list_versions",
    "load",
    "load_archive",
    "publish",
    "read_manifest",
    "resolve_version",
]
