"""Online classification service: the deployment layer of MAGIC.

The paper frames per-sample testing time as the deployment-relevant
metric (Section V-E); this package turns the trained pieces into the
service that metric describes:

* :mod:`repro.serve.registry` — versioned, sha256-verified model
  archives carrying the family table and the fitted scaling parameters.
* :mod:`repro.serve.engine` — the text -> CFG -> ACFG -> batched-DGCNN
  prediction path with per-request fault isolation and a content-hash
  LRU prediction cache.
* :mod:`repro.serve.batching` — micro-batching queue coalescing
  concurrent requests into shared ``GraphBatch`` forwards.
* :mod:`repro.serve.http` — stdlib threaded HTTP front end
  (``/classify``, ``/healthz``, ``/metrics``).
* :mod:`repro.serve.metrics` — thread-safe counters, latency
  percentiles, and the micro-batch size histogram behind ``/metrics``.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.engine import ClassificationResult, InferenceEngine
from repro.serve.http import ClassificationServer, build_server
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import (
    ArchiveInfo,
    LoadedModel,
    list_models,
    list_versions,
    load,
    load_archive,
    publish,
)

__all__ = [
    "ArchiveInfo",
    "ClassificationResult",
    "ClassificationServer",
    "InferenceEngine",
    "LoadedModel",
    "MicroBatcher",
    "ServeMetrics",
    "build_server",
    "list_models",
    "list_versions",
    "load",
    "load_archive",
    "publish",
]
