"""Versioned, integrity-checked model registry.

A deployment needs more than ``Magic.save``: the serving layer must know
*which* model it is running, prove the weights on disk are the ones that
were published, and reproduce the training-time preprocessing exactly.
The registry stores each published model as a **versioned archive**::

    registry_root/
      <name>/
        v1/
          parameters.npz    # weights + fitted scaler (Magic.save layout)
          magic.json        # model metadata (Magic.save layout)
          archive.json      # registry manifest: sha256 per file,
                            # model variant + hyper-parameters,
                            # family table, fitted scaling parameters

Publishing stages the archive in a sibling temp directory and renames it
into place (the same atomic-swap discipline as the dataset cache), so a
kill mid-publish never leaves a half-written version.  Loading verifies
every file's sha256 against the manifest and cross-checks the manifest's
family table and scaler parameters against the model metadata — a
tampered or torn archive raises :class:`~repro.exceptions.RegistryError`
naming the offending file instead of silently serving wrong predictions.

Plain ``Magic.save`` directories (no ``archive.json``) still load, with
a warning, mirroring the dataset cache's legacy ``format_version``
handling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import shutil
import tempfile
import warnings
from typing import Dict, List, Optional

from repro.core.magic import Magic
from repro.exceptions import RegistryError

_ARCHIVE_MANIFEST = "archive.json"
_MODEL_FILES = ("parameters.npz", "magic.json")

#: Archive manifest schema version; bump on incompatible layout changes.
ARCHIVE_FORMAT_VERSION = 1

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_AUTO_VERSION = re.compile(r"^v(\d+)$")


def _file_digest(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _check_name(kind: str, value: str) -> str:
    if not _NAME_PATTERN.match(value):
        raise RegistryError(
            f"invalid {kind} {value!r}: use letters, digits, '.', '_', '-'"
        )
    return value


@dataclasses.dataclass(frozen=True)
class ArchiveInfo:
    """Identity and provenance of one loaded archive."""

    name: str
    version: str
    path: str
    #: ``False`` for legacy (pre-registry) directories: no manifest, no
    #: integrity verification was possible.
    verified: bool = True

    def describe(self) -> str:
        suffix = "" if self.verified else " (legacy, unverified)"
        return f"{self.name}@{self.version}{suffix}"


@dataclasses.dataclass
class LoadedModel:
    """A verified :class:`Magic` instance plus its archive identity."""

    magic: Magic
    info: ArchiveInfo


def _scaler_payload(magic: Magic) -> Dict:
    """The fitted scaling parameters, as exact repr-round-trip floats.

    Serving must reproduce training-time preprocessing bit for bit; the
    manifest records the parameters both for human triage and as a
    cross-check against the ones inside ``parameters.npz``.
    """
    return {
        "use_log": magic.scaler.use_log,
        "mean": [float(v) for v in magic.scaler.mean_],
        "std": [float(v) for v in magic.scaler.std_],
    }


def publish(
    magic: Magic,
    root: str,
    name: str,
    version: Optional[str] = None,
) -> ArchiveInfo:
    """Publish a trained system as a new archive version.

    ``version`` defaults to the next free ``vN`` under ``name``.  The
    archive is staged and renamed into place atomically; publishing an
    existing version raises instead of overwriting — archives are
    immutable once published.
    """
    if not magic.scaler.is_fitted:
        raise RegistryError(
            f"cannot publish {name!r}: the model has not been fitted "
            "(no scaler parameters to archive)"
        )
    _check_name("model name", name)
    model_dir = os.path.join(os.path.abspath(root), name)
    if version is None:
        version = f"v{_next_version_number(model_dir)}"
    _check_name("version", version)
    target = os.path.join(model_dir, version)
    if os.path.exists(target):
        raise RegistryError(
            f"archive {name}@{version} already exists at {target}; "
            "archives are immutable — publish a new version instead"
        )
    os.makedirs(model_dir, exist_ok=True)
    staging = tempfile.mkdtemp(prefix=".tmp-publish-", dir=model_dir)
    try:
        magic.save(staging)
        manifest = {
            "format_version": ARCHIVE_FORMAT_VERSION,
            "name": name,
            "version": version,
            "model_config": {
                **dataclasses.asdict(magic.model_config),
                "graph_conv_sizes": list(magic.model_config.graph_conv_sizes),
                "amp_grid": list(magic.model_config.amp_grid),
                "conv1d_channels": list(magic.model_config.conv1d_channels),
            },
            "family_names": list(magic.family_names),
            "scaler": _scaler_payload(magic),
            "files": {
                filename: _file_digest(os.path.join(staging, filename))
                for filename in _MODEL_FILES
            },
        }
        with open(os.path.join(staging, _ARCHIVE_MANIFEST), "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        os.rename(staging, target)
    except BaseException:  # repro: allow[broad-except] — staging cleanup, re-raised
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return ArchiveInfo(name=name, version=version, path=target)


def _next_version_number(model_dir: str) -> int:
    highest = 0
    if os.path.isdir(model_dir):
        for entry in os.listdir(model_dir):
            match = _AUTO_VERSION.match(entry)
            if match:
                highest = max(highest, int(match.group(1)))
    return highest + 1


def _is_finalized(path: str) -> bool:
    """Whether a version directory completed its atomic publish.

    The manifest is written *inside* the staging directory before the
    rename, so its presence in the final location is the publish
    commit-mark.  A version directory without one is either a torn
    publish that never renamed (staging dirs are dot-hidden, but a crash
    between ``os.makedirs`` and ``os.rename`` can strand other debris)
    or a hand-copied legacy directory — neither may win latest-version
    resolution.
    """
    return os.path.exists(os.path.join(path, _ARCHIVE_MANIFEST))


def list_versions(root: str, name: str,
                  include_unfinalized: bool = False) -> List[str]:
    """Published versions of ``name``, oldest first (``vN`` numerically).

    Only finalized archives (manifest present) are listed unless
    ``include_unfinalized`` is set, so ``version=None`` (latest)
    resolution can never pick a partially-published directory.
    """
    model_dir = os.path.join(os.path.abspath(root), name)
    if not os.path.isdir(model_dir):
        return []
    versions = [
        entry for entry in os.listdir(model_dir)
        if not entry.startswith(".")
        and os.path.isdir(os.path.join(model_dir, entry))
        and (include_unfinalized
             or _is_finalized(os.path.join(model_dir, entry)))
    ]

    def sort_key(version: str):
        match = _AUTO_VERSION.match(version)
        # Auto-numbered versions sort numerically; explicit version
        # strings sort lexicographically after them.
        return (1, 0, version) if match is None else (0, int(match.group(1)), "")

    return sorted(versions, key=sort_key)


def list_models(root: str) -> List[str]:
    """Model names with at least one published version."""
    root = os.path.abspath(root)
    if not os.path.isdir(root):
        return []
    return sorted(
        entry for entry in os.listdir(root)
        if not entry.startswith(".") and list_versions(root, entry)
    )


def resolve_version(root: str, name: str,
                    version: Optional[str] = None) -> str:
    """Pin ``version=None`` to the latest *finalized* archive.

    The fleet dispatcher resolves the version once in the parent and
    ships the pinned string to every worker, so replicas spawned before
    and after a concurrent publish still load the same model.
    """
    if version is not None:
        return version
    versions = list_versions(root, name)
    if not versions:
        raise RegistryError(
            f"no published versions of {name!r} in registry {root}"
        )
    return versions[-1]


def read_manifest(root: str, name: str, version: str) -> Dict:
    """Read an archive's manifest without loading (or verifying) weights.

    Lets the dispatcher learn a candidate's family table and config for
    canary parity checks without paying a model load in the parent; full
    integrity verification still happens inside each worker at load.
    """
    manifest_path = os.path.join(
        os.path.abspath(root), name, version, _ARCHIVE_MANIFEST
    )
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise RegistryError(
            f"cannot read archive manifest {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise RegistryError(
            f"archive manifest {manifest_path} is not a JSON object"
        )
    return manifest


def load(
    root: str,
    name: str,
    version: Optional[str] = None,
) -> LoadedModel:
    """Load (and integrity-check) an archive; ``version=None`` = latest
    finalized archive (partially-published directories never resolve)."""
    version = resolve_version(root, name, version)
    path = os.path.join(os.path.abspath(root), name, version)
    if not os.path.isdir(path):
        raise RegistryError(f"archive {name}@{version} not found at {path}")
    loaded = load_archive(path)
    # A moved/renamed archive still carries its published identity.
    info = dataclasses.replace(loaded.info, name=name, version=version)
    return LoadedModel(magic=loaded.magic, info=info)


def load_archive(path: str) -> LoadedModel:
    """Load one archive directory, verifying it against its manifest.

    Directories produced by plain ``Magic.save`` carry no manifest; they
    load as legacy archives with a warning (and ``verified=False`` on
    the returned :class:`ArchiveInfo`), mirroring the dataset cache's
    handling of checksum-less ``format_version`` 1 manifests.
    """
    path = os.path.abspath(path)
    manifest_path = os.path.join(path, _ARCHIVE_MANIFEST)
    if not os.path.exists(manifest_path):
        warnings.warn(
            f"loading legacy model archive at {path} (no {_ARCHIVE_MANIFEST}); "
            "integrity cannot be verified — republish it through "
            "repro.serve.registry.publish",
            stacklevel=2,
        )
        magic = Magic.load(path)
        info = ArchiveInfo(
            name=os.path.basename(path), version="legacy", path=path,
            verified=False,
        )
        return LoadedModel(magic=magic, info=info)

    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise RegistryError(
            f"cannot read archive manifest {manifest_path}: {exc}"
        ) from exc

    version_field = manifest.get("format_version")
    if version_field != ARCHIVE_FORMAT_VERSION:
        raise RegistryError(
            f"unsupported archive format_version {version_field!r} in "
            f"{manifest_path} (this build reads version "
            f"{ARCHIVE_FORMAT_VERSION})"
        )

    for filename, expected in manifest["files"].items():
        file_path = os.path.join(path, filename)
        if not os.path.exists(file_path):
            raise RegistryError(
                f"archive at {path} is missing {filename} listed in its "
                "manifest"
            )
        actual = _file_digest(file_path)
        if actual != expected:
            raise RegistryError(
                f"archive file {file_path} fails integrity verification: "
                f"sha256 {actual} does not match the manifest's {expected} "
                "(the archive was modified or torn after publishing)"
            )

    magic = Magic.load(path)
    _cross_check(path, manifest, magic)
    info = ArchiveInfo(
        name=manifest.get("name", os.path.basename(path)),
        version=manifest.get("version", "?"),
        path=path,
    )
    return LoadedModel(magic=magic, info=info)


def _cross_check(path: str, manifest: Dict, magic: Magic) -> None:
    """Manifest vs model metadata: the two must describe one model.

    The per-file sha256 catches byte-level tampering; this catches a
    *consistent but wrong* archive — e.g. a ``magic.json`` swapped in
    from another model, which would silently relabel every prediction.
    """
    if list(manifest["family_names"]) != list(magic.family_names):
        raise RegistryError(
            f"archive at {path}: family table mismatch — manifest says "
            f"{manifest['family_names']}, model metadata says "
            f"{magic.family_names}; refusing to serve relabelled predictions"
        )
    scaler = manifest.get("scaler", {})
    recorded_mean = [float(v) for v in scaler.get("mean", [])]
    recorded_std = [float(v) for v in scaler.get("std", [])]
    actual_mean = [float(v) for v in magic.scaler.mean_]
    actual_std = [float(v) for v in magic.scaler.std_]
    if (recorded_mean != actual_mean or recorded_std != actual_std
            or bool(scaler.get("use_log")) != bool(magic.scaler.use_log)):
        raise RegistryError(
            f"archive at {path}: fitted scaling parameters in the manifest "
            "do not match the ones stored with the weights — serve-time "
            "preprocessing would diverge from training"
        )
