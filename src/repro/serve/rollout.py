"""Zero-downtime model rollout: shadow traffic, canary verdicts.

Registry versioning (PR 4) made models immutable and addressable; this
module makes a *new* version deployable without dropping traffic.  The
:class:`RolloutController` runs the canary protocol on top of the fleet
dispatcher (:mod:`repro.serve.fleet`):

1. **Shadowing.**  Candidate ``vN+1`` workers are spawned beside the
   serving ``vN`` set.  A deterministic, counter-based sampler mirrors a
   configurable fraction of successful live requests to the candidate.
   Shadow results are *never* returned to clients — the client got its
   ``vN`` answer before the mirror copy was even enqueued.
2. **Canary report.**  Every mirrored request contributes a label-parity
   observation (do the two versions name the same family?) and a latency
   pair (batch round-trip of the primary vs the shadow copy).
3. **Verdict.**  Once ``min_samples`` mirrored requests complete, the
   report is judged against ``min_parity`` and ``max_latency_ratio``.
   In ``auto`` mode the dispatcher then *atomically promotes* (candidate
   workers become the primary set, old primaries drain and retire) or
   *rolls back* (candidate workers retire, ``vN`` never stopped
   serving).  In manual mode the verdict parks in ``decided`` until an
   operator calls promote/rollback.

The controller owns no thread and no lock: every method is called by
the dispatcher with the fleet lock held, which is what makes a
promotion atomic with respect to routing — no request can be dispatched
while the primary set is being swapped.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.exceptions import RolloutError

#: Bound on the per-side latency samples kept for the canary report.
_LATENCY_WINDOW = 1024

#: Rollout states.
SHADOWING = "shadowing"
DECIDED = "decided"          # manual mode: verdict ready, operator acts
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"


@dataclasses.dataclass(frozen=True)
class RolloutConfig:
    """Canary thresholds and shadow sizing for one rollout."""

    #: Candidate registry version (must be published and finalized).
    version: str
    #: Candidate replicas to spawn (defaults to the primary fleet size).
    num_workers: Optional[int] = None
    #: Fraction of successful live requests mirrored to the candidate.
    shadow_fraction: float = 0.25
    #: Mirrored completions required before a verdict.
    min_samples: int = 50
    #: Minimum label parity (matching family names / completions).
    min_parity: float = 0.99
    #: Maximum shadow-p50 / primary-p50 latency ratio.
    max_latency_ratio: float = 5.0
    #: Promote/rollback automatically at the verdict; manual otherwise.
    auto: bool = True

    def validate(self) -> None:
        if not 0.0 < self.shadow_fraction <= 1.0:
            raise RolloutError(
                f"shadow_fraction must be in (0, 1], got {self.shadow_fraction}"
            )
        if self.min_samples < 1:
            raise RolloutError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if not 0.0 <= self.min_parity <= 1.0:
            raise RolloutError(
                f"min_parity must be in [0, 1], got {self.min_parity}"
            )
        if self.max_latency_ratio <= 0:
            raise RolloutError(
                f"max_latency_ratio must be > 0, got {self.max_latency_ratio}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise RolloutError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )


class ShadowSampler:
    """Deterministic mirror-rate sampler (no RNG, no wall clock).

    The n-th eligible request is mirrored iff ``floor(n * f)`` advanced
    past ``floor((n - 1) * f)`` — the classic error-diffusion rule, so a
    fraction of ``0.25`` mirrors exactly every 4th request and a replay
    of the same traffic makes the same choices.
    """

    def __init__(self, fraction: float) -> None:
        self.fraction = fraction
        self._seen = 0

    def select(self) -> bool:
        self._seen += 1
        threshold = self.fraction * self._seen
        previous = self.fraction * (self._seen - 1)
        return int(threshold) > int(previous)


def _p50(samples: Deque[float]) -> Optional[float]:
    if not samples:
        return None
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


class CanaryReport:
    """Accumulated parity + latency evidence for one candidate."""

    def __init__(self) -> None:
        self.mirrored = 0          # mirror copies enqueued
        self.completed = 0         # mirror copies answered (ok or failed)
        self.matches = 0           # family name agreed with the primary
        self.mismatches = 0        # family name disagreed
        self.shadow_failures = 0   # candidate failed a sample the primary aced
        self.primary_latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self.shadow_latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)

    @property
    def parity(self) -> Optional[float]:
        """Matching fraction over completions (failures count against)."""
        if self.completed == 0:
            return None
        return self.matches / self.completed

    @property
    def latency_ratio(self) -> Optional[float]:
        shadow = _p50(self.shadow_latencies)
        primary = _p50(self.primary_latencies)
        if shadow is None or primary is None or primary <= 0:
            return None
        return shadow / primary

    def snapshot(self) -> Dict:
        return {
            "mirrored": self.mirrored,
            "completed": self.completed,
            "matches": self.matches,
            "mismatches": self.mismatches,
            "shadow_failures": self.shadow_failures,
            "parity": self.parity,
            "latency_ratio": self.latency_ratio,
            "primary_p50_ms": _ms(_p50(self.primary_latencies)),
            "shadow_p50_ms": _ms(_p50(self.shadow_latencies)),
        }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1000.0, 3)


class RolloutController:
    """State machine for one candidate version's canary run.

    Not thread-safe on its own — the fleet dispatcher calls every method
    with its lock held (see the module docstring), so promotion swaps
    the primary set atomically with respect to request routing.
    """

    def __init__(self, config: RolloutConfig,
                 candidate_families: List[str]) -> None:
        config.validate()
        self.config = config
        self.candidate_families = candidate_families
        self.report = CanaryReport()
        self.sampler = ShadowSampler(config.shadow_fraction)
        self.state = SHADOWING
        self.verdict: Optional[str] = None  # "promote" | "rollback"
        self.reason: Optional[str] = None

    # -- shadow traffic ------------------------------------------------

    def should_mirror(self) -> bool:
        """Whether the next successful live request gets a mirror copy."""
        if self.state != SHADOWING:
            return False
        return self.sampler.select()

    def record_mirrored(self) -> None:
        self.report.mirrored += 1

    def record_shadow_result(
        self,
        primary_family: Optional[str],
        shadow_family: Optional[str],
        shadow_ok: bool,
        primary_latency: float,
        shadow_latency: float,
    ) -> None:
        """One mirror copy came back; fold it into the report."""
        report = self.report
        report.completed += 1
        report.primary_latencies.append(primary_latency)
        report.shadow_latencies.append(shadow_latency)
        if not shadow_ok:
            report.shadow_failures += 1
            report.mismatches += 1
        elif shadow_family == primary_family:
            report.matches += 1
        else:
            report.mismatches += 1

    def record_shadow_loss(self) -> None:
        """A mirror copy was lost to a worker crash/timeout (no result).

        Counted as a completion *and* a failure: a candidate that cannot
        stay up under its shadow share must not be promoted.
        """
        self.report.completed += 1
        self.report.shadow_failures += 1
        self.report.mismatches += 1

    # -- verdict -------------------------------------------------------

    def evaluate(self) -> Optional[str]:
        """Judge the report once enough evidence accumulated.

        Returns ``"promote"`` / ``"rollback"`` exactly once (state moves
        to ``decided``); ``None`` while evidence is still accumulating
        or after the verdict was already delivered.
        """
        if self.state != SHADOWING:
            return None
        if self.report.completed < self.config.min_samples:
            return None
        parity = self.report.parity
        ratio = self.report.latency_ratio
        if parity is not None and parity < self.config.min_parity:
            self.verdict = "rollback"
            self.reason = (
                f"label parity {parity:.4f} below the "
                f"{self.config.min_parity} canary threshold"
            )
        elif ratio is not None and ratio > self.config.max_latency_ratio:
            self.verdict = "rollback"
            self.reason = (
                f"shadow/primary p50 latency ratio {ratio:.2f} above the "
                f"{self.config.max_latency_ratio} canary threshold"
            )
        else:
            self.verdict = "promote"
            self.reason = (
                f"label parity {parity if parity is None else round(parity, 4)} "
                f"and latency ratio {ratio if ratio is None else round(ratio, 2)} "
                "within canary thresholds"
            )
        self.state = DECIDED
        return self.verdict

    def mark_promoted(self) -> None:
        if self.state not in (SHADOWING, DECIDED):
            raise RolloutError(
                f"cannot promote a rollout in state {self.state!r}"
            )
        self.state = PROMOTED

    def mark_rolled_back(self) -> None:
        if self.state not in (SHADOWING, DECIDED):
            raise RolloutError(
                f"cannot roll back a rollout in state {self.state!r}"
            )
        self.state = ROLLED_BACK

    @property
    def active(self) -> bool:
        """Still shadowing or awaiting an operator decision."""
        return self.state in (SHADOWING, DECIDED)

    def status(self) -> Dict:
        return {
            "state": self.state,
            "version": self.config.version,
            "shadow_fraction": self.config.shadow_fraction,
            "min_samples": self.config.min_samples,
            "min_parity": self.config.min_parity,
            "max_latency_ratio": self.config.max_latency_ratio,
            "auto": self.config.auto,
            "verdict": self.verdict,
            "reason": self.reason,
            "report": self.report.snapshot(),
        }
