"""Multi-process serving fleet: fan ``/classify`` over model replicas.

The single-process serve stack (engine + :class:`MicroBatcher`) is
GIL-bound: one worker thread runs every forward, so one deployment can
never use more than one core.  The :class:`FleetDispatcher` lifts the
same contract onto N long-lived worker processes
(:class:`~repro.workers.request.RequestWorker`), each of which loads its
own model replica from the registry at startup and answers batched
classification messages over its pipe.

Routing and batching
--------------------
Requests queue in the parent; a single dispatch thread multiplexes all
worker pipes (plus a self-pipe waker) with ``multiprocessing.connection
.wait``.  Each worker holds at most **one** outstanding batch, so
batching is continuous rather than windowed: whenever a worker is idle
and the queue is non-empty, it immediately receives up to
``max_batch_size`` requests (split fairly across idle workers), and
requests arriving while every worker is busy pile up and leave as the
next batch — the same coalescing-under-load behaviour as the
single-process :class:`MicroBatcher`, without the wait-window latency
tax.  Ties between idle workers break toward the least-served replica.

Failure semantics
-----------------
The fleet inherits the extraction pipeline's supervision model: a
worker that closes its pipe (crash) or blows the per-batch wall-clock
deadline is SIGKILLed and respawned, and its in-flight requests are
retried once on another replica.  A request that fails twice gets a
structured :class:`ClassificationResult` carrying a ``crash`` /
``timeout`` :class:`FailureKind` — exactly the taxonomy batch
extraction reports, so operators triage serve-time and extract-time
faults with one vocabulary.  A worker whose *respawn* fails to
initialize is marked failed and taken out of rotation; when every
primary replica is failed, ``submit`` raises
:class:`~repro.exceptions.ServeError` (HTTP 503) instead of queueing
into the void.

Rollout
-------
The dispatcher also hosts the zero-downtime rollout protocol: candidate
workers run beside the primaries under the ``shadow`` role, a fraction
of successful live traffic is mirrored to them (results never returned
to clients), and the accumulated canary report promotes or rolls back
atomically under the fleet lock.  See :mod:`repro.serve.rollout`.
"""

from __future__ import annotations

import math
import operator
import os
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Deque, Dict, List, Optional

from repro.exceptions import FleetError, RolloutError, ServeError, WorkerStartupError
from repro.features.pipeline import ExtractionFailure, FailureKind
from repro.serve.batching import DEFAULT_MAX_BATCH_SIZE
from repro.serve.engine import DEFAULT_CACHE_SIZE, ClassificationResult, InferenceEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.registry import read_manifest, resolve_version
from repro.serve.rollout import SHADOWING, RolloutConfig, RolloutController
from repro.workers.pool import _TICK_SECONDS
from repro.workers.request import INIT_ERROR, READY, RequestWorker, WorkerReply

#: Default wall-clock limit for one worker batch (extraction + forward).
DEFAULT_BATCH_TIMEOUT = 60.0

#: Default deadline for a replica to load its model and announce ready.
DEFAULT_START_TIMEOUT = 120.0

#: Replica states (roles are "primary" / "shadow" / "retiring").
STARTING = "starting"
READY_STATE = "ready"
FAILED = "failed"


class _InferenceHandler:
    """Worker-side request handler: one engine replica, batched calls."""

    def __init__(self, engine: InferenceEngine) -> None:
        self.engine = engine

    def __call__(self, payload: List) -> List[ClassificationResult]:
        return self.engine.classify_texts([tuple(pair) for pair in payload])


def inference_service(
    root: str,
    name: str,
    version: str,
    max_vertices: Optional[int] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    similar_threshold: Optional[float] = None,
    fingerprint_iterations: Optional[int] = None,
    fault_plan=None,
    compiled: bool = True,
    infer_dtype: str = "float64",
):
    """Entrypoint factory run *inside* each fleet worker process.

    Referenced by name (``"repro.serve.fleet:inference_service"``) so
    nothing callable crosses the pipe; the returned handler answers one
    ``[(name, text), ...]`` batch per message.  Loading goes through the
    registry, so every replica independently verifies the archive's
    integrity before serving.  The compiled tape cache lives inside this
    process, so a respawned worker simply re-captures on its first
    batch of each shape.
    """
    kwargs = {}
    if fingerprint_iterations is not None:
        kwargs["fingerprint_iterations"] = fingerprint_iterations
    engine = InferenceEngine.from_registry(
        root,
        name,
        version=version,
        cache_size=cache_size,
        similar_threshold=similar_threshold,
        max_vertices=max_vertices,
        fault_plan=fault_plan,
        compiled=compiled,
        infer_dtype=infer_dtype,
        **kwargs,
    )
    return _InferenceHandler(engine)


ENTRYPOINT = "repro.serve.fleet:inference_service"


class _FleetRequest:
    """One queued classification request (live or shadow mirror copy)."""

    __slots__ = ("name", "text", "event", "result", "error", "attempts",
                 "sent_at", "primary_family", "primary_latency")

    def __init__(self, name: str, text: str,
                 event: Optional[threading.Event]) -> None:
        self.name = name
        self.text = text
        #: ``None`` marks a shadow mirror copy: no client is waiting.
        self.event = event
        self.result: Optional[ClassificationResult] = None
        self.error: Optional[Exception] = None
        self.attempts = 0
        self.sent_at = 0.0
        # Set on mirror copies only: the live answer they shadow.
        self.primary_family: Optional[str] = None
        self.primary_latency = 0.0

    @property
    def is_shadow(self) -> bool:
        return self.event is None


class _Replica:
    """One fleet slot: a request worker plus routing state and stats."""

    __slots__ = ("worker", "role", "state", "version", "batch", "batch_id",
                 "deadline", "served", "batches", "retries", "detail")

    def __init__(self, worker: RequestWorker, role: str, version: str,
                 state: str) -> None:
        self.worker = worker
        self.role = role
        self.state = state
        self.version = version
        self.batch: Optional[List[_FleetRequest]] = None
        self.batch_id = 0
        self.deadline: Optional[float] = None
        self.served = 0
        self.batches = 0
        self.retries = 0
        self.detail: Optional[str] = None  # why state == "failed"

    @property
    def busy(self) -> bool:
        return self.batch is not None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "pid": self.worker.pid,
            "role": self.role,
            "state": self.state,
            "version": self.version,
            "busy": self.busy,
            "served": self.served,
            "batches": self.batches,
            "respawns": self.worker.respawns,
            "retries": self.retries,
            "detail": self.detail,
        }


class FleetDispatcher:
    """Routes classification traffic over N model-replica processes.

    Implements the serving-backend contract the HTTP layer expects
    (``submit`` / ``metrics_snapshot`` / ``health_payload`` /
    ``pending_count`` / lifecycle), plus the rollout control surface.

    Parameters
    ----------
    root, name, version:
        Registry coordinates of the served model; ``version=None`` pins
        to the latest finalized archive at construction time, so every
        replica — including respawns — loads the same version.
    num_workers:
        Primary replica count (must be >= 1; ``--workers 0`` keeps the
        single-process path and never constructs a dispatcher).
    max_batch_size:
        Cap on requests per worker batch.
    batch_timeout:
        Wall-clock limit for one worker batch; a worker over it is
        SIGKILLed and respawned (``None`` disables).
    start_timeout:
        Deadline for a replica to load its model and announce ready.
    max_vertices, cache_size, fault_plan:
        Forwarded into each worker's :class:`InferenceEngine`
        (``fault_plan`` exists for tests: deterministic hangs/crashes).
    similar_threshold, fingerprint_iterations:
        Per-replica similarity cache tier configuration, forwarded into
        each worker's :class:`InferenceEngine` (``similar_threshold
        = None`` keeps the tier off).  Each replica keeps its own
        fingerprint index; fixed hashing seeds keep their fingerprints
        mutually comparable.
    compiled, infer_dtype:
        Forwarded into each worker's :class:`InferenceEngine`; the tape
        cache is per-process, so respawned replicas re-capture on their
        first batch of each shape.
    """

    def __init__(
        self,
        root: str,
        name: str,
        version: Optional[str] = None,
        num_workers: int = 2,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        batch_timeout: Optional[float] = DEFAULT_BATCH_TIMEOUT,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        max_vertices: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        similar_threshold: Optional[float] = None,
        fingerprint_iterations: Optional[int] = None,
        fault_plan=None,
        metrics: Optional[ServeMetrics] = None,
        compiled: bool = True,
        infer_dtype: str = "float64",
    ) -> None:
        if num_workers < 1:
            raise FleetError(f"num_workers must be >= 1, got {num_workers}")
        if max_batch_size < 1:
            raise FleetError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if infer_dtype != "float64" and not compiled:
            # Fail fast in the parent: otherwise every replica would die
            # at engine construction and surface as a startup timeout.
            raise FleetError(
                "float32 inference is implemented by the compiled tape only; "
                "drop --no-compiled or use float64"
            )
        self.root = os.path.abspath(root)
        self.name = name
        self.version = resolve_version(self.root, name, version)
        manifest = read_manifest(self.root, name, self.version)
        self.family_names: List[str] = list(manifest["family_names"])
        self.num_workers = num_workers
        self.max_batch_size = max_batch_size
        self.batch_timeout = batch_timeout
        self.start_timeout = start_timeout
        self.max_vertices = max_vertices
        self.cache_size = cache_size
        self.similar_threshold = similar_threshold
        self.fingerprint_iterations = fingerprint_iterations
        self.fault_plan = fault_plan
        self.compiled = compiled
        self.infer_dtype = infer_dtype
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self._lock = threading.Lock()
        self._queue: Deque[_FleetRequest] = deque()
        self._shadow_queue: Deque[_FleetRequest] = deque()
        self._replicas: List[_Replica] = []
        self._rollout: Optional[RolloutController] = None
        self._request_counter = 0
        self._spawn_counter = 0
        self._running = False
        self._accepting = False
        self._loop_faults = 0
        self._loop_fault_detail: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._waker_r = -1
        self._waker_w = -1

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "FleetDispatcher":
        """Spawn the replicas, wait for readiness, start dispatching."""
        with self._lock:
            if self._running:
                raise FleetError("fleet dispatcher is already running")
            self._running = True
            self._accepting = True
        self._waker_r, self._waker_w = os.pipe()
        os.set_blocking(self._waker_w, False)
        spawned: List[_Replica] = []
        try:
            for _ in range(self.num_workers):
                spawned.append(self._spawn_replica("primary", self.version))
        except WorkerStartupError:
            for replica in spawned:
                replica.worker.stop(kill=True)
            self._close_waker()
            with self._lock:
                self._running = False
                self._accepting = False
            raise
        with self._lock:
            self._replicas.extend(spawned)
        self._thread = threading.Thread(
            target=self._loop, name="fleet-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Ordered shutdown: stop accepting, drain, stop workers."""
        with self._lock:
            if not self._running:
                return
            self._accepting = False
        self._wake()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                drained = (
                    not self._queue
                    and not self._shadow_queue
                    and not any(replica.busy for replica in self._replicas)
                )
            if drained:
                break
            time.sleep(_TICK_SECONDS)
        with self._lock:
            self._running = False
            leftovers = list(self._queue)
            self._queue.clear()
            self._shadow_queue.clear()
        for request in leftovers:  # only on drain timeout
            request.error = ServeError("fleet stopped before the request ran")
            if request.event is not None:
                request.event.set()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._lock:
            replicas = list(self._replicas)
            self._replicas.clear()
        for replica in replicas:
            replica.worker.stop(kill=replica.busy)
        self._close_waker()

    def __enter__(self) -> "FleetDispatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    def _close_waker(self) -> None:
        for fd in (self._waker_r, self._waker_w):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed
                    pass
        self._waker_r = self._waker_w = -1

    def _wake(self) -> None:
        if self._waker_w < 0:
            return
        try:
            os.write(self._waker_w, b"x")
        except (BlockingIOError, OSError):
            pass  # already signalled (pipe full) or shutting down

    def _spawn_replica(self, role: str, version: str) -> _Replica:
        """Spawn one worker and block until it announces ready."""
        self._spawn_counter += 1
        worker = RequestWorker(
            name=f"{self.name}@{version}#{self._spawn_counter}",
            entrypoint=ENTRYPOINT,
            init_kwargs={
                "root": self.root,
                "name": self.name,
                "version": version,
                "max_vertices": self.max_vertices,
                "cache_size": self.cache_size,
                "similar_threshold": self.similar_threshold,
                "fingerprint_iterations": self.fingerprint_iterations,
                "fault_plan": self.fault_plan,
                "compiled": self.compiled,
                "infer_dtype": self.infer_dtype,
            },
        )
        worker.start(wait_ready=self.start_timeout)
        return _Replica(worker, role=role, version=version, state=READY_STATE)

    # -- request side --------------------------------------------------

    def submit(
        self, text: str, name: str = "", timeout: Optional[float] = 30.0
    ) -> ClassificationResult:
        """Classify ``text``; blocks until a replica answers.

        Mirrors :meth:`MicroBatcher.submit`: raises
        :class:`~repro.exceptions.ServeError` when the fleet is not
        accepting work, has no live replicas, or the request times out.
        """
        request = _FleetRequest(name=name, text=text, event=threading.Event())
        with self._lock:
            if not self._running or not self._accepting:
                raise ServeError(
                    "fleet dispatcher is not accepting requests"
                )
            if not any(replica.role == "primary" and replica.state != FAILED
                       for replica in self._replicas):
                raise ServeError(
                    "every fleet worker has failed; restart the service"
                )
            self._queue.append(request)
        self._wake()
        if not request.event.wait(timeout):
            with self._lock:
                try:
                    self._queue.remove(request)
                except ValueError:
                    pass  # already dispatched; the late result is discarded
            raise ServeError(
                f"classification of {name or 'sample'!r} timed out after "
                f"{timeout}s in the fleet queue"
            )
        if request.error is not None:
            raise request.error
        assert request.result is not None
        return request.result

    @property
    def pending_count(self) -> int:
        """Live requests queued or in flight (shadow copies excluded)."""
        with self._lock:
            in_flight = sum(
                len(replica.batch)
                for replica in self._replicas
                if replica.batch is not None and replica.role != "shadow"
            )
            return len(self._queue) + in_flight

    # -- observability -------------------------------------------------

    def fleet_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return self._fleet_snapshot_locked()

    def _fleet_snapshot_locked(self) -> Dict[str, Any]:
        return {
            "model": f"{self.name}@{self.version}",
            "queue_depth": len(self._queue),
            "shadow_queue_depth": len(self._shadow_queue),
            "workers": [replica.snapshot() for replica in self._replicas],
            "loop_faults": self._loop_faults,
            "loop_fault_detail": self._loop_fault_detail,
            "rollout": (self._rollout.status()
                        if self._rollout is not None else None),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        return {**self.metrics.snapshot(), "fleet": self.fleet_snapshot()}

    def describe_model(self) -> str:
        return f"{self.name}@{self.version}"

    def batching_info(self) -> Dict[str, Any]:
        # max_wait_ms is structural here: fleet batching is continuous
        # (idle worker + non-empty queue dispatches immediately).
        return {"max_batch_size": self.max_batch_size, "max_wait_ms": 0.0}

    # -- rollout control -----------------------------------------------

    def start_rollout(self, config: RolloutConfig) -> Dict[str, Any]:
        """Spawn candidate workers and begin shadowing live traffic."""
        config.validate()
        with self._lock:
            if not self._running:
                raise RolloutError("fleet dispatcher is not running")
            if self._rollout is not None and self._rollout.active:
                raise RolloutError(
                    f"a rollout to {self._rollout.config.version} is already "
                    "active; promote or roll it back first"
                )
            if config.version == self.version:
                raise RolloutError(
                    f"candidate version {config.version} is already serving"
                )
            primary_count = sum(
                1 for replica in self._replicas if replica.role == "primary"
            )
        # Validates the candidate exists and is finalized, and yields its
        # family table for the canary parity check.
        manifest = read_manifest(self.root, self.name, config.version)
        count = config.num_workers or max(primary_count, 1)
        spawned: List[_Replica] = []
        try:
            for _ in range(count):
                spawned.append(self._spawn_replica("shadow", config.version))
        except WorkerStartupError:
            for replica in spawned:
                replica.worker.stop(kill=True)
            raise
        controller = RolloutController(
            config, candidate_families=list(manifest["family_names"])
        )
        with self._lock:
            if self._rollout is not None and self._rollout.active:
                doomed = spawned  # lost the race to a concurrent start
            else:
                self._replicas.extend(spawned)
                self._rollout = controller
                doomed = []
        for replica in doomed:
            replica.worker.stop(kill=False)
        if doomed:
            raise RolloutError("another rollout started concurrently")
        self._wake()
        return controller.status()

    def rollout_status(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return None if self._rollout is None else self._rollout.status()

    def promote(self) -> Dict[str, Any]:
        """Operator-driven promotion of the shadowing candidate."""
        with self._lock:
            if self._rollout is None or not self._rollout.active:
                raise RolloutError("no active rollout to promote")
            self._promote_locked()
            status = self._rollout.status()
        self._wake()
        return status

    def rollback(self) -> Dict[str, Any]:
        """Operator-driven rollback; the old version never stopped."""
        with self._lock:
            if self._rollout is None or not self._rollout.active:
                raise RolloutError("no active rollout to roll back")
            self._rollback_locked()
            status = self._rollout.status()
        self._wake()
        return status

    def _promote_locked(self) -> None:
        """Swap the candidate in atomically: shadows become primaries."""
        assert self._rollout is not None
        for replica in self._replicas:
            if replica.role == "primary":
                replica.role = "retiring"
            elif replica.role == "shadow":
                replica.role = "primary"
        self._shadow_queue.clear()  # repro: allow[lock-discipline] — _locked helper, caller holds self._lock
        self.version = self._rollout.config.version
        self.family_names = list(self._rollout.candidate_families)
        self._rollout.mark_promoted()

    def _rollback_locked(self) -> None:
        """Retire the candidate; the primary set is untouched."""
        assert self._rollout is not None
        for replica in self._replicas:
            if replica.role == "shadow":
                replica.role = "retiring"
        self._shadow_queue.clear()  # repro: allow[lock-discipline] — _locked helper, caller holds self._lock
        self._rollout.mark_rolled_back()

    # -- dispatch loop -------------------------------------------------

    def _loop(self) -> None:
        while True:
            try:
                if not self._tick():
                    break
            except Exception as exc:  # repro: allow[broad-except] — the dispatch thread must outlive internal faults; they are counted, not fatal
                with self._lock:
                    self._loop_faults += 1
                    self._loop_fault_detail = f"{type(exc).__name__}: {exc}"

    def _tick(self) -> bool:
        """One dispatch-loop iteration; ``False`` ends the loop."""
        with self._lock:
            if not self._running:
                return False
            retired = self._take_retired_locked()
            self._dispatch_locked()  # repro: allow[lock-order] — batch sends under the lock keep queue/replica state consistent; pipe buffers absorb them
            self._enforce_deadlines_locked()  # repro: allow[lock-order] — respawn under the lock uses timed joins; bounded by design
            conns = {
                replica.worker.conn: replica
                for replica in self._replicas
                if replica.state != FAILED
                and replica.worker.conn is not None
            }
        for replica in retired:
            replica.worker.stop(kill=False)
        try:
            ready = mp_connection.wait(
                list(conns) + [self._waker_r], timeout=_TICK_SECONDS
            )
        except OSError:  # pragma: no cover - fd torn down mid-wait
            return True
        for obj in ready:
            if obj == self._waker_r:
                try:
                    os.read(self._waker_r, 4096)
                except OSError:  # pragma: no cover
                    pass
                continue
            self._service_replica(conns[obj])
        return True

    def _take_retired_locked(self) -> List[_Replica]:
        """Detach idle retiring replicas (stopped outside the lock)."""
        retired = [
            replica for replica in self._replicas
            if replica.role == "retiring" and not replica.busy
        ]
        for replica in retired:
            self._replicas.remove(replica)  # repro: allow[lock-discipline] — _locked helper, caller holds self._lock
        return retired

    def _dispatch_locked(self) -> None:
        self._dispatch_queue_locked(self._queue, "primary")
        if self._rollout is not None and self._rollout.active:
            self._dispatch_queue_locked(self._shadow_queue, "shadow")

    def _dispatch_queue_locked(self, queue: Deque[_FleetRequest],
                               role: str) -> None:
        while queue:
            idle = [
                replica for replica in self._replicas
                if replica.role == role
                and replica.state == READY_STATE
                and not replica.busy
            ]
            if not idle:
                return
            # Spread the backlog fairly over the idle workers; ties go to
            # the replica that has served the least.
            share = math.ceil(len(queue) / len(idle))
            size = min(len(queue), self.max_batch_size, max(1, share))
            replica = min(idle, key=operator.attrgetter("served"))
            batch = [queue.popleft() for _ in range(size)]
            self._send_batch_locked(replica, batch, queue)

    def _send_batch_locked(self, replica: _Replica,
                           batch: List[_FleetRequest],
                           queue: Deque[_FleetRequest]) -> None:
        self._request_counter += 1
        batch_id = self._request_counter
        payload = [(request.name, request.text) for request in batch]
        try:
            replica.worker.send(batch_id, payload)
        except (BrokenPipeError, OSError):
            # Died between batches: the batch goes back uncharged and
            # the replica respawns.
            for request in reversed(batch):
                queue.appendleft(request)
            self._respawn_locked(replica)
            return
        now = time.perf_counter()
        for request in batch:
            request.sent_at = now
            request.attempts += 1
        replica.batch = batch
        replica.batch_id = batch_id
        if self.batch_timeout is not None:
            replica.deadline = time.monotonic() + self.batch_timeout
        else:
            replica.deadline = None

    def _service_replica(self, replica: _Replica) -> None:
        """One readable pipe: a reply, a readiness message, or EOF."""
        try:
            message = replica.worker.conn.recv()
        except (EOFError, OSError):
            with self._lock:
                self._worker_died_locked(  # repro: allow[lock-order] — retry/respawn under the lock uses timed joins; bounded by design
                    replica,
                    FailureKind.CRASH,
                    "fleet worker process died without reporting",
                )
            return
        if message[0] in (READY, INIT_ERROR):
            with self._lock:
                try:
                    replica.worker.observe_ready(message)  # repro: allow[lock-order] — the pipe is already readable, so the ready recv returns immediately
                    replica.state = READY_STATE
                except WorkerStartupError as exc:
                    replica.state = FAILED
                    replica.detail = exc.detail
                    self._fail_pending_if_dead_locked()
            return
        reply = WorkerReply.from_message(message)
        with self._lock:
            self._deliver_locked(replica, reply)

    def _deliver_locked(self, replica: _Replica, reply: WorkerReply) -> None:
        if replica.batch is None or reply.request_id != replica.batch_id:
            return  # stale reply from before a kill/respawn
        batch = replica.batch
        replica.batch = None
        replica.deadline = None
        replica.batches += 1
        replica.served += len(batch)
        now = time.perf_counter()
        if not reply.ok:
            # The handler itself raised (engine bug): every request in
            # the batch gets a structured unexpected-failure result.
            for request in batch:
                self._finish_failed_locked(
                    request, FailureKind.UNEXPECTED, str(reply.value)
                )
            return
        self.metrics.observe_batch(len(batch))
        results: List[ClassificationResult] = reply.value
        for request, result in zip(batch, results):
            latency = now - request.sent_at
            if request.is_shadow:
                self._record_shadow_locked(request, result, latency)
            else:
                request.result = result
                if request.event is not None:
                    request.event.set()
                kind = (result.failure.kind.value
                        if result.failure is not None else None)
                self.metrics.observe_request(result.ok, kind)
                if result.similar:
                    self.metrics.observe_cache_tier(
                        "similar", result.similarity
                    )
                elif result.cached:
                    self.metrics.observe_cache_tier("exact")
                else:
                    self.metrics.observe_cache_tier("miss")
                self._maybe_mirror_locked(request, result, latency)
        self._conclude_rollout_locked()

    def _record_shadow_locked(self, request: _FleetRequest,
                              result: ClassificationResult,
                              latency: float) -> None:
        if self._rollout is None or not self._rollout.active:
            return
        self._rollout.record_shadow_result(
            primary_family=request.primary_family,
            shadow_family=result.family,
            shadow_ok=result.ok,
            primary_latency=request.primary_latency,
            shadow_latency=latency,
        )

    def _maybe_mirror_locked(self, request: _FleetRequest,
                             result: ClassificationResult,
                             latency: float) -> None:
        rollout = self._rollout
        if rollout is None or rollout.state != SHADOWING or not result.ok:
            return
        if not rollout.should_mirror():
            return
        rollout.record_mirrored()
        mirror = _FleetRequest(name=request.name, text=request.text,
                               event=None)
        mirror.primary_family = result.family
        mirror.primary_latency = latency
        self._shadow_queue.append(mirror)  # repro: allow[lock-discipline] — _locked helper, caller holds self._lock

    def _conclude_rollout_locked(self) -> None:
        rollout = self._rollout
        if rollout is None or rollout.state != SHADOWING:
            return
        verdict = rollout.evaluate()
        if verdict is None or not rollout.config.auto:
            return
        if verdict == "promote":
            self._promote_locked()
        else:
            self._rollback_locked()

    # -- supervision ---------------------------------------------------

    def _enforce_deadlines_locked(self) -> None:
        if self.batch_timeout is None:
            return
        now = time.monotonic()
        for replica in list(self._replicas):
            if (replica.batch is None or replica.deadline is None
                    or now < replica.deadline):
                continue
            self._worker_died_locked(
                replica,
                FailureKind.TIMEOUT,
                f"fleet worker killed after exceeding the "
                f"{self.batch_timeout}s batch deadline",
            )

    def _worker_died_locked(self, replica: _Replica, kind: FailureKind,
                            detail: str) -> None:
        """Charge the in-flight batch and respawn (or retire) the slot."""
        batch = replica.batch
        replica.batch = None
        replica.deadline = None
        if batch:
            self._retry_or_fail_locked(replica, batch, kind, detail)
        self._respawn_locked(replica)

    def _retry_or_fail_locked(self, replica: _Replica,
                              batch: List[_FleetRequest],
                              kind: FailureKind, detail: str) -> None:
        queue = (self._shadow_queue
                 if replica.role == "shadow" else self._queue)
        for request in reversed(batch):
            if request.is_shadow:
                # Mirror copies are never retried: the canary charges the
                # candidate for losing them.
                if self._rollout is not None and self._rollout.active:
                    self._rollout.record_shadow_loss()
                continue
            if request.attempts < 2:
                replica.retries += 1
                queue.appendleft(request)
            else:
                self._finish_failed_locked(request, kind, detail)

    def _finish_failed_locked(self, request: _FleetRequest,
                              kind: FailureKind, detail: str) -> None:
        if request.is_shadow:
            if self._rollout is not None and self._rollout.active:
                self._rollout.record_shadow_loss()
            return
        request.result = ClassificationResult(
            name=request.name,
            failure=ExtractionFailure(
                name=request.name, kind=kind, detail=detail, index=0
            ),
        )
        self.metrics.observe_request(False, kind.value)
        if request.event is not None:
            request.event.set()

    def _respawn_locked(self, replica: _Replica) -> None:
        if replica.role == "retiring" or not self._running:
            if replica in self._replicas:
                self._replicas.remove(replica)  # repro: allow[lock-discipline] — _locked helper, caller holds self._lock
            replica.worker.stop(kill=True)
            return
        try:
            replica.worker.respawn(kill=True, wait_ready=None)
            replica.state = STARTING
        except WorkerStartupError as exc:  # pragma: no cover - wait_ready=None
            replica.state = FAILED
            replica.detail = exc.detail
            self._fail_pending_if_dead_locked()

    def _fail_pending_if_dead_locked(self) -> None:
        """Every primary failed: answer queued requests with 503s."""
        if any(replica.role == "primary" and replica.state != FAILED
               for replica in self._replicas):
            return
        while self._queue:
            request = self._queue.popleft()  # repro: allow[lock-discipline] — _locked helper, caller holds self._lock
            request.error = ServeError(
                "every fleet worker has failed; restart the service"
            )
            if request.event is not None:
                request.event.set()
