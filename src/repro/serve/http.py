"""Stdlib-only threaded HTTP front end for the classification service.

Endpoints, all JSON:

* ``POST /classify`` — body ``{"name": "...", "asm": "<listing text>"}``;
  replies ``200`` with family/label/probabilities, or ``422`` with the
  structured extraction failure (``{"error": {"kind", "detail"}}``) when
  the *sample* is bad, or ``400`` when the *request* is bad, or ``503``
  when the *service* is (queue timeout, draining, dead fleet).
* ``GET /healthz``  — liveness plus the served model's identity.
* ``GET /metrics``  — the :class:`~repro.serve.metrics.ServeMetrics`
  snapshot; in fleet mode it additionally carries a ``"fleet"`` section
  with per-worker state (busy, served, respawns, queue depth).
* ``POST /rollout/start`` / ``GET /rollout/status`` /
  ``POST /rollout/promote`` / ``POST /rollout/rollback`` — the
  zero-downtime rollout control surface (fleet mode only; ``409``
  otherwise).

The server is front-end only: it speaks to a **backend** — either the
in-process engine + :class:`MicroBatcher` pair (``--workers 0``) or a
:class:`~repro.serve.fleet.FleetDispatcher` fanning requests over model
replica processes.  Both expose the same surface (``submit``,
``metrics_snapshot``, ``pending_count``, lifecycle), so every handler
path is identical in both modes.

Operational contracts pinned here:

* ``allow_reuse_address`` is ``True`` on the server class, so rapid
  restart and rollout cycles rebind the port without waiting out
  ``TIME_WAIT`` sockets.
* Shutdown is ordered: stop accepting connections, drain in-flight
  batches (handler threads are non-daemon and joined), then close the
  socket — a request accepted before shutdown still completes with its
  real status.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import RolloutError, ServeError
from repro.features.pipeline import FailureKind
from repro.serve.batching import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_WAIT_MS,
    MicroBatcher,
)
from repro.serve.engine import ClassificationResult, InferenceEngine

#: Largest accepted request body; a listing bigger than this is not a
#: classification request, it is a denial of service.
MAX_BODY_BYTES = 32 * 1024 * 1024


class EngineBackend:
    """Single-process backend: one engine behind one micro-batcher."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    ) -> None:
        self.engine = engine
        self.batcher = MicroBatcher(
            engine, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "EngineBackend":
        self.batcher.start()
        return self

    def stop(self) -> None:
        self.batcher.stop()

    # -- serving -------------------------------------------------------

    def submit(self, text: str, name: str = "",
               timeout: Optional[float] = 30.0) -> ClassificationResult:
        return self.batcher.submit(text, name=name, timeout=timeout)

    @property
    def pending_count(self) -> int:
        return self.batcher.pending_count

    # -- observability -------------------------------------------------

    @property
    def metrics(self):
        return self.engine.metrics

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.engine.metrics.snapshot()

    def describe_model(self) -> str:
        info = self.engine.model_info
        return info.describe() if info is not None else "in-process"

    @property
    def family_names(self):
        return self.engine.family_names

    def batching_info(self) -> Dict[str, Any]:
        return {
            "max_batch_size": self.batcher.max_batch_size,
            "max_wait_ms": self.batcher.max_wait_ms,
        }


class ClassificationServer(ThreadingHTTPServer):
    """HTTP server over a serving backend (engine pair or fleet)."""

    # Restart/rollout cycles must rebind immediately; without this a
    # lingering TIME_WAIT socket from the previous incarnation fails the
    # bind and turns every redeploy into a coin flip.
    allow_reuse_address = True

    # Handler threads are non-daemon and joined by server_close(), so an
    # ordered shutdown lets in-flight requests finish with real answers
    # instead of dying mid-write with the process.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        address: Tuple[str, int],
        backend,
        request_timeout: float = 60.0,
        quiet: bool = True,
        include_margin: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.backend = backend
        self.request_timeout = request_timeout
        self.quiet = quiet
        #: Opt-in: add the top-2 score margin to /classify responses.
        self.include_margin = include_margin
        self.started_at = time.monotonic()

    @property
    def port(self) -> int:
        return self.server_address[1]

    # Back-compat accessors for callers written against the PR-4 server.
    @property
    def engine(self) -> Optional[InferenceEngine]:
        return getattr(self.backend, "engine", None)

    @property
    def batcher(self) -> Optional[MicroBatcher]:
        return getattr(self.backend, "batcher", None)

    def __enter__(self) -> "ClassificationServer":
        self.backend.start()
        return self

    def __exit__(self, *exc_info) -> None:
        # Ordered drain: (1) stop accepting new connections, (2) let the
        # backend finish every queued batch (handler threads parked in
        # submit() get their results and write their responses), (3)
        # join handler threads and close the socket.
        self.shutdown()
        self.backend.stop()
        self.server_close()

    def serve(self) -> None:
        """Run until interrupted (the CLI entry point)."""
        with self:
            self.serve_forever()


def build_server(
    engine: InferenceEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    request_timeout: float = 60.0,
    quiet: bool = True,
    include_margin: bool = False,
) -> ClassificationServer:
    """A single-process server (not yet started); ``port=0`` = any free."""
    backend = EngineBackend(
        engine, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
    )
    return ClassificationServer(
        (host, port),
        backend,
        request_timeout=request_timeout,
        quiet=quiet,
        include_margin=include_margin,
    )


def build_fleet_server(
    dispatcher,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: float = 60.0,
    quiet: bool = True,
    include_margin: bool = False,
) -> ClassificationServer:
    """A server fronting a :class:`~repro.serve.fleet.FleetDispatcher`."""
    return ClassificationServer(
        (host, port),
        dispatcher,
        request_timeout=request_timeout,
        quiet=quiet,
        include_margin=include_margin,
    )


class _Handler(BaseHTTPRequestHandler):
    server: ClassificationServer

    #: Socket inactivity limit so a stalled client cannot pin a
    #: (non-daemon) handler thread past shutdown.
    timeout = 30.0

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        try:
            if self.path == "/healthz":
                self._send(200, self._health_payload())
            elif self.path == "/metrics":
                self._send(200, self.server.backend.metrics_snapshot())
            elif self.path == "/rollout/status":
                self._rollout_status()
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except Exception as exc:  # repro: allow[broad-except] — handler threads answer 500, they do not die
            self._send_fault(exc)  # repro: allow[fault-contract] — last-resort 500; only socket failures remain and those end the connection anyway

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        try:
            if self.path == "/classify":
                self._classify()
            elif self.path == "/rollout/start":
                self._rollout_start()
            elif self.path == "/rollout/promote":
                self._rollout_action("promote")
            elif self.path == "/rollout/rollback":
                self._rollout_action("rollback")
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except Exception as exc:  # repro: allow[broad-except] — handler threads answer 500, they do not die
            self._send_fault(exc)  # repro: allow[fault-contract] — last-resort 500; only socket failures remain and those end the connection anyway

    def _send_fault(self, exc: Exception) -> None:
        """Map an unexpected handler fault to a structured 500."""
        try:
            self._send(
                500,
                {
                    "error": "unexpected server error: "
                             f"{type(exc).__name__}: {exc}",
                    "kind": FailureKind.CRASH.value,
                },
            )
        except OSError:  # pragma: no cover - client gone mid-reply
            pass

    # -- /classify -----------------------------------------------------

    def _classify(self) -> None:
        started = time.perf_counter()
        body, error = self._read_json()
        if error is not None:
            self._send(400, {"error": error})
            return
        text = body.get("asm")
        if not isinstance(text, str) or not text.strip():
            self._send(
                400,
                {"error": "request body must carry a non-empty 'asm' "
                          "field with the listing text"},
            )
            return
        name = body.get("name", "")
        if not isinstance(name, str):
            self._send(400, {"error": "'name' must be a string"})
            return
        try:
            result = self.server.backend.submit(
                text, name=name, timeout=self.server.request_timeout
            )
        except ServeError as exc:
            # Queue timeout or a stopping backend: the service (not the
            # sample) is the problem, so 503 rather than 422.
            self._send(503, {"error": str(exc)})
            return
        self.server.backend.metrics.observe_stage(
            "request", time.perf_counter() - started
        )
        status, payload = _result_payload(
            result, include_margin=self.server.include_margin
        )
        self._send(status, payload)

    # -- /rollout/* ----------------------------------------------------

    def _fleet_backend(self):
        backend = self.server.backend
        if not hasattr(backend, "start_rollout"):
            self._send(
                409,
                {"error": "rollout requires fleet mode; restart the "
                          "service with --workers N (N >= 1)"},
            )
            return None
        return backend

    def _rollout_status(self) -> None:
        backend = self._fleet_backend()
        if backend is None:
            return
        status = backend.rollout_status()
        if status is None:
            self._send(404, {"error": "no rollout has been started"})
        else:
            self._send(200, status)

    def _rollout_start(self) -> None:
        backend = self._fleet_backend()
        if backend is None:
            return
        body, error = self._read_json()
        if error is not None:
            self._send(400, {"error": error})
            return
        version = body.get("version")
        if not isinstance(version, str) or not version:
            self._send(400, {"error": "request body must carry the "
                                      "candidate 'version' string"})
            return
        from repro.serve.rollout import RolloutConfig

        kwargs: Dict[str, Any] = {"version": version}
        for field, caster in (
            ("num_workers", int),
            ("shadow_fraction", float),
            ("min_samples", int),
            ("min_parity", float),
            ("max_latency_ratio", float),
            ("auto", bool),
        ):
            if field in body:
                try:
                    kwargs[field] = caster(body[field])
                except (TypeError, ValueError):
                    self._send(400, {"error": f"invalid {field!r} value"})
                    return
        try:
            config = RolloutConfig(**kwargs)
            status = backend.start_rollout(config)
        except (RolloutError, ServeError) as exc:
            self._send(409, {"error": str(exc)})
            return
        self._send(200, status)

    def _rollout_action(self, action: str) -> None:
        backend = self._fleet_backend()
        if backend is None:
            return
        try:
            status = getattr(backend, action)()
        except (RolloutError, ServeError) as exc:
            self._send(409, {"error": str(exc)})
            return
        self._send(200, status)

    # -- helpers -------------------------------------------------------

    def _health_payload(self) -> dict:
        backend = self.server.backend
        payload = {
            "status": "ok",
            "model": backend.describe_model(),
            "families": list(backend.family_names),
            "uptime_seconds": round(
                time.monotonic() - self.server.started_at, 3
            ),
            "batching": backend.batching_info(),
        }
        if hasattr(backend, "fleet_snapshot"):
            snapshot = backend.fleet_snapshot()
            payload["workers"] = len(snapshot["workers"])
        return payload

    def _read_json(self) -> Tuple[Optional[dict], Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            return None, "missing or invalid Content-Length"
        if length <= 0:
            return None, "empty request body"
        if length > MAX_BODY_BYTES:
            return None, f"request body exceeds {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"request body is not valid JSON: {exc}"
        if not isinstance(body, dict):
            return None, "request body must be a JSON object"
        return body, None

    def _send(self, status: int, payload: dict) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def _result_payload(
    result: ClassificationResult, include_margin: bool = False
) -> Tuple[int, dict]:
    if result.failure is not None:
        return 422, {
            "name": result.name,
            "cached": result.cached,
            "error": {
                "kind": result.failure.kind.value,
                "detail": result.failure.detail,
            },
        }
    assert result.probabilities is not None
    payload = {
        "name": result.name,
        "family": result.family,
        "label": result.label,
        "confidence": result.confidence,
        "cached": result.cached,
        # Always present so clients needn't guess whether the server
        # runs the similarity tier; "similarity" rides along on hits.
        "similar": result.similar,
        "probabilities": [float(p) for p in result.probabilities],
    }
    if result.similar and result.similarity is not None:
        payload["similarity"] = result.similarity
    if include_margin:
        payload["margin"] = result.margin
    return 200, payload
