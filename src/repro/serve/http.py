"""Stdlib-only threaded HTTP front end for the classification service.

Three endpoints, all JSON:

* ``POST /classify`` — body ``{"name": "...", "asm": "<listing text>"}``;
  replies ``200`` with family/label/probabilities, or ``422`` with the
  structured extraction failure (``{"error": {"kind", "detail"}}``) when
  the *sample* is bad, or ``400`` when the *request* is bad.
* ``GET /healthz``  — liveness plus the served model's identity.
* ``GET /metrics``  — the :class:`~repro.serve.metrics.ServeMetrics`
  snapshot (request counts, cache hit rate, per-stage latency
  percentiles, micro-batch size histogram).

Handler threads (``ThreadingHTTPServer``, one per connection) park in
the :class:`~repro.serve.batching.MicroBatcher` queue, so concurrent
``/classify`` requests coalesce into shared ``GraphBatch`` forwards;
the model itself only ever runs on the batcher's worker thread.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.exceptions import ServeError
from repro.serve.batching import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_WAIT_MS,
    MicroBatcher,
)
from repro.serve.engine import ClassificationResult, InferenceEngine

#: Largest accepted request body; a listing bigger than this is not a
#: classification request, it is a denial of service.
MAX_BODY_BYTES = 32 * 1024 * 1024


class ClassificationServer(ThreadingHTTPServer):
    """HTTP server owning an engine and its micro-batcher."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        engine: InferenceEngine,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        request_timeout: float = 60.0,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.engine = engine
        self.batcher = MicroBatcher(
            engine, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
        )
        self.request_timeout = request_timeout
        self.quiet = quiet
        self.started_at = time.monotonic()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def __enter__(self) -> "ClassificationServer":
        self.batcher.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
        self.batcher.stop()
        self.server_close()

    def serve(self) -> None:
        """Run until interrupted (the CLI entry point)."""
        with self:
            self.serve_forever()


def build_server(
    engine: InferenceEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
    max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
    request_timeout: float = 60.0,
    quiet: bool = True,
) -> ClassificationServer:
    """A configured (not yet started) server; ``port=0`` picks a free one."""
    return ClassificationServer(
        (host, port),
        engine,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        request_timeout=request_timeout,
        quiet=quiet,
    )


class _Handler(BaseHTTPRequestHandler):
    server: ClassificationServer

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._send(200, self._health_payload())
        elif self.path == "/metrics":
            self._send(200, self.server.engine.metrics.snapshot())
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path != "/classify":
            self._send(404, {"error": f"unknown path {self.path!r}"})
            return
        started = time.perf_counter()
        body, error = self._read_json()
        if error is not None:
            self._send(400, {"error": error})
            return
        text = body.get("asm")
        if not isinstance(text, str) or not text.strip():
            self._send(
                400,
                {"error": "request body must carry a non-empty 'asm' "
                          "field with the listing text"},
            )
            return
        name = body.get("name", "")
        if not isinstance(name, str):
            self._send(400, {"error": "'name' must be a string"})
            return
        try:
            result = self.server.batcher.submit(
                text, name=name, timeout=self.server.request_timeout
            )
        except ServeError as exc:
            # Queue timeout or a stopping batcher: the service (not the
            # sample) is the problem, so 503 rather than 422.
            self._send(503, {"error": str(exc)})
            return
        self.server.engine.metrics.observe_stage(
            "request", time.perf_counter() - started
        )
        status, payload = _result_payload(result)
        self._send(status, payload)

    # -- helpers -------------------------------------------------------

    def _health_payload(self) -> dict:
        info = self.server.engine.model_info
        return {
            "status": "ok",
            "model": info.describe() if info is not None else "in-process",
            "families": self.server.engine.family_names,
            "uptime_seconds": round(
                time.monotonic() - self.server.started_at, 3
            ),
            "batching": {
                "max_batch_size": self.server.batcher.max_batch_size,
                "max_wait_ms": self.server.batcher.max_wait_ms,
            },
        }

    def _read_json(self) -> Tuple[Optional[dict], Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            return None, "missing or invalid Content-Length"
        if length <= 0:
            return None, "empty request body"
        if length > MAX_BODY_BYTES:
            return None, f"request body exceeds {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"request body is not valid JSON: {exc}"
        if not isinstance(body, dict):
            return None, "request body must be a JSON object"
        return body, None

    def _send(self, status: int, payload: dict) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)


def _result_payload(result: ClassificationResult) -> Tuple[int, dict]:
    if result.failure is not None:
        return 422, {
            "name": result.name,
            "cached": result.cached,
            "error": {
                "kind": result.failure.kind.value,
                "detail": result.failure.detail,
            },
        }
    assert result.probabilities is not None
    return 200, {
        "name": result.name,
        "family": result.family,
        "label": result.label,
        "confidence": result.confidence,
        "cached": result.cached,
        "probabilities": [float(p) for p in result.probabilities],
    }
