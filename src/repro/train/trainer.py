"""Model training loop (Section V-B).

Reproduces the paper's protocol: Adam with L2 weight regularization,
mean negative log-likelihood loss (Equation 5), the
drop-LR-by-10x-after-two-consecutive-validation-increases rule, and
best-epoch selection by minimum validation loss.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.adv.attack import perturb_batch_scaled
from repro.exceptions import CompilationError, TrainingDivergedError, TrainingError
from repro.features.acfg import ACFG
from repro.nn.clip import clip_grad_norm
from repro.nn.layers import Module
from repro.nn.loss import nll_loss
from repro.nn.lr_scheduler import ReduceLROnPlateau
from repro.nn.optim import Adam
from repro.nn.tape import CompiledModel
from repro.train.batching import BatchCollator, iterate_minibatches
from repro.train.metrics import ClassificationReport, evaluate_predictions


def _collator_for(model: Module) -> Optional[BatchCollator]:
    """A memoizing collate layer when the model speaks GraphBatch.

    DGCNN variants advertise ``accepts_graph_batch``; anything else (the
    trainer stays generic over "batch-of-ACFGs" modules) keeps receiving
    plain ACFG lists.
    """
    if not getattr(model, "accepts_graph_batch", False):
        return None
    return BatchCollator(
        normalize_propagation=getattr(model, "normalize_propagation", True)
    )


@dataclasses.dataclass(frozen=True)
class AdversarialConfig:
    """Inner-attack settings for adversarial training (PGD-AT).

    Each training batch is additionally perturbed by a short PGD run in
    scaled feature space (:func:`repro.adv.attack.perturb_batch_scaled`)
    and the optimization step descends a mix of the clean and attacked
    losses: ``(1 - weight) * L(x) + weight * L(x_adv)``.

    The inner attack is the *relaxed* threat model — no integer/semantic
    projection — which upper-bounds the projected evaluation attack, so
    robustness trained here transfers to the realistic one.  ``epsilon``
    and ``step_size`` are in scaled (z-scored) units, matching
    :class:`repro.adv.attack.AttackConfig`.
    """

    steps: int = 3
    epsilon: float = 1.0
    step_size: Optional[float] = None
    #: Weight of the adversarial loss term in the clean/adversarial mix.
    weight: float = 0.5
    random_start: bool = True

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise TrainingError(
                f"adversarial steps must be >= 1, got {self.steps}"
            )
        if self.epsilon <= 0.0:
            raise TrainingError(
                f"adversarial epsilon must be > 0, got {self.epsilon}"
            )
        if not 0.0 < self.weight <= 1.0:
            raise TrainingError(
                f"adversarial weight must be in (0, 1], got {self.weight}"
            )

    @property
    def resolved_step_size(self) -> float:
        if self.step_size is not None:
            return self.step_size
        return 2.5 * self.epsilon / self.steps


@dataclasses.dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters (the training rows of Table II).

    ``grad_clip_norm`` is an optional global-L2 gradient cap; ``None``
    (the default, matching the paper) disables clipping.

    ``halt_on_divergence`` controls what happens when a training step
    produces a non-finite loss or gradient: ``True`` (default) raises
    :class:`~repro.exceptions.TrainingDivergedError` carrying the
    epoch/batch — so a sweep records the run as a structured failure
    instead of ranking a NaN score — while ``False`` stops the run
    early, marks the divergence on the :class:`TrainingHistory`, and
    returns the best parameters seen so far.

    ``compiled`` routes GraphBatch-capable models through the
    :mod:`repro.nn.tape` replay engine: each distinct batch signature is
    captured once (one eager pass) and replayed across epochs with
    preallocated buffers.  Replay is bit-exact with the eager float64
    path, so losses and final parameters are unchanged; a model the tape
    cannot compile falls back to eager for the rest of the run with a
    ``RuntimeWarning``.

    ``adversarial`` switches on adversarial training: every batch is
    perturbed by a short inner PGD attack and the step descends a
    clean/adversarial loss mix (see :class:`AdversarialConfig`).  The
    inner attack needs input gradients, which only the eager autograd
    path delivers, so adversarial runs ignore ``compiled`` and stay
    eager.  Inner-attack randomness is seeded per ``(seed, epoch,
    batch)`` via ``SeedSequence``, so a fixed seed reproduces the run
    bit for bit.
    """

    epochs: int = 100
    batch_size: int = 10
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    lr_decay_factor: float = 0.1
    lr_decay_patience: int = 2
    grad_clip_norm: Optional[float] = None
    halt_on_divergence: bool = True
    compiled: bool = True
    seed: int = 0
    adversarial: Optional[AdversarialConfig] = None

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise TrainingError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise TrainingError(f"batch_size must be >= 1, got {self.batch_size}")


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    train_losses: List[float] = dataclasses.field(default_factory=list)
    validation_losses: List[float] = dataclasses.field(default_factory=list)
    learning_rates: List[float] = dataclasses.field(default_factory=list)
    best_epoch: int = -1
    best_validation_loss: float = float("inf")
    train_seconds_per_instance: float = 0.0
    #: Set when ``halt_on_divergence=False`` stopped the run early on a
    #: non-finite loss/gradient; ``(-1, -1)`` means the run was clean.
    diverged_epoch: int = -1
    diverged_batch: int = -1

    @property
    def diverged(self) -> bool:
        return self.diverged_epoch >= 0

    @property
    def num_epochs(self) -> int:
        return len(self.train_losses)

    def to_dict(self) -> Dict:
        """JSON-ready form for the sweep checkpoint journal.

        Python's float repr round-trips exactly through JSON, so a
        journaled history reproduces the in-memory one bit for bit.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "TrainingHistory":
        return cls(**payload)


class Trainer:
    """Trains one DGCNN (or any batch-of-ACFGs model) on labelled ACFGs."""

    def __init__(self, config: TrainingConfig) -> None:
        self.config = config
        #: The memoizing collate layer of the most recent ``train`` run
        #: (``None`` before training, or for models that consume raw ACFG
        #: lists).  Post-training evaluation passes it back into
        #: :meth:`evaluate` so the fixed validation chunks collate once
        #: per fold instead of once per consumer.
        self.last_collator: Optional[BatchCollator] = None
        #: The tape cache of the most recent ``train`` run (``None``
        #: before training, with ``compiled=False``, or for models the
        #: tape cannot record).  Post-training evaluation passes it back
        #: into :meth:`evaluate` so validation chunks keep replaying.
        self.last_compiled: Optional[CompiledModel] = None

    def train(
        self,
        model: Module,
        train_acfgs: Sequence[ACFG],
        validation_acfgs: Optional[Sequence[ACFG]] = None,
        restore_best: bool = True,
    ) -> TrainingHistory:
        """Run the full training loop; returns the epoch history.

        When ``validation_acfgs`` is given, the LR schedule follows the
        validation loss and (with ``restore_best``) the model ends at the
        parameters of its best validation epoch — the paper's "minimum
        validation loss over the 100 epochs" criterion.
        """
        if not train_acfgs:
            raise TrainingError("cannot train on an empty dataset")
        if any(acfg.label is None for acfg in train_acfgs):
            raise TrainingError("all training ACFGs must be labelled")

        config = self.config
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        scheduler = ReduceLROnPlateau(
            optimizer,
            factor=config.lr_decay_factor,
            patience=config.lr_decay_patience,
        )
        history = TrainingHistory()
        best_state: Optional[Dict[str, np.ndarray]] = None
        instances_seen = 0
        train_time = 0.0
        # One collator for the whole run: shuffled train batches mostly
        # miss, but the fixed validation chunks hit on every epoch.
        collator = _collator_for(model)
        self.last_collator = collator
        # Tape replay needs the collated GraphBatch form; raw-ACFG
        # models stay eager.  Training always compiles in float64, so
        # replayed losses/gradients are bit-exact with the eager loop.
        # Adversarial training forces eager: the inner attack needs the
        # batch attributes as a requires_grad leaf, which tape replay
        # has no channel for.
        adversarial = config.adversarial
        compiled: Optional[CompiledModel] = None
        if config.compiled and collator is not None and adversarial is None:
            compiled = CompiledModel(model)
        self.last_compiled = compiled

        for epoch in range(config.epochs):
            model.train(True)
            epoch_losses: List[float] = []
            started = time.perf_counter()
            for batch_index, batch in enumerate(iterate_minibatches(
                train_acfgs, config.batch_size, rng=rng
            )):
                labels = np.array([acfg.label for acfg in batch], dtype=np.int64)
                attacked: Optional[List[ACFG]] = None
                if adversarial is not None:
                    attack_rng = (
                        np.random.default_rng(np.random.SeedSequence(
                            [config.seed, epoch, batch_index]
                        ))
                        if adversarial.random_start
                        else None
                    )
                    attacked, attack_loss = perturb_batch_scaled(
                        model,
                        batch,
                        labels,
                        epsilon=adversarial.epsilon,
                        steps=adversarial.steps,
                        step_size=adversarial.resolved_step_size,
                        rng=attack_rng,
                    )
                    if not np.isfinite(attack_loss):
                        self._diverged(
                            "inner-attack loss is not finite",
                            history, epoch, batch_index, float(attack_loss),
                        )
                        break
                # zero_grad runs *after* the inner attack: its backward
                # passes accumulated throwaway gradients into the model
                # parameters, which must not leak into the real step.
                optimizer.zero_grad()
                if compiled is not None:
                    try:
                        log_prob_data = compiled.forward(collator(batch))  # type: ignore[misc]
                    except CompilationError as exc:
                        warnings.warn(
                            f"compiled execution unavailable ({exc}); "
                            "training falls back to the eager path",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        compiled = None
                        self.last_compiled = None
                if compiled is not None:
                    # Mean NLL computed outside the tape; the picked-sum
                    # times 1/n matches nll_loss's arithmetic bit for bit.
                    rows = np.arange(len(labels))
                    loss_value = float(
                        -(log_prob_data[rows, labels].sum() * (1.0 / len(labels)))
                    )
                else:
                    # "is not None", not truthiness: an empty collator
                    # has __len__() == 0 and would read as False before
                    # its first entry is cached.
                    log_probs = model(
                        collator(batch) if collator is not None else batch
                    )
                    loss = nll_loss(log_probs, labels)
                    if attacked is not None:
                        assert adversarial is not None
                        # Attacked graphs are fresh objects every batch,
                        # so they bypass the id-keyed collator memo and
                        # collate directly inside the model.
                        adversarial_loss = nll_loss(model(attacked), labels)
                        loss = (
                            loss * (1.0 - adversarial.weight)
                            + adversarial_loss * adversarial.weight
                        )
                    loss_value = loss.item()
                if not np.isfinite(loss_value):
                    self._diverged(
                        "training loss is not finite",
                        history, epoch, batch_index, loss_value,
                    )
                    break
                if compiled is not None:
                    # d(mean NLL)/d(log_probs): -1/n at the label column.
                    seed = np.zeros_like(log_prob_data)
                    seed[rows, labels] = -(1.0 / len(labels))
                    compiled.backward(seed)
                else:
                    loss.backward()
                if not self._gradients_finite(model):
                    self._diverged(
                        "gradients are not finite",
                        history, epoch, batch_index, loss_value,
                    )
                    break
                if config.grad_clip_norm is not None:
                    clip_grad_norm(model.parameters(), config.grad_clip_norm)
                optimizer.step()
                epoch_losses.append(loss_value)
                instances_seen += len(batch)
            train_time += time.perf_counter() - started
            if history.diverged:
                # halt_on_divergence=False: stop here with the best
                # parameters seen so far; the partial epoch is dropped.
                break

            train_loss = float(np.mean(epoch_losses))
            history.train_losses.append(train_loss)
            history.learning_rates.append(optimizer.lr)

            if validation_acfgs:
                validation_loss = self.evaluate_loss(
                    model, validation_acfgs, collator=collator, compiled=compiled
                )
                history.validation_losses.append(validation_loss)
                monitored = validation_loss
            else:
                monitored = train_loss

            if monitored < history.best_validation_loss:
                history.best_validation_loss = monitored
                history.best_epoch = epoch
                if restore_best:
                    best_state = model.state_dict()

            scheduler.step(monitored)

        if restore_best and best_state is not None:
            model.load_state_dict(best_state)
        if instances_seen:
            history.train_seconds_per_instance = train_time / instances_seen
        return history

    # ------------------------------------------------------------------
    # divergence guard

    @staticmethod
    def _gradients_finite(model: Module) -> bool:
        return all(
            param.grad is None or np.isfinite(param.grad).all()
            for param in model.parameters()
        )

    def _diverged(
        self,
        reason: str,
        history: TrainingHistory,
        epoch: int,
        batch: int,
        loss_value: float,
    ) -> None:
        """Non-finite loss/gradient: raise or record, per the config.

        A diverged optimizer state is unrecoverable (NaN propagates into
        every parameter it touches), so there is no continue-training
        option — only "raise a structured error" (the sweep-friendly
        default) or "stop early and keep the best finite parameters".
        """
        if self.config.halt_on_divergence:
            raise TrainingDivergedError(
                reason, epoch=epoch, batch=batch, loss=loss_value
            )
        history.diverged_epoch = epoch
        history.diverged_batch = batch

    # ------------------------------------------------------------------
    # evaluation helpers

    @staticmethod
    def predict_proba(
        model: Module,
        acfgs: Sequence[ACFG],
        batch_size: int = 64,
        collator: Optional[BatchCollator] = None,
        compiled: Optional[CompiledModel] = None,
    ) -> np.ndarray:
        """Class probabilities over ``acfgs`` (gradient-free, eval mode).

        Chunks are collated into ``GraphBatch`` objects for models that
        accept them; pass a shared ``collator`` to reuse merged operators
        across repeated evaluations (the training loop does this for its
        per-epoch validation pass).  Pass a ``compiled`` tape cache to
        replay the fixed chunk signatures instead of rebuilding the op
        graph per call; float64 replay keeps the output bit-exact.
        """
        model.train(False)
        if collator is None:
            collator = _collator_for(model)
        if collator is None:
            compiled = None  # raw-ACFG models have no GraphBatch to replay
        chunks = []
        for start in range(0, len(acfgs), batch_size):
            batch = list(acfgs[start : start + batch_size])
            if compiled is not None:
                try:
                    log_prob_data = compiled.infer(collator(batch))
                    chunks.append(np.exp(log_prob_data))
                    continue
                except CompilationError:
                    compiled = None
            log_probs = model(
                collator(batch) if collator is not None else batch
            )
            chunks.append(np.exp(log_probs.data))
        return np.concatenate(chunks, axis=0)

    @classmethod
    def evaluate_loss(
        cls,
        model: Module,
        acfgs: Sequence[ACFG],
        collator: Optional[BatchCollator] = None,
        compiled: Optional[CompiledModel] = None,
    ) -> float:
        """Mean NLL of the true labels under the model."""
        labels = np.array([acfg.label for acfg in acfgs], dtype=np.int64)
        probabilities = cls.predict_proba(
            model, acfgs, collator=collator, compiled=compiled
        )
        eps = 1e-15
        picked = np.clip(probabilities[np.arange(len(labels)), labels], eps, 1.0)
        return float(-np.log(picked).mean())

    @classmethod
    def evaluate(
        cls,
        model: Module,
        acfgs: Sequence[ACFG],
        family_names: Optional[Sequence[str]] = None,
        collator: Optional[BatchCollator] = None,
        compiled: Optional[CompiledModel] = None,
    ) -> ClassificationReport:
        """Full precision/recall/F1/accuracy/log-loss report.

        Pass the trainer's ``last_collator`` (and ``last_compiled``) to
        reuse the validation chunks' memoized ``GraphBatch`` operators
        and compiled tapes instead of re-collating and re-recording.
        """
        labels = np.array([acfg.label for acfg in acfgs], dtype=np.int64)
        probabilities = cls.predict_proba(
            model, acfgs, collator=collator, compiled=compiled
        )
        return evaluate_predictions(
            labels,
            probabilities,
            num_classes=probabilities.shape[1],
            family_names=family_names,
        )
