"""Mini-batch iteration over ACFG lists."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import TrainingError
from repro.features.acfg import ACFG


def iterate_minibatches(
    acfgs: Sequence[ACFG],
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
) -> Iterator[List[ACFG]]:
    """Yield batches of ACFGs; the final partial batch is kept.

    The paper trains with stochastic gradient descent "in a batch mode"
    with batch sizes 10 or 40 (Table II).
    """
    if batch_size < 1:
        raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(len(acfgs))
    if shuffle:
        generator = rng if rng is not None else np.random.default_rng()
        generator.shuffle(indices)
    for start in range(0, len(indices), batch_size):
        chunk = indices[start : start + batch_size]
        yield [acfgs[i] for i in chunk]
