"""Mini-batch iteration and GraphBatch collation over ACFG lists.

Two layers: :func:`iterate_minibatches` picks *which* graphs form a
minibatch (the paper's batch-mode SGD, Table II), and
:class:`BatchCollator` turns that list into the
:class:`~repro.core.batched.GraphBatch` the models consume — memoizing
the merged operators across epochs, keyed by the identity of the graphs
in the minibatch.  Validation and prediction revisit the same chunks
every epoch, so their block-diagonal operators (and cached transposes)
are assembled exactly once per run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.features.acfg import ACFG

if TYPE_CHECKING:  # imported lazily at runtime: repro.core.magic imports
    from repro.core.batched import GraphBatch  # repro.train, not vice versa


def iterate_minibatches(
    acfgs: Sequence[ACFG],
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
) -> Iterator[List[ACFG]]:
    """Yield batches of ACFGs; the final partial batch is kept.

    The paper trains with stochastic gradient descent "in a batch mode"
    with batch sizes 10 or 40 (Table II).
    """
    if batch_size < 1:
        raise TrainingError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(len(acfgs))
    if shuffle:
        generator = rng if rng is not None else np.random.default_rng()
        generator.shuffle(indices)
    for start in range(0, len(indices), batch_size):
        chunk = indices[start : start + batch_size]
        yield [acfgs[i] for i in chunk]


def collate_graphs(
    acfgs: Sequence[ACFG], normalize_propagation: bool = True
) -> "GraphBatch":
    """Build a fresh :class:`GraphBatch` from a list of ACFGs."""
    from repro.core.batched import GraphBatch

    return GraphBatch(acfgs, normalize_propagation=normalize_propagation)


class BatchCollator:
    """Memoizing ACFG-list -> :class:`GraphBatch` collate layer.

    The cache key is the identity (``id``) of every graph in the
    minibatch, in order, so two calls with the same objects — e.g. the
    fixed validation chunks the trainer evaluates after every epoch —
    return the *same* ``GraphBatch``, skipping the block-diagonal
    assembly and transpose.  Cached entries hold strong references to
    their ACFG tuples, which keeps the ids stable for the lifetime of
    the entry.  The cache is bounded: shuffled training batches rarely
    repeat, so old entries are evicted FIFO instead of growing without
    limit.

    Parameters
    ----------
    normalize_propagation:
        Operator flavour for every batch this collator builds; must
        match the consuming model's setting.
    max_entries:
        Cache bound; ``0`` disables memoization entirely.
    """

    def __init__(
        self, normalize_propagation: bool = True, max_entries: int = 1024
    ) -> None:
        if max_entries < 0:
            raise TrainingError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.normalize_propagation = normalize_propagation
        self.max_entries = max_entries
        self._cache: "OrderedDict[Tuple[int, ...], Tuple[Tuple[ACFG, ...], GraphBatch]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __call__(self, acfgs: Sequence[ACFG]) -> GraphBatch:
        return self.collate(acfgs)

    def collate(self, acfgs: Sequence[ACFG]) -> GraphBatch:
        """Return the (possibly cached) ``GraphBatch`` for these graphs."""
        if self.max_entries == 0:
            self.misses += 1
            return collate_graphs(acfgs, self.normalize_propagation)
        key = tuple(id(acfg) for acfg in acfgs)
        entry = self._cache.get(key)
        if entry is not None:
            self.hits += 1
            return entry[1]
        self.misses += 1
        batch = collate_graphs(acfgs, self.normalize_propagation)
        self._cache[key] = (tuple(acfgs), batch)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return batch

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
