"""Exhaustive hyper-parameter search (Section V-B, Table II).

The paper sweeps 208 settings: 64 adaptive-pooling models, 96
sort-pooling + Conv1D models, and 48 sort-pooling + WeightedVertices
models, five-fold cross-validating each and ranking by minimum
fold-averaged validation loss.  :func:`table2_grid` reconstructs that
grid structurally (same axes, same applicability footnotes);
:class:`GridSearch` evaluates any grid (typically a reduced one — the
full grid on a CPU-only substrate is a multi-day run) with the same
selection criterion.

Forward-pass throughput dominates the 208-setting x 5-fold sweep, so
every evaluated setting trains on the batched sparse execution path
(``GraphBatch`` collation inside ``Trainer``); there is no per-graph
fallback to configure.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dgcnn import (
    POOLING_ADAPTIVE,
    POOLING_SORT_CONV1D,
    POOLING_SORT_WEIGHTED,
    ModelConfig,
)
from repro.core.sort_pooling import resolve_sort_pooling_k
from repro.datasets.loader import MalwareDataset
from repro.exceptions import ConfigurationError
from repro.train.cross_validation import (
    CrossValidationResult,
    cross_validate_config,
)
from repro.train.trainer import TrainingConfig


@dataclasses.dataclass(frozen=True)
class HyperparameterSetting:
    """One grid point: the tunable axes of Table II."""

    pooling: str
    pooling_ratio: float
    graph_conv_sizes: Tuple[int, ...]
    conv2d_channels: Optional[int] = None      # adaptive pooling only
    conv1d_channels: Optional[Tuple[int, int]] = None  # sort+conv1d only
    conv1d_kernel: Optional[int] = None        # sort+conv1d only
    dropout: float = 0.1
    batch_size: int = 10
    weight_decay: float = 1e-4

    def describe(self) -> str:
        parts = [
            f"pool={self.pooling}",
            f"ratio={self.pooling_ratio}",
            f"gconv={self.graph_conv_sizes}",
        ]
        if self.conv2d_channels is not None:
            parts.append(f"ch2d={self.conv2d_channels}")
        if self.conv1d_channels is not None:
            parts.append(f"ch1d={self.conv1d_channels}")
        if self.conv1d_kernel is not None:
            parts.append(f"k1d={self.conv1d_kernel}")
        parts.extend(
            [
                f"dropout={self.dropout}",
                f"batch={self.batch_size}",
                f"l2={self.weight_decay}",
            ]
        )
        return " ".join(parts)


#: Table II value ranges.
POOLING_RATIOS = (0.2, 0.64)
GRAPH_CONV_SIZES_SORT = ((32, 32, 32, 1), (32, 32, 32, 32), (128, 64, 32, 32))
GRAPH_CONV_SIZES_ADAPTIVE = ((32, 32, 32, 32), (128, 64, 32, 32))
CONV2D_CHANNELS = (16, 32)
CONV1D_CHANNEL_PAIRS = ((16, 32),)
CONV1D_KERNEL_SIZES = (5, 7)
DROPOUT_RATES = (0.1, 0.5)
BATCH_SIZES = (10, 40)
WEIGHT_DECAYS = (1e-4, 5e-4)


def table2_grid() -> List[HyperparameterSetting]:
    """The full Table II grid, honouring the applicability footnotes.

    The ``(32, 32, 32, 1)`` graph-convolution shape exists "only for sort
    pooling" (footnote 1); 2-D convolution channels apply only to
    adaptive pooling (footnote 3); the Conv1D channel pair and kernel
    size apply only to sort pooling with the Conv1D remaining layer
    (footnotes 4-5).
    """
    settings: List[HyperparameterSetting] = []
    shared = list(itertools.product(DROPOUT_RATES, BATCH_SIZES, WEIGHT_DECAYS))

    for ratio, sizes, channels in itertools.product(
        POOLING_RATIOS, GRAPH_CONV_SIZES_ADAPTIVE, CONV2D_CHANNELS
    ):
        for dropout, batch, decay in shared:
            settings.append(
                HyperparameterSetting(
                    pooling=POOLING_ADAPTIVE,
                    pooling_ratio=ratio,
                    graph_conv_sizes=sizes,
                    conv2d_channels=channels,
                    dropout=dropout,
                    batch_size=batch,
                    weight_decay=decay,
                )
            )

    for ratio, sizes, pair, kernel in itertools.product(
        POOLING_RATIOS, GRAPH_CONV_SIZES_SORT, CONV1D_CHANNEL_PAIRS, CONV1D_KERNEL_SIZES
    ):
        for dropout, batch, decay in shared:
            settings.append(
                HyperparameterSetting(
                    pooling=POOLING_SORT_CONV1D,
                    pooling_ratio=ratio,
                    graph_conv_sizes=sizes,
                    conv1d_channels=pair,
                    conv1d_kernel=kernel,
                    dropout=dropout,
                    batch_size=batch,
                    weight_decay=decay,
                )
            )

    for ratio, sizes in itertools.product(POOLING_RATIOS, GRAPH_CONV_SIZES_SORT):
        for dropout, batch, decay in shared:
            settings.append(
                HyperparameterSetting(
                    pooling=POOLING_SORT_WEIGHTED,
                    pooling_ratio=ratio,
                    graph_conv_sizes=sizes,
                    dropout=dropout,
                    batch_size=batch,
                    weight_decay=decay,
                )
            )
    return settings


def reduced_table2_grid(limit: Optional[int] = None) -> List[HyperparameterSetting]:
    """A structurally representative slice of Table II.

    One grid point per (pooling, pooling-ratio) cell — six settings, two
    per architecture — covering every pooling type and both ratios while
    staying sweepable on a laptop.  ``limit`` truncates further (smoke
    tests and benchmarks use 2-4 settings).
    """
    seen = set()
    settings: List[HyperparameterSetting] = []
    for setting in table2_grid():
        key = (setting.pooling, setting.pooling_ratio)
        if key in seen:
            continue
        seen.add(key)
        settings.append(setting)
    if limit is not None:
        settings = settings[:limit]
    return settings


def dataset_invariants(dataset: MalwareDataset) -> Tuple[int, List[int]]:
    """Validated ``(num_attributes, graph_sizes)``, hoisted once per sweep.

    Every grid point needs the attribute width (model input channels)
    and the graph-size distribution (SortPooling ``k`` resolution); both
    are dataset-level invariants, so sweeps compute them here once
    instead of per setting.  Raises :class:`ConfigurationError` — rather
    than an ``IndexError`` deep inside the first setting — when the
    dataset has no ACFGs (e.g. a corpus container emptied after
    construction).
    """
    if not dataset.acfgs:
        raise ConfigurationError(
            "dataset contains no ACFGs: cannot derive model dimensions "
            "for a hyper-parameter sweep over an empty corpus"
        )
    return dataset.acfgs[0].num_attributes, dataset.graph_sizes()


def amp_grid_from_ratio(ratio: float) -> Tuple[int, int]:
    """Map a Table II pooling ratio to an AMP output grid.

    The paper reuses one "Pooling Ratio" axis for both architectures.
    For SortPooling it selects ``k`` (a size quantile); for AMP we
    interpret it as scaling the output grid: ``ratio * 10`` rounded,
    floored at 2 — ratio 0.2 gives a 2x2 grid, ratio 0.64 a 6x6 grid
    (Figure 6 illustrates 3x3).  EXPERIMENTS.md records this
    interpretation.
    """
    side = max(2, int(round(ratio * 10)))
    return (side, side)


def setting_to_model_config(
    setting: HyperparameterSetting,
    num_attributes: int,
    num_classes: int,
    graph_sizes: Sequence[int],
    hidden_size: int = 128,
    seed: int = 0,
) -> ModelConfig:
    """Resolve a grid point into a concrete :class:`ModelConfig`.

    The SortPooling ``k`` is resolved from the training-set graph-size
    distribution; the AMP grid from :func:`amp_grid_from_ratio`.
    """
    kwargs: Dict = dict(
        num_attributes=num_attributes,
        num_classes=num_classes,
        pooling=setting.pooling,
        graph_conv_sizes=setting.graph_conv_sizes,
        dropout=setting.dropout,
        hidden_size=hidden_size,
        seed=seed,
    )
    if setting.pooling == POOLING_ADAPTIVE:
        kwargs["amp_grid"] = amp_grid_from_ratio(setting.pooling_ratio)
        kwargs["conv2d_channels"] = setting.conv2d_channels or 16
        kwargs["sort_k"] = 2  # unused by the adaptive architecture
    else:
        kwargs["sort_k"] = resolve_sort_pooling_k(
            list(graph_sizes), setting.pooling_ratio
        )
        if setting.pooling == POOLING_SORT_CONV1D:
            kwargs["conv1d_channels"] = setting.conv1d_channels or (16, 32)
            kwargs["conv1d_kernel"] = setting.conv1d_kernel or 5
    return ModelConfig(**kwargs)


@dataclasses.dataclass
class GridSearchEntry:
    setting: HyperparameterSetting
    result: CrossValidationResult

    @property
    def score(self) -> float:
        return self.result.score


@dataclasses.dataclass
class GridSearchResult:
    """Ranked sweep outcome.

    ``failures`` mirrors ``ExtractionReport.failures`` from the ACFG
    pipeline: settings whose folds kept raising after a retry are
    reported here (as :class:`~repro.train.sweep.SweepFailure` records)
    instead of aborting the sweep; they carry no entry.  The serial
    path never populates it — a raising fold propagates immediately.
    """

    entries: List[GridSearchEntry]
    failures: List = dataclasses.field(default_factory=list)

    @property
    def best(self) -> GridSearchEntry:
        return min(self.entries, key=lambda entry: entry.score)

    def ranking(self) -> List[GridSearchEntry]:
        return sorted(self.entries, key=lambda entry: entry.score)


class GridSearch:
    """Exhaustively evaluate settings with k-fold CV and rank by score."""

    def __init__(
        self,
        dataset: MalwareDataset,
        epochs: int = 100,
        n_splits: int = 5,
        learning_rate: float = 1e-3,
        seed: int = 0,
        hidden_size: int = 128,
        progress: Optional[Callable[[int, int, HyperparameterSetting, float], None]] = None,
    ) -> None:
        if len(dataset) < n_splits:
            raise ConfigurationError(
                f"dataset of {len(dataset)} samples cannot be {n_splits}-folded"
            )
        self.dataset = dataset
        self.epochs = epochs
        self.n_splits = n_splits
        self.learning_rate = learning_rate
        self.seed = seed
        self.hidden_size = hidden_size
        self.progress = progress

    def configs_for(
        self,
        setting: HyperparameterSetting,
        num_attributes: int,
        graph_sizes: Sequence[int],
    ) -> Tuple[ModelConfig, TrainingConfig]:
        """Resolve one grid point into its model and training configs.

        Shared by the serial loop below and the parallel
        :class:`~repro.train.sweep.SweepExecutor`, so both paths train
        from byte-identical configurations.
        """
        model_config = setting_to_model_config(
            setting,
            num_attributes=num_attributes,
            num_classes=self.dataset.num_classes,
            graph_sizes=graph_sizes,
            hidden_size=self.hidden_size,
            seed=self.seed,
        )
        training_config = TrainingConfig(
            epochs=self.epochs,
            batch_size=setting.batch_size,
            learning_rate=self.learning_rate,
            weight_decay=setting.weight_decay,
            seed=self.seed,
        )
        return model_config, training_config

    def run(
        self,
        settings: Iterable[HyperparameterSetting],
        n_jobs: int = 1,
        journal: Optional[str] = None,
        resume: bool = False,
    ) -> GridSearchResult:
        """Evaluate ``settings``; serial by default.

        ``n_jobs > 1`` fans the (setting x fold) product out over a
        process pool; a ``journal`` path checkpoints completed folds so
        ``resume=True`` skips them on a re-run.  Either option routes
        through :class:`~repro.train.sweep.SweepExecutor`, whose results
        are bit-for-bit identical to this serial loop's.
        """
        settings = list(settings)
        if n_jobs != 1 or journal is not None:
            from repro.train.sweep import SweepExecutor  # avoid import cycle

            executor = SweepExecutor(
                self, n_jobs=n_jobs, journal_path=journal, resume=resume
            )
            return executor.run(settings).grid_result

        entries: List[GridSearchEntry] = []
        num_attributes, graph_sizes = dataset_invariants(self.dataset)
        for position, setting in enumerate(settings):
            model_config, training_config = self.configs_for(
                setting, num_attributes, graph_sizes
            )
            result = cross_validate_config(
                model_config,
                self.dataset,
                training_config,
                n_splits=self.n_splits,
                seed=self.seed,
            )
            entries.append(GridSearchEntry(setting=setting, result=result))
            if self.progress is not None:
                self.progress(position + 1, len(settings), setting, result.score)
        return GridSearchResult(entries=entries)
