"""Post-hoc analysis of classification results.

Turns a confusion matrix into the artifacts an analyst reads first:
which family pairs get confused (the Ramnit/Obfuscator.ACY and
Rbot/Sdbot stories of Sections V-C/V-D), and which families are hardest
overall.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import TrainingError
from repro.train.metrics import ClassificationReport


@dataclasses.dataclass(frozen=True)
class ConfusionPair:
    """One directed confusion: ``count`` samples of ``true`` predicted as
    ``predicted``, which is ``rate`` of the true family's support."""

    true_family: str
    predicted_family: str
    count: int
    rate: float


def top_confusions(
    report: ClassificationReport, limit: int = 10
) -> List[ConfusionPair]:
    """The most frequent off-diagonal confusions, by count."""
    if report.family_names is None:
        raise TrainingError("report carries no family names")
    confusion = np.asarray(report.confusion)
    names = report.family_names
    pairs: List[ConfusionPair] = []
    row_sums = confusion.sum(axis=1)
    for i in range(confusion.shape[0]):
        for j in range(confusion.shape[1]):
            if i == j or confusion[i, j] == 0:
                continue
            pairs.append(
                ConfusionPair(
                    true_family=names[i],
                    predicted_family=names[j],
                    count=int(confusion[i, j]),
                    rate=float(confusion[i, j] / row_sums[i]) if row_sums[i] else 0.0,
                )
            )
    pairs.sort(key=lambda p: (-p.count, -p.rate))
    return pairs[:limit]


def hardest_families(
    report: ClassificationReport, limit: Optional[int] = None
) -> List[str]:
    """Family names ordered by ascending F1 (hardest first)."""
    if report.family_names is None:
        raise TrainingError("report carries no family names")
    ranked = sorted(
        zip(report.family_names, report.per_class), key=lambda kv: kv[1].f1
    )
    names = [name for name, _ in ranked]
    return names[:limit] if limit is not None else names


def format_confusions(pairs: Sequence[ConfusionPair]) -> str:
    """Human-readable rendering of :func:`top_confusions` output."""
    if not pairs:
        return "(no confusions)"
    width = max(len(p.true_family) for p in pairs)
    lines = []
    for pair in pairs:
        lines.append(
            f"{pair.true_family:<{width}} -> {pair.predicted_family:<{width}}"
            f"  {pair.count:4d} samples ({pair.rate:5.1%} of family)"
        )
    return "\n".join(lines)
