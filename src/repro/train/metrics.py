"""Classification metrics (Section V-B/C/D).

The paper reports per-family precision, recall and F1 (Tables III and V),
overall accuracy, and mean negative log-likelihood ("logarithmic loss",
Table IV).  All metrics are computed from scratch here — no sklearn in
this environment.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import TrainingError


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: int
) -> np.ndarray:
    """``C[i, j]``: samples of true class ``i`` predicted as class ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise TrainingError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


@dataclasses.dataclass
class ClassScores:
    """Precision/recall/F1 of one family."""

    precision: float
    recall: float
    f1: float
    support: int


@dataclasses.dataclass
class ClassificationReport:
    """Everything the paper's evaluation tables need."""

    per_class: List[ClassScores]
    accuracy: float
    log_loss: float
    confusion: np.ndarray
    family_names: Optional[List[str]] = None

    @property
    def macro_f1(self) -> float:
        return float(np.mean([c.f1 for c in self.per_class]))

    @property
    def weighted_f1(self) -> float:
        supports = np.array([c.support for c in self.per_class], dtype=np.float64)
        if supports.sum() == 0:
            return 0.0
        f1s = np.array([c.f1 for c in self.per_class])
        return float((f1s * supports).sum() / supports.sum())

    def scores_by_family(self) -> Dict[str, ClassScores]:
        if self.family_names is None:
            raise TrainingError("report carries no family names")
        return dict(zip(self.family_names, self.per_class))

    def to_dict(self) -> Dict:
        """JSON-ready form for the sweep checkpoint journal.

        Floats round-trip exactly through JSON (Python's repr), so a
        journaled report reproduces the in-memory one bit for bit.
        """
        return {
            "per_class": [dataclasses.asdict(c) for c in self.per_class],
            "accuracy": self.accuracy,
            "log_loss": self.log_loss,
            "confusion": self.confusion.tolist(),
            "family_names": (
                list(self.family_names) if self.family_names is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ClassificationReport":
        return cls(
            per_class=[ClassScores(**c) for c in payload["per_class"]],
            accuracy=payload["accuracy"],
            log_loss=payload["log_loss"],
            confusion=np.asarray(payload["confusion"], dtype=np.int64),
            family_names=payload["family_names"],
        )

    def format_table(self) -> str:
        """Render in the layout of Table III / Table V."""
        names = self.family_names or [
            f"class_{i}" for i in range(len(self.per_class))
        ]
        width = max(len(n) for n in names) + 2
        lines = [
            f"{'Family':<{width}}{'Precision':>10}{'Recall':>10}{'F1':>10}{'N':>7}"
        ]
        for name, scores in zip(names, self.per_class):
            lines.append(
                f"{name:<{width}}{scores.precision:>10.6f}"
                f"{scores.recall:>10.6f}{scores.f1:>10.6f}{scores.support:>7d}"
            )
        lines.append(
            f"{'(overall)':<{width}}accuracy={self.accuracy:.4f}  "
            f"log_loss={self.log_loss:.4f}  macro_f1={self.macro_f1:.4f}"
        )
        return "\n".join(lines)


def precision_recall_f1(
    confusion: np.ndarray,
) -> List[ClassScores]:
    """Per-class scores from a confusion matrix; 0/0 cases score 0."""
    num_classes = confusion.shape[0]
    scores = []
    for c in range(num_classes):
        tp = float(confusion[c, c])
        predicted = float(confusion[:, c].sum())
        actual = float(confusion[c, :].sum())
        precision = tp / predicted if predicted > 0 else 0.0
        recall = tp / actual if actual > 0 else 0.0
        denominator = precision + recall
        f1 = 2 * precision * recall / denominator if denominator > 0 else 0.0
        scores.append(
            ClassScores(
                precision=precision, recall=recall, f1=f1, support=int(actual)
            )
        )
    return scores


def log_loss(y_true: np.ndarray, probabilities: np.ndarray, eps: float = 1e-15) -> float:
    """Mean negative log-likelihood of the true labels."""
    y_true = np.asarray(y_true, dtype=np.int64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.ndim != 2 or probabilities.shape[0] != y_true.shape[0]:
        raise TrainingError(
            f"probabilities shape {probabilities.shape} does not match "
            f"{y_true.shape[0]} labels"
        )
    clipped = np.clip(probabilities[np.arange(len(y_true)), y_true], eps, 1.0)
    return float(-np.log(clipped).mean())


def evaluate_predictions(
    y_true: np.ndarray,
    probabilities: np.ndarray,
    num_classes: int,
    family_names: Optional[Sequence[str]] = None,
) -> ClassificationReport:
    """Build a full report from predicted class probabilities."""
    y_pred = np.asarray(probabilities).argmax(axis=1)
    confusion = confusion_matrix(y_true, y_pred, num_classes)
    per_class = precision_recall_f1(confusion)
    accuracy = float((y_pred == np.asarray(y_true)).mean()) if len(y_true) else 0.0
    return ClassificationReport(
        per_class=per_class,
        accuracy=accuracy,
        log_loss=log_loss(y_true, probabilities),
        confusion=confusion,
        family_names=list(family_names) if family_names is not None else None,
    )


def average_reports(reports: Sequence[ClassificationReport]) -> ClassificationReport:
    """Average per-class scores and overall metrics across CV folds.

    Mirrors the paper's protocol: "we also measure its precision, recall,
    and F1 score averaged over the five validation sets".  Confusion
    matrices are summed.
    """
    if not reports:
        raise TrainingError("cannot average zero reports")
    num_classes = len(reports[0].per_class)
    per_class = []
    for c in range(num_classes):
        per_class.append(
            ClassScores(
                precision=float(np.mean([r.per_class[c].precision for r in reports])),
                recall=float(np.mean([r.per_class[c].recall for r in reports])),
                f1=float(np.mean([r.per_class[c].f1 for r in reports])),
                support=int(sum(r.per_class[c].support for r in reports)),
            )
        )
    return ClassificationReport(
        per_class=per_class,
        accuracy=float(np.mean([r.accuracy for r in reports])),
        log_loss=float(np.mean([r.log_loss for r in reports])),
        confusion=np.sum([r.confusion for r in reports], axis=0),
        family_names=reports[0].family_names,
    )
