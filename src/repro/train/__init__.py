"""Training harness: loop, CV, grid search, metrics (Section V-B)."""

from repro.train.analysis import (
    ConfusionPair,
    format_confusions,
    hardest_families,
    top_confusions,
)
from repro.train.batching import (
    BatchCollator,
    collate_graphs,
    iterate_minibatches,
)
from repro.train.cross_validation import (
    CrossValidationResult,
    FoldResult,
    FoldSpec,
    assemble_cv_result,
    cross_validate,
    cross_validate_config,
    make_fold_specs,
    run_fold,
)
from repro.train.hyperparameter import (
    GridSearch,
    GridSearchEntry,
    GridSearchResult,
    HyperparameterSetting,
    amp_grid_from_ratio,
    dataset_invariants,
    reduced_table2_grid,
    setting_to_model_config,
    table2_grid,
)
from repro.train.sweep import (
    SweepExecutor,
    SweepFailure,
    SweepJournal,
    SweepReport,
    setting_key,
)
from repro.train.metrics import (
    ClassificationReport,
    ClassScores,
    average_reports,
    confusion_matrix,
    evaluate_predictions,
    log_loss,
    precision_recall_f1,
)
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "BatchCollator",
    "ClassScores",
    "ClassificationReport",
    "ConfusionPair",
    "format_confusions",
    "hardest_families",
    "top_confusions",
    "CrossValidationResult",
    "FoldResult",
    "FoldSpec",
    "GridSearch",
    "GridSearchEntry",
    "GridSearchResult",
    "HyperparameterSetting",
    "SweepExecutor",
    "SweepFailure",
    "SweepJournal",
    "SweepReport",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "amp_grid_from_ratio",
    "assemble_cv_result",
    "average_reports",
    "collate_graphs",
    "confusion_matrix",
    "cross_validate",
    "cross_validate_config",
    "dataset_invariants",
    "evaluate_predictions",
    "iterate_minibatches",
    "log_loss",
    "make_fold_specs",
    "precision_recall_f1",
    "reduced_table2_grid",
    "run_fold",
    "setting_key",
    "setting_to_model_config",
    "table2_grid",
]
