"""Training harness: loop, CV, grid search, metrics (Section V-B)."""

from repro.train.analysis import (
    ConfusionPair,
    format_confusions,
    hardest_families,
    top_confusions,
)
from repro.train.batching import (
    BatchCollator,
    collate_graphs,
    iterate_minibatches,
)
from repro.train.cross_validation import (
    CrossValidationResult,
    cross_validate,
)
from repro.train.hyperparameter import (
    GridSearch,
    GridSearchEntry,
    GridSearchResult,
    HyperparameterSetting,
    amp_grid_from_ratio,
    setting_to_model_config,
    table2_grid,
)
from repro.train.metrics import (
    ClassificationReport,
    ClassScores,
    average_reports,
    confusion_matrix,
    evaluate_predictions,
    log_loss,
    precision_recall_f1,
)
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory

__all__ = [
    "BatchCollator",
    "ClassScores",
    "ClassificationReport",
    "ConfusionPair",
    "format_confusions",
    "hardest_families",
    "top_confusions",
    "CrossValidationResult",
    "GridSearch",
    "GridSearchEntry",
    "GridSearchResult",
    "HyperparameterSetting",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "amp_grid_from_ratio",
    "average_reports",
    "collate_graphs",
    "confusion_matrix",
    "cross_validate",
    "evaluate_predictions",
    "iterate_minibatches",
    "log_loss",
    "precision_recall_f1",
    "setting_to_model_config",
    "table2_grid",
]
