"""Process-pool hyper-parameter sweep engine (Section V-B at scale).

The paper's model selection exhaustively cross-validates 208 settings
five-fold — 1040 independent training runs whose serial execution the
grid-search docstring calls "a multi-day run" on CPU.  Every (setting,
fold) pair is an embarrassingly parallel work unit, so this module fans
the product out over a ``ProcessPoolExecutor``:

* :class:`SweepExecutor` drives a :class:`~repro.train.hyperparameter.GridSearch`
  configuration over ``n_jobs`` worker processes, executing
  :func:`~repro.train.cross_validation.run_fold` on pickle-able
  :class:`~repro.train.cross_validation.FoldSpec` units and reassembling
  ``CrossValidationResult``/``GridSearchResult`` from the completed
  folds.  Seeds derive per fold exactly as in the serial loop, so the
  parallel sweep is bit-for-bit equivalent to ``GridSearch.run``.
* :class:`SweepJournal` checkpoints every completed fold to a JSON-lines
  file (setting content-hash + fold index + full history/report), so an
  interrupted multi-day sweep resumes without redoing finished work.
* A fold that raises is retried once and then recorded as a
  :class:`SweepFailure` — mirroring ``ExtractionReport.failures`` from
  the ACFG pipeline — without aborting the rest of the sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.datasets.loader import MalwareDataset
from repro.exceptions import ConfigurationError, TrainingDivergedError
from repro.fileio import JsonlAppendWriter
from repro.train.cross_validation import (
    FoldResult,
    FoldSpec,
    assemble_cv_result,
    make_fold_specs,
    run_fold,
)
from repro.train.hyperparameter import (
    GridSearch,
    GridSearchEntry,
    GridSearchResult,
    HyperparameterSetting,
    dataset_invariants,
)
from repro.train.metrics import ClassificationReport
from repro.train.trainer import TrainingHistory

#: Journal schema version; bumped on incompatible format changes.
JOURNAL_VERSION = 1


def setting_key(setting: HyperparameterSetting) -> str:
    """Stable content hash of one grid point.

    Keys journal entries, so a resumed sweep recognizes finished folds
    across processes and grid reorderings (the key depends only on the
    setting's values, not its position in the sweep).
    """
    canonical = json.dumps(dataclasses.asdict(setting), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass
class SweepFailure:
    """A (setting, fold) that kept raising after its retry."""

    setting_key: str
    setting: HyperparameterSetting
    fold_index: int
    error: str
    attempts: int


@dataclasses.dataclass
class SweepReport:
    """Everything a sweep run produced, beyond the ranking itself."""

    grid_result: GridSearchResult
    failures: List[SweepFailure]
    total_folds: int
    executed_folds: int
    resumed_folds: int
    wall_seconds: float


# ----------------------------------------------------------------------
# checkpoint journal


class SweepJournal:
    """Append-only JSON-lines checkpoint of completed folds.

    Line 1 is a header fingerprinting the run (fold count, epochs,
    optimizer settings, dataset shape); resuming against a journal whose
    fingerprint differs raises :class:`ConfigurationError` rather than
    silently mixing incompatible results.  Every subsequent line is one
    completed fold — setting content-hash, fold index, and the full
    training history and classification report, all of which round-trip
    through JSON with exact float equality.  A truncated final line
    (the sweep was killed mid-write) is ignored on load.
    """

    def __init__(self, path: str, fingerprint: Dict) -> None:
        self.path = path
        self.fingerprint = dict(fingerprint, version=JOURNAL_VERSION)
        self._writer: Optional[JsonlAppendWriter] = None

    # -- reading ------------------------------------------------------

    def load_completed(self) -> Dict[Tuple[str, int], FoldResult]:
        """Completed folds recorded by a previous run, keyed by
        ``(setting_key, fold_index)``; empty when the journal is absent."""
        if not os.path.exists(self.path):
            return {}
        completed: Dict[Tuple[str, int], FoldResult] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"sweep journal {self.path!r} has an unreadable header: {exc}"
            )
        if header.get("kind") != "header":
            raise ConfigurationError(
                f"sweep journal {self.path!r} does not start with a header line"
            )
        recorded = {k: v for k, v in header.items() if k != "kind"}
        if recorded != self.fingerprint:
            raise ConfigurationError(
                "sweep journal fingerprint mismatch — the journal at "
                f"{self.path!r} was written by a sweep configured as "
                f"{recorded}, but this run is {self.fingerprint}; refusing "
                "to resume across incompatible configurations"
            )
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a killed run
            if record.get("kind") != "fold":
                continue  # failure records are re-attempted, not resumed
            completed[(record["setting"], record["fold"])] = FoldResult(
                fold_index=record["fold"],
                history=TrainingHistory.from_dict(record["history"]),
                report=ClassificationReport.from_dict(record["report"]),
            )
        return completed

    # -- writing ------------------------------------------------------

    def open_for_append(self, fresh: bool) -> None:
        self._writer = JsonlAppendWriter.open(self.path, fresh=fresh)
        if self._writer.created:
            self._write_line(dict({"kind": "header"}, **self.fingerprint))

    def record_fold(self, key: str, result: FoldResult) -> None:
        self._write_line(
            {
                "kind": "fold",
                "setting": key,
                "fold": result.fold_index,
                "history": result.history.to_dict(),
                "report": result.report.to_dict(),
            }
        )

    def record_failure(self, key: str, fold_index: int, error: str,
                       attempts: int) -> None:
        self._write_line(
            {
                "kind": "failure",
                "setting": key,
                "fold": fold_index,
                "error": error,
                "attempts": attempts,
            }
        )

    def _write_line(self, record: Dict) -> None:
        if self._writer is not None:
            self._writer.write_record(record)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


# ----------------------------------------------------------------------
# worker side

_POOL_DATASET: Optional[MalwareDataset] = None


def _pool_init(dataset: MalwareDataset) -> None:
    """Ship the dataset once per worker (not once per fold)."""
    global _POOL_DATASET
    _POOL_DATASET = dataset


def _run_fold_task(
    payload: Tuple[int, str, FoldSpec],
) -> Tuple[int, str, int, Optional[FoldResult], Optional[str], bool]:
    """Execute one fold in a pool worker; never raises.

    Errors come back as strings so a failing fold costs one work unit,
    not the pool (an exception escaping a worker can poison the whole
    executor), and so the parent can apply its retry-then-report policy.
    The final element says whether a retry could plausibly help:
    training divergence is a deterministic property of (setting, fold,
    seed), so it goes straight to a :class:`SweepFailure` instead of
    burning a retry on the identical NaN.
    """
    setting_index, key, spec = payload
    try:
        return (setting_index, key, spec.fold_index,
                run_fold(spec, _POOL_DATASET), None, False)
    except TrainingDivergedError as exc:
        return (
            setting_index,
            key,
            spec.fold_index,
            None,
            f"{type(exc).__name__}: {exc}",
            False,
        )
    except Exception as exc:  # repro: allow[broad-except] — fault isolation boundary
        return (
            setting_index,
            key,
            spec.fold_index,
            None,
            f"{type(exc).__name__}: {exc}",
            True,
        )


# ----------------------------------------------------------------------
# executor


class SweepExecutor:
    """Fan a grid search's (setting x fold) product over a process pool.

    Built on a :class:`GridSearch` so model/training configurations are
    resolved by exactly the code the serial path uses; ``n_jobs=1`` runs
    the same work units in-process (useful with a journal but without
    multiprocessing).  Results are reassembled in fold order, making the
    outcome independent of completion order and bit-for-bit equal to
    ``GridSearch.run``.
    """

    def __init__(
        self,
        search: GridSearch,
        n_jobs: int = 1,
        journal_path: Optional[str] = None,
        resume: bool = False,
        max_retries: int = 1,
        fold_progress: Optional[Callable[[int, int, HyperparameterSetting, int], None]] = None,
    ) -> None:
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.search = search
        self.n_jobs = n_jobs
        self.journal_path = journal_path
        self.resume = resume
        self.max_retries = max_retries
        self.fold_progress = fold_progress

    # -- plumbing -----------------------------------------------------

    def _fingerprint(self) -> Dict:
        search = self.search
        return {
            "n_splits": search.n_splits,
            "epochs": search.epochs,
            "learning_rate": search.learning_rate,
            "hidden_size": search.hidden_size,
            "seed": search.seed,
            "dataset_size": len(search.dataset),
            "num_classes": search.dataset.num_classes,
        }

    def _plan(
        self, settings: List[HyperparameterSetting]
    ) -> List[Tuple[int, str, FoldSpec]]:
        """Every (setting, fold) work unit, in deterministic order."""
        search = self.search
        num_attributes, graph_sizes = dataset_invariants(search.dataset)
        tasks: List[Tuple[int, str, FoldSpec]] = []
        for setting_index, setting in enumerate(settings):
            model_config, training_config = search.configs_for(
                setting, num_attributes, graph_sizes
            )
            key = setting_key(setting)
            for spec in make_fold_specs(
                search.dataset,
                training_config,
                model_config=model_config,
                n_splits=search.n_splits,
                seed=search.seed,
            ):
                tasks.append((setting_index, key, spec))
        return tasks

    # -- execution ----------------------------------------------------

    def run(self, settings: Iterable[HyperparameterSetting]) -> SweepReport:
        settings = list(settings)
        started = time.perf_counter()
        tasks = self._plan(settings)

        journal: Optional[SweepJournal] = None
        completed: Dict[Tuple[str, int], FoldResult] = {}
        if self.journal_path is not None:
            journal = SweepJournal(self.journal_path, self._fingerprint())
            if self.resume:
                completed = journal.load_completed()
            journal.open_for_append(fresh=not self.resume)

        pending = [t for t in tasks if (t[1], t[2].fold_index) not in completed]
        resumed_folds = len(tasks) - len(pending)
        failures: List[SweepFailure] = []
        # (setting_index, fold_index) -> FoldResult for this run's work.
        executed: Dict[Tuple[int, int], FoldResult] = {}

        def on_done(setting_index: int, key: str, fold_index: int,
                    result: Optional[FoldResult], error: Optional[str],
                    retryable: bool,
                    attempts: Dict[Tuple[int, int], int]) -> bool:
            """Handle one worker return; True means resubmit (retry)."""
            unit = (setting_index, fold_index)
            if result is not None:
                executed[unit] = result
                if journal is not None:
                    journal.record_fold(key, result)
                if self.fold_progress is not None:
                    done = len(executed) + resumed_folds
                    self.fold_progress(
                        done, len(tasks), settings[setting_index], fold_index
                    )
                return False
            attempts[unit] = attempts.get(unit, 1)
            if retryable and attempts[unit] <= self.max_retries:
                attempts[unit] += 1
                return True
            failures.append(
                SweepFailure(
                    setting_key=key,
                    setting=settings[setting_index],
                    fold_index=fold_index,
                    error=error or "unknown error",
                    attempts=attempts[unit],
                )
            )
            if journal is not None:
                journal.record_failure(key, fold_index, error or "?", attempts[unit])
            return False

        try:
            if self.n_jobs == 1:
                self._run_serial(pending, on_done)
            else:
                self._run_pooled(pending, on_done)
        finally:
            if journal is not None:
                journal.close()

        report = self._assemble(
            settings, completed, executed, failures, resumed_folds
        )
        report.wall_seconds = time.perf_counter() - started
        return report

    def _run_serial(self, pending, on_done) -> None:
        attempts: Dict[Tuple[int, int], int] = {}
        queue = list(pending)
        while queue:
            task = queue.pop(0)
            outcome = _run_fold_task_local(task, self.search.dataset)
            if on_done(*outcome, attempts):
                queue.insert(0, task)

    def _run_pooled(self, pending, on_done) -> None:
        attempts: Dict[Tuple[int, int], int] = {}
        with ProcessPoolExecutor(
            max_workers=self.n_jobs,
            initializer=_pool_init,
            initargs=(self.search.dataset,),
        ) as pool:
            by_future = {
                pool.submit(_run_fold_task, task): task for task in pending
            }
            while by_future:
                done, _ = wait(by_future, return_when=FIRST_COMPLETED)
                for future in done:
                    task = by_future.pop(future)
                    outcome = future.result()  # worker never raises
                    if on_done(*outcome, attempts):
                        by_future[pool.submit(_run_fold_task, task)] = task

    # -- reassembly ---------------------------------------------------

    def _assemble(
        self,
        settings: List[HyperparameterSetting],
        completed: Dict[Tuple[str, int], FoldResult],
        executed: Dict[Tuple[int, int], FoldResult],
        failures: List[SweepFailure],
        resumed_folds: int,
    ) -> SweepReport:
        search = self.search
        entries: List[GridSearchEntry] = []
        failed_settings = {f.setting_key for f in failures}
        position = 0
        for setting_index, setting in enumerate(settings):
            key = setting_key(setting)
            if key in failed_settings:
                continue
            fold_results = [
                completed.get((key, fold), executed.get((setting_index, fold)))
                for fold in range(search.n_splits)
            ]
            result = assemble_cv_result([r for r in fold_results if r is not None])
            entries.append(GridSearchEntry(setting=setting, result=result))
            position += 1
            if search.progress is not None:
                search.progress(position, len(settings), setting, result.score)
        grid_result = GridSearchResult(entries=entries, failures=list(failures))
        return SweepReport(
            grid_result=grid_result,
            failures=list(failures),
            total_folds=len(settings) * search.n_splits,
            executed_folds=len(executed),
            resumed_folds=resumed_folds,
            wall_seconds=0.0,
        )


def _run_fold_task_local(
    task: Tuple[int, str, FoldSpec], dataset: MalwareDataset
) -> Tuple[int, str, int, Optional[FoldResult], Optional[str], bool]:
    """In-process twin of :func:`_run_fold_task` (the ``n_jobs=1`` path)."""
    setting_index, key, spec = task
    try:
        return (setting_index, key, spec.fold_index,
                run_fold(spec, dataset), None, False)
    except TrainingDivergedError as exc:  # deterministic — never retried
        return (
            setting_index,
            key,
            spec.fold_index,
            None,
            f"{type(exc).__name__}: {exc}",
            False,
        )
    except Exception as exc:  # repro: allow[broad-except] — same fault boundary as the pool
        return (
            setting_index,
            key,
            spec.fold_index,
            None,
            f"{type(exc).__name__}: {exc}",
            True,
        )
