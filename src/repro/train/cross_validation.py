"""Five-fold cross validation (Section V-B).

"In each fold of the cross validation, four subsets (80%) of the data are
used for training a brand new model initialized randomly, and the rest
subset ... is used to evaluate the resultant model."  The per-epoch
validation losses are averaged across folds and the minimum over epochs
is the model's *score*, which hyper-parameter search compares.

Every fold runs the batch-first execution path: ``Trainer`` collates
minibatches into block-diagonal :class:`~repro.core.batched.GraphBatch`
operators (memoized across epochs for the fixed validation chunks), so
the 5-fold x many-epoch forward cost that dominates grid search runs at
one sparse matmul per layer per batch.

The unit of work is one *fold*: :class:`FoldSpec` captures everything a
fold needs (train/val indices, per-fold seed derivation, scaler policy,
and — for config-driven sweeps — the model configuration) in a
pickle-able value, :func:`run_fold` executes it, and
:func:`assemble_cv_result` folds the results back into a
:class:`CrossValidationResult`.  The serial :func:`cross_validate` loop
and the process-pool :class:`~repro.train.sweep.SweepExecutor` are both
thin drivers over these three pieces, which is what makes the parallel
sweep bit-for-bit equivalent to the serial one.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

import numpy as np

from repro.datasets.loader import MalwareDataset
from repro.exceptions import TrainingError
from repro.features.scaling import AttributeScaler
from repro.nn.layers import Module
from repro.train.metrics import ClassificationReport, average_reports
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory

if TYPE_CHECKING:  # runtime import stays inside run_fold: repro.core
    from repro.core.dgcnn import ModelConfig  # imports repro.train

#: A factory producing a freshly initialized model for each fold.
ModelFactory = Callable[[int], Module]

#: Per-fold model-seed stride: fold ``i`` trains a model seeded
#: ``config.seed + MODEL_SEED_STRIDE * i`` (the grid-search convention).
MODEL_SEED_STRIDE = 1000


@dataclasses.dataclass(frozen=True)
class FoldSpec:
    """One fold of one CV run, as a pickle-able work unit.

    ``training_config`` holds the *base* (fold-0) configuration; the
    per-fold seed derivation (``seed + fold_index`` for the trainer,
    ``seed + MODEL_SEED_STRIDE * fold_index`` for the model) happens
    inside :func:`run_fold`, so a spec shipped to a worker process
    reproduces exactly what the serial loop would have done in place.

    ``model_config`` drives the config-based path used by grid search;
    callers with an arbitrary (non-pickle-able) model factory leave it
    ``None`` and pass the factory to :func:`run_fold` directly — that
    path cannot cross a process boundary.
    """

    fold_index: int
    train_indices: Tuple[int, ...]
    val_indices: Tuple[int, ...]
    training_config: TrainingConfig
    model_config: Optional["ModelConfig"] = None
    scale_attributes: bool = True


@dataclasses.dataclass
class FoldResult:
    """What one fold contributes to a :class:`CrossValidationResult`."""

    fold_index: int
    history: TrainingHistory
    report: ClassificationReport


@dataclasses.dataclass
class CrossValidationResult:
    """Everything the paper's evaluation extracts from a CV run."""

    fold_histories: List[TrainingHistory]
    fold_reports: List[ClassificationReport]
    averaged_report: ClassificationReport
    epoch_validation_losses: np.ndarray

    @property
    def score(self) -> float:
        """Minimum fold-averaged validation loss (the Table II criterion)."""
        return float(self.epoch_validation_losses.min())

    @property
    def accuracy(self) -> float:
        return self.averaged_report.accuracy

    @property
    def log_loss(self) -> float:
        return self.averaged_report.log_loss


def make_fold_specs(
    dataset: MalwareDataset,
    training_config: TrainingConfig,
    model_config: Optional["ModelConfig"] = None,
    n_splits: int = 5,
    scale_attributes: bool = True,
    seed: int = 0,
) -> List[FoldSpec]:
    """Materialize the stratified k-fold split into fold work units."""
    return [
        FoldSpec(
            fold_index=fold_index,
            train_indices=tuple(train_idx),
            val_indices=tuple(val_idx),
            training_config=training_config,
            model_config=model_config,
            scale_attributes=scale_attributes,
        )
        for fold_index, (train_idx, val_idx) in enumerate(
            dataset.stratified_kfold(n_splits=n_splits, seed=seed)
        )
    ]


def run_fold(
    spec: FoldSpec,
    dataset: MalwareDataset,
    model_factory: Optional[ModelFactory] = None,
) -> FoldResult:
    """Train and evaluate one fold; importable, so pool workers can run it.

    The attribute scaler is fitted on the fold's *training* split only,
    so "the training process never sees the testing samples".
    """
    if model_factory is None:
        if spec.model_config is None:
            raise TrainingError(
                "FoldSpec carries no model_config and no model_factory "
                "was supplied"
            )

        def model_factory(fold: int, base=spec.model_config) -> Module:
            from repro.core.dgcnn import build_model

            return build_model(
                dataclasses.replace(
                    base, seed=base.seed + MODEL_SEED_STRIDE * fold
                )
            )

    train_acfgs = [dataset.acfgs[i] for i in spec.train_indices]
    val_acfgs = [dataset.acfgs[i] for i in spec.val_indices]
    if spec.scale_attributes:
        scaler = AttributeScaler()
        train_acfgs = scaler.fit_transform(train_acfgs)
        val_acfgs = scaler.transform(val_acfgs)

    model = model_factory(spec.fold_index)
    trainer = Trainer(
        dataclasses.replace(
            spec.training_config,
            seed=spec.training_config.seed + spec.fold_index,
        )
    )
    history = trainer.train(model, train_acfgs, val_acfgs)
    # Reuse the training run's collator: the fixed validation chunks it
    # memoized for the per-epoch validation pass serve this final
    # evaluation too, instead of being re-collated from scratch.
    report = Trainer.evaluate(
        model,
        val_acfgs,
        family_names=dataset.family_names,
        collator=trainer.last_collator,
    )
    return FoldResult(fold_index=spec.fold_index, history=history, report=report)


def assemble_cv_result(fold_results: List[FoldResult]) -> CrossValidationResult:
    """Fold-ordered reassembly of per-fold results into the CV summary.

    Accepts results in any completion order (the parallel sweep finishes
    folds out of order) and sorts by fold index, so the assembled result
    is identical to the serial loop's.
    """
    if not fold_results:
        raise TrainingError("cross validation produced no folds")
    ordered = sorted(fold_results, key=lambda r: r.fold_index)
    histories = [r.history for r in ordered]
    reports = [r.report for r in ordered]
    lengths = {h.num_epochs for h in histories}
    if len(lengths) != 1:
        raise TrainingError(f"folds trained for differing epoch counts: {lengths}")
    per_epoch = np.mean(
        [history.validation_losses for history in histories], axis=0
    )
    return CrossValidationResult(
        fold_histories=histories,
        fold_reports=reports,
        averaged_report=average_reports(reports),
        epoch_validation_losses=per_epoch,
    )


def cross_validate(
    model_factory: ModelFactory,
    dataset: MalwareDataset,
    training_config: TrainingConfig,
    n_splits: int = 5,
    scale_attributes: bool = True,
    seed: int = 0,
) -> CrossValidationResult:
    """Run stratified k-fold CV; returns per-fold and averaged results.

    Serial driver over :func:`run_fold`; accepts any model factory,
    including closures that cannot be pickled.  Config-driven sweeps use
    :func:`cross_validate_config` (or the parallel ``SweepExecutor``)
    instead.
    """
    specs = make_fold_specs(
        dataset,
        training_config,
        n_splits=n_splits,
        scale_attributes=scale_attributes,
        seed=seed,
    )
    return assemble_cv_result(
        [run_fold(spec, dataset, model_factory=model_factory) for spec in specs]
    )


def cross_validate_config(
    model_config: "ModelConfig",
    dataset: MalwareDataset,
    training_config: TrainingConfig,
    n_splits: int = 5,
    scale_attributes: bool = True,
    seed: int = 0,
) -> CrossValidationResult:
    """Config-driven CV: fold ``i`` trains a model built from
    ``model_config`` reseeded by :data:`MODEL_SEED_STRIDE`.

    This is the fully pickle-able variant of :func:`cross_validate` —
    the same fold specs can be executed in-process or shipped to pool
    workers with identical results.
    """
    specs = make_fold_specs(
        dataset,
        training_config,
        model_config=model_config,
        n_splits=n_splits,
        scale_attributes=scale_attributes,
        seed=seed,
    )
    return assemble_cv_result([run_fold(spec, dataset) for spec in specs])
