"""Five-fold cross validation (Section V-B).

"In each fold of the cross validation, four subsets (80%) of the data are
used for training a brand new model initialized randomly, and the rest
subset ... is used to evaluate the resultant model."  The per-epoch
validation losses are averaged across folds and the minimum over epochs
is the model's *score*, which hyper-parameter search compares.

Every fold runs the batch-first execution path: ``Trainer`` collates
minibatches into block-diagonal :class:`~repro.core.batched.GraphBatch`
operators (memoized across epochs for the fixed validation chunks), so
the 5-fold x many-epoch forward cost that dominates grid search runs at
one sparse matmul per layer per batch.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List

import numpy as np

from repro.datasets.loader import MalwareDataset
from repro.exceptions import TrainingError
from repro.features.scaling import AttributeScaler
from repro.nn.layers import Module
from repro.train.metrics import ClassificationReport, average_reports
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory

#: A factory producing a freshly initialized model for each fold.
ModelFactory = Callable[[int], Module]


@dataclasses.dataclass
class CrossValidationResult:
    """Everything the paper's evaluation extracts from a CV run."""

    fold_histories: List[TrainingHistory]
    fold_reports: List[ClassificationReport]
    averaged_report: ClassificationReport
    epoch_validation_losses: np.ndarray

    @property
    def score(self) -> float:
        """Minimum fold-averaged validation loss (the Table II criterion)."""
        return float(self.epoch_validation_losses.min())

    @property
    def accuracy(self) -> float:
        return self.averaged_report.accuracy

    @property
    def log_loss(self) -> float:
        return self.averaged_report.log_loss


def cross_validate(
    model_factory: ModelFactory,
    dataset: MalwareDataset,
    training_config: TrainingConfig,
    n_splits: int = 5,
    scale_attributes: bool = True,
    seed: int = 0,
) -> CrossValidationResult:
    """Run stratified k-fold CV; returns per-fold and averaged results.

    The attribute scaler is fitted on each fold's *training* split only,
    so "the training process never sees the testing samples".
    """
    histories: List[TrainingHistory] = []
    reports: List[ClassificationReport] = []

    for fold_index, (train_idx, val_idx) in enumerate(
        dataset.stratified_kfold(n_splits=n_splits, seed=seed)
    ):
        train_acfgs = [dataset.acfgs[i] for i in train_idx]
        val_acfgs = [dataset.acfgs[i] for i in val_idx]
        if scale_attributes:
            scaler = AttributeScaler()
            train_acfgs = scaler.fit_transform(train_acfgs)
            val_acfgs = scaler.transform(val_acfgs)

        model = model_factory(fold_index)
        trainer = Trainer(
            dataclasses.replace(training_config, seed=training_config.seed + fold_index)
        )
        history = trainer.train(model, train_acfgs, val_acfgs)
        histories.append(history)
        reports.append(
            Trainer.evaluate(model, val_acfgs, family_names=dataset.family_names)
        )

    if not histories:
        raise TrainingError("cross validation produced no folds")
    lengths = {h.num_epochs for h in histories}
    if len(lengths) != 1:
        raise TrainingError(f"folds trained for differing epoch counts: {lengths}")
    per_epoch = np.mean(
        [history.validation_losses for history in histories], axis=0
    )
    return CrossValidationResult(
        fold_histories=histories,
        fold_reports=reports,
        averaged_report=average_reports(reports),
        epoch_validation_losses=per_epoch,
    )
