"""Function call-graph substrate.

Recovers function boundaries and the call graph from flat listings, the
structure behind Table IV's function-call-graph comparator [11] and the
related-work line of CFG/FCG-based malware classification.
"""

from repro.callgraph.callgraph import CallGraph
from repro.callgraph.classifier import CallGraphForestEnsemble
from repro.callgraph.extraction import call_graph_from_text, extract_call_graph
from repro.callgraph.features import (
    call_graph_feature_size,
    call_graph_to_vector,
    function_descriptor,
)
from repro.callgraph.function import Function

__all__ = [
    "CallGraph",
    "CallGraphForestEnsemble",
    "Function",
    "call_graph_feature_size",
    "call_graph_from_text",
    "call_graph_to_vector",
    "extract_call_graph",
    "function_descriptor",
]
