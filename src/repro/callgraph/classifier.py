"""Call-graph random-forest ensemble (Table IV row [11]).

The comparator "Ensemble Multiple Random Forest Classifiers" trains
several random forests over hashed call-graph features (with different
hash widths, so each forest sees a different projection) and averages
their probabilities — an ensemble of ensembles, as in the original.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.baselines.random_forest import RandomForestClassifier
from repro.callgraph.callgraph import CallGraph
from repro.callgraph.features import call_graph_to_vector
from repro.exceptions import TrainingError


class CallGraphForestEnsemble:
    """Average of random forests over differently-hashed call-graph views."""

    def __init__(
        self,
        num_classes: int,
        bucket_widths: Sequence[int] = (16, 32, 64),
        n_estimators: int = 30,
        max_depth: int = 12,
        seed: int = 0,
    ) -> None:
        if not bucket_widths:
            raise TrainingError("need at least one hash width")
        self.num_classes = num_classes
        self.bucket_widths = tuple(bucket_widths)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self._forests: List[RandomForestClassifier] = []

    def _vectorize(self, graphs: Sequence[CallGraph], width: int) -> np.ndarray:
        return np.stack([call_graph_to_vector(g, num_buckets=width) for g in graphs])

    def fit(
        self, graphs: Sequence[CallGraph], labels: Sequence[int]
    ) -> "CallGraphForestEnsemble":
        if len(graphs) != len(labels):
            raise TrainingError(
                f"{len(graphs)} graphs vs {len(labels)} labels"
            )
        labels = np.asarray(labels, dtype=np.int64)
        self._forests = []
        for index, width in enumerate(self.bucket_widths):
            forest = RandomForestClassifier(
                num_classes=self.num_classes,
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                seed=self.seed + index,
            )
            forest.fit(self._vectorize(graphs, width), labels)
            self._forests.append(forest)
        return self

    def predict_proba(self, graphs: Sequence[CallGraph]) -> np.ndarray:
        if not self._forests:
            raise TrainingError("ensemble used before fit()")
        stacked = np.stack([
            forest.predict_proba(self._vectorize(graphs, width))
            for forest, width in zip(self._forests, self.bucket_widths)
        ])
        return stacked.mean(axis=0)

    def predict(self, graphs: Sequence[CallGraph]) -> np.ndarray:
        return self.predict_proba(graphs).argmax(axis=1)
