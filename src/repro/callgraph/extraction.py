"""Call-graph extraction from a flat disassembled program.

Function boundary recovery on stripped binaries follows IDA's layout
heuristic: function entries are (a) the program's first instruction and
(b) every statically resolved ``call`` target; a function's body spans
from its entry to the next entry in address order.  Each span gets a
local (intra-procedural) CFG built with the same two-pass algorithm as
the whole-program CFG, with call edges recorded as call-graph edges
instead of control-flow edges.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.asm.instruction import Instruction
from repro.asm.isa import ControlFlowKind
from repro.asm.parser import AsmParser
from repro.asm.program import Program
from repro.callgraph.callgraph import CallGraph
from repro.callgraph.function import Function
from repro.cfg.builder import CfgBuilder
from repro.exceptions import CfgConstructionError


def extract_call_graph(
    program: Program,
    resolve_target: Callable[[str], Optional[int]],
    name: str = "",
) -> CallGraph:
    """Recover the function call graph of ``program``."""
    if len(program) == 0:
        raise CfgConstructionError("cannot extract a call graph from an empty program")

    # Pass 1: find entries = program start + all resolved call targets.
    entries = set()
    first = program.first()
    entries.add(first.address)
    for inst in program:
        if inst.flow_kind is ControlFlowKind.CALL and inst.operands:
            target = resolve_target(inst.operands[0])
            if target is not None and target in program:
                entries.add(target)

    ordered_entries = sorted(entries)

    # Pass 2: partition instructions into [entry, next_entry) spans.
    graph = CallGraph(name=name)
    spans: List[List[Instruction]] = [[] for _ in ordered_entries]
    boundaries = ordered_entries + [float("inf")]
    span_index = 0
    for inst in program:
        while inst.address >= boundaries[span_index + 1]:
            span_index += 1
        if inst.address >= boundaries[span_index]:
            spans[span_index].append(inst)

    entry_set = set(ordered_entries)
    for entry, instructions in zip(ordered_entries, spans):
        function = Function(
            entry_address=entry,
            name=f"sub_{entry:X}",
            instructions=instructions,
        )
        graph.add_function(function)

    # Pass 3: per-function local CFGs and call edges.
    for function in graph.functions():
        sub_program = Program()
        for inst in function.instructions:
            sub_program.add(_reset_tags(inst))
        if len(sub_program) > 0:
            builder = CfgBuilder(
                resolve_target=resolve_target, follow_calls=False
            )
            function.local_cfg = builder.build(
                sub_program, name=function.name
            )
        for inst in function.instructions:
            if inst.flow_kind is ControlFlowKind.CALL and inst.operands:
                target = resolve_target(inst.operands[0])
                if target is not None and target in entry_set:
                    if target not in function.callees:
                        function.callees.append(target)
                    graph.add_call(function.entry_address, target)
    return graph


def _reset_tags(inst: Instruction) -> Instruction:
    """Fresh copy with clean CFG tags (the instruction may have been
    tagged by an earlier whole-program pass)."""
    return Instruction(
        address=inst.address,
        mnemonic=inst.mnemonic,
        operands=list(inst.operands),
        size=inst.size,
    )


def call_graph_from_text(text: str, name: str = "") -> CallGraph:
    """Parse listing text and extract its call graph in one call."""
    parser = AsmParser()
    program = parser.parse(text)
    return extract_call_graph(program, parser.resolve_target, name=name)
