"""Call-graph feature vectors (the Table IV row [11] method family).

Hassen & Chan classify malware by (1) extracting per-function features,
(2) *feature-hashing* them into a fixed-size vector so programs with
different function counts become comparable, and (3) training forest
ensembles on the hashed vectors.  We reproduce that pipeline:

* per-function descriptor: local-CFG shape + instruction-mix counts,
* minhash-free feature hashing: each function's quantized descriptor is
  hashed into one of ``num_buckets`` bins (signed hashing kernel),
* global channels: function/call counts and degree statistics.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

from repro.asm.isa import InstructionCategory
from repro.callgraph.callgraph import CallGraph
from repro.callgraph.function import Function

#: Instruction categories counted in the per-function descriptor.
_CATEGORIES = (
    InstructionCategory.TRANSFER,
    InstructionCategory.CALL,
    InstructionCategory.ARITHMETIC,
    InstructionCategory.COMPARE,
    InstructionCategory.MOV,
    InstructionCategory.TERMINATION,
)


def function_descriptor(function: Function, graph: CallGraph) -> np.ndarray:
    """Per-function numeric descriptor (shape ``(10,)``)."""
    category_counts = {category: 0 for category in _CATEGORIES}
    for inst in function.instructions:
        if inst.category in category_counts:
            category_counts[inst.category] += 1
    return np.array(
        [
            float(function.num_instructions),
            float(function.num_blocks),
            float(function.num_local_edges),
            float(graph.out_degree(function)),
            *(float(category_counts[c]) for c in _CATEGORIES),
        ]
    )


def _hash_bucket(descriptor: np.ndarray, num_buckets: int) -> int:
    """Stable bucket for a quantized descriptor (log-scale bins)."""
    quantized = np.floor(np.log2(descriptor + 1.0)).astype(np.int64)
    digest = hashlib.blake2b(
        quantized.tobytes(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") % num_buckets


def call_graph_to_vector(graph: CallGraph, num_buckets: int = 32) -> np.ndarray:
    """Fixed-size vector for one call graph.

    Layout: ``num_buckets`` hashed-function-histogram channels followed
    by 8 global structure channels.
    """
    histogram = np.zeros(num_buckets)
    descriptors: List[np.ndarray] = []
    for function in graph.functions():
        descriptor = function_descriptor(function, graph)
        descriptors.append(descriptor)
        histogram[_hash_bucket(descriptor, num_buckets)] += 1.0

    out_degrees = np.array(
        [graph.out_degree(f) for f in graph.functions()], dtype=np.float64
    )
    if out_degrees.size == 0:
        out_degrees = np.zeros(1)
    sizes = np.array(
        [f.num_instructions for f in graph.functions()], dtype=np.float64
    )
    if sizes.size == 0:
        sizes = np.zeros(1)
    global_channels = np.array(
        [
            float(graph.num_functions),
            float(graph.num_calls),
            float(out_degrees.mean()),
            float(out_degrees.max()),
            float(sizes.mean()),
            float(sizes.max()),
            float(np.log1p(graph.num_functions)),
            float(np.log1p(sizes.sum())),
        ]
    )
    return np.concatenate([histogram, global_channels])


def call_graph_feature_size(num_buckets: int = 32) -> int:
    """Length of :func:`call_graph_to_vector` output."""
    return num_buckets + 8
