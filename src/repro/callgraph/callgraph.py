"""Function call graph: directed graph of functions linked by calls.

The comparator [11] of Table IV (Hassen & Chan, CODASPY'17) classifies
malware from *function call graphs* rather than basic-block CFGs.  This
module provides that substrate over our own disassembly stack.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.callgraph.function import Function
from repro.exceptions import CfgConstructionError


class CallGraph:
    """Directed graph of :class:`Function` nodes."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._functions: Dict[int, Function] = {}
        self._edges: Dict[int, Set[int]] = {}

    def add_function(self, function: Function) -> Function:
        if function.entry_address in self._functions:
            raise CfgConstructionError(
                f"duplicate function at {function.entry_address:#x}"
            )
        self._functions[function.entry_address] = function
        self._edges.setdefault(function.entry_address, set())
        return function

    def add_call(self, caller_entry: int, callee_entry: int) -> None:
        """Add the edge ``caller -> callee``; both must exist."""
        if caller_entry not in self._functions:
            raise CfgConstructionError(f"unknown caller {caller_entry:#x}")
        if callee_entry not in self._functions:
            raise CfgConstructionError(f"unknown callee {callee_entry:#x}")
        self._edges[caller_entry].add(callee_entry)

    # ------------------------------------------------------------------

    @property
    def num_functions(self) -> int:
        return len(self._functions)

    @property
    def num_calls(self) -> int:
        return sum(len(callees) for callees in self._edges.values())

    def __len__(self) -> int:
        return self.num_functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions())

    def functions(self) -> List[Function]:
        return [self._functions[a] for a in sorted(self._functions)]

    def get_function(self, entry_address: int) -> Optional[Function]:
        return self._functions.get(entry_address)

    def callees(self, function: Function) -> List[Function]:
        return [
            self._functions[a]
            for a in sorted(self._edges.get(function.entry_address, ()))
        ]

    def edges(self) -> List[Tuple[int, int]]:
        result = []
        for caller in sorted(self._edges):
            for callee in sorted(self._edges[caller]):
                result.append((caller, callee))
        return result

    def out_degree(self, function: Function) -> int:
        return len(self._edges.get(function.entry_address, ()))

    def in_degree(self, function: Function) -> int:
        entry = function.entry_address
        return sum(1 for callees in self._edges.values() if entry in callees)

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` keyed by entry address."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for function in self.functions():
            graph.add_node(
                function.entry_address,
                name=function.name,
                num_instructions=function.num_instructions,
                num_blocks=function.num_blocks,
            )
        graph.add_edges_from(self.edges())
        return graph

    def __repr__(self) -> str:
        return (
            f"CallGraph(name={self.name!r}, functions={self.num_functions}, "
            f"calls={self.num_calls})"
        )
