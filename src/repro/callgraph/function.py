"""Function model for call-graph extraction.

A *function* here is a contiguous span of a disassembled program rooted
at an entry address (the program start, or any statically resolved call
target), carrying its own local control flow graph.  This mirrors how
IDA partitions a flat listing when symbol tables are stripped — exactly
the situation for both of the paper's corpora.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.asm.instruction import Instruction
from repro.cfg.graph import ControlFlowGraph


@dataclasses.dataclass
class Function:
    """One function: entry, instruction span, local CFG, and callees."""

    entry_address: int
    name: str
    instructions: List[Instruction]
    local_cfg: Optional[ControlFlowGraph] = None
    callees: List[int] = dataclasses.field(default_factory=list)

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    @property
    def end_address(self) -> int:
        if not self.instructions:
            return self.entry_address
        return self.instructions[-1].next_address

    @property
    def num_blocks(self) -> int:
        return self.local_cfg.num_vertices if self.local_cfg else 0

    @property
    def num_local_edges(self) -> int:
        return self.local_cfg.num_edges if self.local_cfg else 0

    def __repr__(self) -> str:
        return (
            f"Function({self.name}, {self.num_instructions} insts, "
            f"{self.num_blocks} blocks, {len(self.callees)} callees)"
        )
