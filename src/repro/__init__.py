"""repro — reproduction of "Classifying Malware Represented as Control
Flow Graphs using Deep Graph Convolutional Neural Network" (DSN 2019).

Public API tour:

* :mod:`repro.asm` — assembly parsing and instruction tagging.
* :mod:`repro.cfg` — control-flow-graph construction (Algorithms 1-2).
* :mod:`repro.features` — Table I attributes and the ACFG abstraction.
* :mod:`repro.nn` — the from-scratch autograd/NN engine.
* :mod:`repro.core` — DGCNN variants and the :class:`~repro.core.Magic`
  end-to-end system.
* :mod:`repro.datasets` — synthetic MSKCFG/YANCFG corpora.
* :mod:`repro.train` — trainer, cross validation, Table II grid search.
* :mod:`repro.baselines` — comparator classifiers for Table IV/Figure 11.
"""

from repro.core.magic import Magic
from repro.exceptions import MagicError

__version__ = "1.0.0"

__all__ = ["Magic", "MagicError", "__version__"]
