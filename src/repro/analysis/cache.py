"""sha256-keyed incremental result cache for the lint engine.

Warm CI runs should not re-analyze files that have not changed.  Every
per-file result is stored under a key derived from the file path, the
sha256 of its content, and the selected rule ids; the whole-program
(project-rule) result is stored under a digest of every analyzed file's
(path, content-digest) pair, since any edit anywhere can change
interprocedural conclusions.  The cache file additionally records a
fingerprint of the analyzer's own sources — upgrading ``repro.analysis``
invalidates everything, so stale results can never mask a new rule.

An unreadable or mismatched cache file is treated as empty, never an
error: the cache is an accelerator, not a correctness dependency.  On
save, only entries touched by the current run are kept, so the file
tracks the live tree instead of accumulating dead digests.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding

#: Cache schema version; bumped on incompatible format changes.
CACHE_VERSION = 1

_ENGINE_FINGERPRINT: Optional[str] = None


def engine_fingerprint() -> str:
    """sha256 over the analyzer's own sources (computed once per process).

    Keyed into every cache lookup so editing any rule, the engine, or
    the CFG/call-graph core invalidates prior results wholesale.
    """
    global _ENGINE_FINGERPRINT
    if _ENGINE_FINGERPRINT is None:
        package_dir = os.path.dirname(os.path.abspath(__file__))
        hasher = hashlib.sha256()
        for root, dirnames, filenames in os.walk(package_dir):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                relative = os.path.relpath(full, package_dir)
                hasher.update(relative.encode("utf-8"))
                with open(full, "rb") as handle:
                    hasher.update(handle.read())
        _ENGINE_FINGERPRINT = hasher.hexdigest()
    return _ENGINE_FINGERPRINT


class LintCache:
    """Content-addressed findings store backing ``lint --cache``."""

    def __init__(self, path: str, entries: Dict[str, List[Dict[str, object]]]):
        self.path = path
        self._entries = entries
        self._touched: Set[str] = set()

    # -- keys ----------------------------------------------------------

    @staticmethod
    def digest(text: str) -> str:
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @staticmethod
    def file_key(path: str, content_digest: str, signature: str) -> str:
        slug = path.replace(os.sep, "/")
        return f"file:{slug}:{content_digest}:{signature}"

    @staticmethod
    def tree_key(
        digests: Sequence[Tuple[str, str]], signature: str
    ) -> str:
        hasher = hashlib.sha256()
        for path, content_digest in sorted(digests):
            slug = path.replace(os.sep, "/")
            hasher.update(f"{slug}:{content_digest}\n".encode("utf-8"))
        return f"tree:{hasher.hexdigest()}:{signature}"

    # -- persistence ---------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "LintCache":
        """Read a cache file; anything unusable yields an empty cache."""
        entries: Dict[str, List[Dict[str, object]]] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            payload = None
        if (
            isinstance(payload, dict)
            and payload.get("version") == CACHE_VERSION
            and payload.get("fingerprint") == engine_fingerprint()
            and isinstance(payload.get("entries"), dict)
        ):
            for key, value in payload["entries"].items():
                if isinstance(key, str) and isinstance(value, list):
                    entries[key] = value
        return cls(path, entries)

    def save(self) -> None:
        """Persist entries touched this run (best effort)."""
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": engine_fingerprint(),
            "entries": {
                key: self._entries[key]
                for key in sorted(self._touched)
                if key in self._entries
            },
        }
        parent = os.path.dirname(os.path.abspath(self.path))
        try:
            os.makedirs(parent, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
        except OSError:
            pass  # a cache that cannot be written is simply not a cache

    # -- lookup --------------------------------------------------------

    def get(self, key: str) -> Optional[List[Finding]]:
        raw = self._entries.get(key)
        if raw is None:
            return None
        self._touched.add(key)
        findings: List[Finding] = []
        for entry in raw:
            try:
                findings.append(
                    Finding(
                        path=str(entry["path"]),
                        line=int(entry["line"]),  # type: ignore[call-overload]
                        col=int(entry["col"]),  # type: ignore[call-overload]
                        rule=str(entry["rule"]),
                        message=str(entry["message"]),
                    )
                )
            except (KeyError, TypeError, ValueError):
                return None  # malformed entry: treat as a miss
        return findings

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        self._entries[key] = [
            dict(finding.to_dict()) for finding in findings
        ]
        self._touched.add(key)
