"""Project-wide call graph with conservative name resolution.

The interprocedural rules (lock-order, fault-contract) need to answer
"which project function does this call reach" across module boundaries:
``self.metrics.observe_request(...)`` inside ``FleetDispatcher`` must
resolve to ``ServeMetrics.observe_request`` so the analyzer can see the
metrics lock acquired under the dispatcher lock.  This module indexes
every module under analysis — import alias tables, top-level functions,
classes with their methods, base classes, and inferred attribute types
(``self.x = ClassName(...)``, annotated parameters) — and resolves
dotted call chains through that index.

Resolution is deliberately *conservative*: a call that cannot be
resolved inside the analyzed project returns ``None`` and rules must
treat it as opaque (it may block, it may raise — the rules decide which
direction is safe).  Nothing here imports or executes analyzed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Nodes whose bodies do not execute where they appear — call collection
#: must not descend into them.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def module_name_for_slug(slug: str) -> str:
    """``src/repro/serve/fleet.py`` → ``repro.serve.fleet``.

    Leading directories up to a ``src`` component are dropped; without
    one the whole relative path becomes the module path.  ``__init__``
    collapses onto the package name.
    """
    parts = [part for part in slug.split("/") if part not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    name: str
    node: FunctionNode
    module: str
    slug: str
    class_name: Optional[str] = None


@dataclass
class ClassInfo:
    """One indexed class: methods, resolved bases, attribute types."""

    qualname: str
    name: str
    module: str
    slug: str
    node: ast.ClassDef
    base_names: List[Tuple[str, ...]] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One indexed module: import aliases and top-level definitions."""

    name: str
    slug: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, str] = field(default_factory=dict)


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chains as a name tuple; ``None`` when dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Calls executed *in* ``node``'s own body (nested scopes excluded)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_NODES):
            continue
        if isinstance(child, ast.Call):
            yield child
        stack.extend(ast.iter_child_nodes(child))


def _annotation_parts(annotation: ast.expr) -> Optional[Tuple[str, ...]]:
    """Best-effort class name from a type annotation expression."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return None
        return _annotation_parts(parsed.body)
    if isinstance(annotation, ast.Subscript):
        base = dotted_parts(annotation.value)
        if base is not None and base[-1] == "Optional":
            if isinstance(annotation.slice, ast.expr):
                return _annotation_parts(annotation.slice)
        return None
    return dotted_parts(annotation)


class CallGraph:
    """Name-resolution index over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._by_node: Dict[int, FunctionInfo] = {}
        self._local_types: Dict[int, Dict[str, str]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, modules: Sequence[Tuple[str, ast.Module]]) -> "CallGraph":
        graph = cls()
        for slug, tree in modules:
            graph._index_module(slug, tree)
        graph._resolve_bases()
        graph._infer_attr_types()
        return graph

    def _index_module(self, slug: str, tree: ast.Module) -> None:
        name = module_name_for_slug(slug)
        info = ModuleInfo(name=name, slug=slug, tree=tree)
        # Imports are collected from the whole module, not just the top
        # level — deferred function-body imports (the worker-main idiom)
        # bind the same names for resolution purposes.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        info.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        info.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    bound = alias.asname or alias.name
                    info.imports[bound] = f"{node.module}.{alias.name}"
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{name}.{node.name}"
                func = FunctionInfo(
                    qualname=qualname,
                    name=node.name,
                    node=node,
                    module=name,
                    slug=slug,
                )
                info.functions[node.name] = qualname
                self.functions[qualname] = func
                self._by_node[id(node)] = func
            elif isinstance(node, ast.ClassDef):
                self._index_class(info, node)
        self.modules[name] = info

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        cls_info = ClassInfo(
            qualname=qualname,
            name=node.name,
            module=module.name,
            slug=module.slug,
            node=node,
        )
        for base in node.bases:
            parts = dotted_parts(base)
            if parts is not None:
                cls_info.base_names.append(parts)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qualname}.{child.name}"
                func = FunctionInfo(
                    qualname=method_qual,
                    name=child.name,
                    node=child,
                    module=module.name,
                    slug=module.slug,
                    class_name=node.name,
                )
                cls_info.methods[child.name] = func
                self.functions[method_qual] = func
                self._by_node[id(child)] = func
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                parts = _annotation_parts(child.annotation)
                if parts is not None:
                    resolved = self._pending_name(module, parts)
                    if resolved is not None:
                        cls_info.attr_types[child.target.id] = resolved
        module.classes[node.name] = qualname
        self.classes[qualname] = cls_info

    def _pending_name(
        self, module: ModuleInfo, parts: Tuple[str, ...]
    ) -> Optional[str]:
        """Dotted name → candidate qualname (existence checked later)."""
        head = parts[0]
        if head in module.imports:
            return ".".join((module.imports[head], *parts[1:]))
        if head in module.classes or head in module.functions:
            return ".".join((module.name, *parts))
        return None

    def _resolve_bases(self) -> None:
        for cls_info in self.classes.values():
            module = self.modules[cls_info.module]
            for parts in cls_info.base_names:
                qualname = self._pending_name(module, parts)
                if qualname is not None and qualname in self.classes:
                    cls_info.bases.append(qualname)

    def _infer_attr_types(self) -> None:
        for cls_info in self.classes.values():
            for method in cls_info.methods.values():
                locals_types = self.local_types(method)
                for stmt in ast.walk(method.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target, value = stmt.target, stmt.value
                        parts = _annotation_parts(stmt.annotation)
                        if (
                            parts is not None
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            module = self.modules[cls_info.module]
                            resolved = self._pending_name(module, parts)
                            if resolved in self.classes:
                                cls_info.attr_types.setdefault(
                                    target.attr, str(resolved)
                                )
                    if (
                        target is None
                        or value is None
                        or not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                    ):
                        continue
                    inferred = self._value_type(method, value, locals_types)
                    if inferred is not None:
                        cls_info.attr_types.setdefault(target.attr, inferred)

    def _value_type(
        self,
        scope: FunctionInfo,
        value: ast.expr,
        locals_types: Dict[str, str],
    ) -> Optional[str]:
        """Class qualname an assigned value evidently constructs/carries."""
        if isinstance(value, ast.Name):
            return locals_types.get(value.id)
        module = self.modules[scope.module]
        for node in ast.walk(value):
            if not isinstance(node, ast.Call):
                continue
            parts = dotted_parts(node.func)
            if parts is None:
                continue
            qualname = self._pending_name(module, parts)
            if qualname is not None and qualname in self.classes:
                return qualname
        return None

    # -- resolution ----------------------------------------------------

    def function_for_node(self, node: FunctionNode) -> Optional[FunctionInfo]:
        return self._by_node.get(id(node))

    def local_types(self, scope: FunctionInfo) -> Dict[str, str]:
        """Variable → class qualname map for one function scope."""
        cached = self._local_types.get(id(scope.node))
        if cached is not None:
            return cached
        module = self.modules[scope.module]
        types: Dict[str, str] = {}
        args = scope.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is None:
                continue
            parts = _annotation_parts(arg.annotation)
            if parts is None:
                continue
            qualname = self._pending_name(module, parts)
            if qualname is not None and qualname in self.classes:
                types[arg.arg] = qualname
        for stmt in ast.walk(scope.node):
            target: Optional[ast.expr] = None
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                parts = _annotation_parts(stmt.annotation)
                if parts is not None:
                    qualname = self._pending_name(module, parts)
                    if qualname is not None and qualname in self.classes:
                        types.setdefault(stmt.target.id, qualname)
                continue
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(stmt.value, ast.Call):
                parts = dotted_parts(stmt.value.func)
                if parts is None:
                    continue
                qualname = self._pending_name(module, parts)
                if qualname is not None and qualname in self.classes:
                    types.setdefault(target.id, qualname)
        self._local_types[id(scope.node)] = types
        return types

    def method(self, class_qualname: str, name: str) -> Optional[FunctionInfo]:
        """Look up ``name`` on a class and its (resolved) base chain."""
        seen: Set[str] = set()
        queue: List[str] = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls_info = self.classes.get(current)
            if cls_info is None:
                continue
            if name in cls_info.methods:
                return cls_info.methods[name]
            queue.extend(cls_info.bases)
        return None

    def chain_owner(
        self, scope: FunctionInfo, chain: Tuple[str, ...]
    ) -> Optional[str]:
        """Class qualname owning ``chain`` (e.g. ``self._replica.worker``)."""
        if not chain:
            return None
        head = chain[0]
        current: Optional[str]
        if head == "self" and scope.class_name is not None:
            current = f"{scope.module}.{scope.class_name}"
        else:
            current = self.local_types(scope).get(head)
        if current is None:
            return None
        for part in chain[1:]:
            cls_info = self.classes.get(current)
            if cls_info is None:
                return None
            current = cls_info.attr_types.get(part)
            if current is None:
                return None
        return current

    def resolve_parts(
        self, scope: FunctionInfo, parts: Tuple[str, ...]
    ) -> Optional[FunctionInfo]:
        """Resolve a dotted callable name inside ``scope``; conservative."""
        module = self.modules.get(scope.module)
        if module is None:
            return None
        if len(parts) >= 2:
            owner = self.chain_owner(scope, parts[:-1])
            if owner is not None:
                return self.method(owner, parts[-1])
        qualname = self._pending_name(module, parts)
        if qualname is None:
            return None
        if qualname in self.functions:
            return self.functions[qualname]
        if qualname in self.classes:
            return self.method(qualname, "__init__")
        return None

    def resolve_scope_name(
        self, scope: FunctionInfo, parts: Tuple[str, ...]
    ) -> Optional[str]:
        """Candidate qualname for a dotted name as seen from ``scope``."""
        module = self.modules.get(scope.module)
        if module is None:
            return None
        return self._pending_name(module, parts)

    def resolve_call(
        self, scope: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        parts = dotted_parts(call.func)
        if parts is None:
            return None
        return self.resolve_parts(scope, parts)

    def resolve_target_expr(
        self, scope: FunctionInfo, expr: ast.expr
    ) -> Optional[FunctionInfo]:
        """Resolve a callable *reference* (e.g. a ``target=`` argument)."""
        parts = dotted_parts(expr)
        if parts is None:
            return None
        return self.resolve_parts(scope, parts)
