"""Pragma suppression for the lint engine.

A finding is suppressed by putting ``# repro: allow[rule-id]`` on the
line it is reported on (the first line of the offending statement), e.g.

    except Exception as exc:  # repro: allow[broad-except] — fault boundary

Several rules may be allowed at once with a comma list
(``# repro: allow[broad-except, atomic-write]``), and anything after the
closing bracket is free-form justification — a pragma without a reason
reads as noise in review, so the convention is ``allow[...] — why``.

Pragmas are matched textually per physical line, not via the
tokenizer: that keeps suppression independent of whether the file even
parses, and makes the marker greppable.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def pragma_rules_by_line(text: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the set of rule ids allowed there."""
    allowed: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if "repro:" not in line:
            continue
        rules = set()
        for match in _PRAGMA_RE.finditer(line):
            rules.update(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
        if rules:
            allowed[number] = frozenset(rules)
    return allowed
