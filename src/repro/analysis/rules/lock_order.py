"""Rule ``lock-order`` — a global lock-acquisition order, no blocking under locks.

The serving stack holds five long-lived locks (engine cache lock,
``ServeMetrics._lock``, ``FleetDispatcher._lock``, ``CompiledModel``'s
RLock, ``SimilarityIndex``'s RLock) and they are acquired from HTTP
handler threads, the micro-batcher worker, the dispatch loop, and the
rollout coordinator concurrently.  Two invariants keep that safe:

* **Acyclic acquisition order.**  If thread 1 takes A then B while
  thread 2 takes B then A, the fleet deadlocks under load and only
  under load.  This rule builds the global acquisition graph — lock B
  acquired (directly or through any resolvable call chain) while lock A
  is held adds edge A→B — and reports every cycle, plus re-acquisition
  of a non-reentrant ``Lock`` already held.
* **No blocking while holding a lock.**  ``Connection.send/recv``,
  ``connection.wait``, un-timed ``join()``, ``time.sleep``, file
  ``open``, ``subprocess.*`` and ``os.wait*`` reachable under a held
  lock stall every other thread queued on it.  ``Condition.wait`` on
  the held condition itself is exempt (it releases the lock).

Resolution is conservative: calls the project call graph cannot resolve
are treated as opaque (assumed neither to acquire nor to block), so
every report names a concrete in-project chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    dotted_parts,
    iter_calls,
)
from repro.analysis.engine import (
    Finding,
    ModuleSource,
    ProjectContext,
    ProjectRule,
    register_rule,
)

LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition"})

#: Call-name prefixes/tails treated as blocking operations.
_SUBPROCESS_HEAD = "subprocess"

#: Transitive summary depth guard (recursion through the call graph).
_MAX_DEPTH = 24

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass(frozen=True)
class LockInfo:
    """One project lock: identity, reentrancy kind, defining module."""

    lock_id: str
    kind: str  # "lock" | "rlock" | "condition"
    slug: str


@dataclass
class _Summary:
    """What a function does, transitively: locks taken, blocking ops."""

    acquires: Dict[str, str] = field(default_factory=dict)
    blocking: List[Tuple[str, Optional[str], str]] = field(default_factory=list)


def _classify_blocking(
    parts: Tuple[str, ...], call: ast.Call
) -> Optional[Tuple[str, bool]]:
    """(human label, is_wait) when the call is a blocking operation."""
    tail = parts[-1]
    name = ".".join(parts)
    if parts == ("time", "sleep"):
        return (f"{name}()", False)
    if parts[0] == _SUBPROCESS_HEAD and len(parts) >= 2:
        return (f"{name}()", False)
    if parts[0] == "os" and tail.startswith("wait"):
        return (f"{name}()", False)
    if parts in (("open",), ("io", "open")):
        return ("open() (file I/O)", False)
    if tail in ("send", "recv") and len(parts) >= 2:
        return (f"{name}() (pipe I/O)", False)
    if tail == "wait":
        return (f"{name}()", True)
    if tail == "join" and len(parts) >= 2 and not call.args:
        return (f"{name}() (un-timed join)", False)
    return None


class _Analyzer:
    """One whole-program lock analysis run."""

    def __init__(self, rule: "LockOrderRule", project: ProjectContext) -> None:
        self.rule = rule
        self.project = project
        self.graph: CallGraph = project.graph
        self.locks: Dict[str, LockInfo] = {}
        self.findings: List[Finding] = []
        #: (holder lock, acquired lock) → first site (module, node).
        self.edges: Dict[Tuple[str, str], Tuple[ModuleSource, ast.AST]] = {}
        self._summaries: Dict[str, _Summary] = {}
        self._in_progress: Set[str] = set()

    # -- lock discovery ------------------------------------------------

    def collect_locks(self) -> None:
        for qualname in sorted(self.graph.classes):
            cls = self.graph.classes[qualname]
            source = self.project.source_for_slug(cls.slug)
            if source is None or source.is_test:
                continue
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not (
                        isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)
                    ):
                        continue
                    parts = dotted_parts(node.value.func)
                    if parts is None or parts[-1] not in LOCK_CONSTRUCTORS:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.locks[f"{qualname}.{target.attr}"] = LockInfo(
                                lock_id=f"{qualname}.{target.attr}",
                                kind=parts[-1].lower(),
                                slug=cls.slug,
                            )
        infos_by_slug = {
            info.slug: info for info in self.graph.modules.values()
        }
        for module in self.project.library_modules:
            info = infos_by_slug.get(module.slug)
            if info is None:
                continue
            for node in module.tree.body:
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                parts = dotted_parts(node.value.func)
                if parts is None or parts[-1] not in LOCK_CONSTRUCTORS:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        lock_id = f"{info.name}.{target.id}"
                        self.locks[lock_id] = LockInfo(
                            lock_id=lock_id,
                            kind=parts[-1].lower(),
                            slug=module.slug,
                        )

    def _lock_on_class(self, class_qualname: str, attr: str) -> Optional[LockInfo]:
        seen: Set[str] = set()
        queue = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            lock = self.locks.get(f"{current}.{attr}")
            if lock is not None:
                return lock
            cls = self.graph.classes.get(current)
            if cls is not None:
                queue.extend(cls.bases)
        return None

    def resolve_lock(
        self, scope: FunctionInfo, parts: Tuple[str, ...]
    ) -> Optional[LockInfo]:
        if len(parts) == 1:
            return self.locks.get(f"{scope.module}.{parts[0]}")
        owner = self.graph.chain_owner(scope, parts[:-1])
        if owner is None:
            return None
        return self._lock_on_class(owner, parts[-1])

    def resolve_lock_expr(
        self, scope: FunctionInfo, expr: ast.expr
    ) -> Optional[LockInfo]:
        parts = dotted_parts(expr)
        if parts is None:
            return None
        return self.resolve_lock(scope, parts)

    # -- transitive summaries ------------------------------------------

    def summary(self, func: FunctionInfo, depth: int = 0) -> _Summary:
        cached = self._summaries.get(func.qualname)
        if cached is not None:
            return cached
        if func.qualname in self._in_progress or depth > _MAX_DEPTH:
            return _Summary()
        self._in_progress.add(func.qualname)
        result = _Summary()
        for node in ast.walk(func.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = self.resolve_lock_expr(func, item.context_expr)
                    if lock is not None:
                        result.acquires.setdefault(lock.lock_id, "")
        seen_blocking: Set[Tuple[str, Optional[str], str]] = set()
        for call in iter_calls(func.node):
            parts = dotted_parts(call.func)
            if parts is not None:
                if parts[-1] == "acquire" and len(parts) >= 2:
                    lock = self.resolve_lock(func, parts[:-1])
                    if lock is not None:
                        result.acquires.setdefault(lock.lock_id, "")
                classified = _classify_blocking(parts, call)
                if classified is not None:
                    label, is_wait = classified
                    wait_lock: Optional[str] = None
                    if is_wait and len(parts) >= 2:
                        lock = self.resolve_lock(func, parts[:-1])
                        wait_lock = lock.lock_id if lock is not None else None
                    entry = (label, wait_lock, "")
                    if entry not in seen_blocking:
                        seen_blocking.add(entry)
                        result.blocking.append(entry)
            callee = self.graph.resolve_call(func, call)
            if callee is None:
                continue
            sub = self.summary(callee, depth + 1)
            for lock_id in sub.acquires:
                result.acquires.setdefault(lock_id, callee.qualname)
            for label, wait_lock, via in sub.blocking:
                entry = (label, wait_lock, via or callee.qualname)
                if entry not in seen_blocking:
                    seen_blocking.add(entry)
                    result.blocking.append(entry)
        self._in_progress.discard(func.qualname)
        self._summaries[func.qualname] = result
        return result

    # -- held-region scan ----------------------------------------------

    def scan_all(self) -> None:
        for qualname in sorted(self.graph.functions):
            func = self.graph.functions[qualname]
            source = self.project.source_for_slug(func.slug)
            if source is None or source.is_test:
                continue
            self._scan_function(func, source)

    def _scan_function(self, scope: FunctionInfo, source: ModuleSource) -> None:
        def walk(node: ast.AST, held: List[LockInfo]) -> None:
            if isinstance(node, _SCOPE_NODES) and node is not scope.node:
                return
            new_held = held
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: List[LockInfo] = []
                for item in node.items:
                    lock = self.resolve_lock_expr(scope, item.context_expr)
                    if lock is not None:
                        self._on_acquire(lock, node, held, source)
                        acquired.append(lock)
                if acquired:
                    new_held = held + acquired
            elif isinstance(node, ast.Call) and held:
                self._on_call(node, scope, held, source)
            for child in ast.iter_child_nodes(node):
                walk(child, new_held)

        walk(scope.node, [])

    def _on_acquire(
        self,
        lock: LockInfo,
        site: ast.AST,
        held: List[LockInfo],
        source: ModuleSource,
    ) -> None:
        for holder in held:
            if holder.lock_id == lock.lock_id:
                if holder.kind == "lock":
                    self.findings.append(
                        self.rule.finding(
                            source,
                            site,
                            f"non-reentrant lock `{lock.lock_id}` is "
                            "re-acquired while already held — guaranteed "
                            "deadlock on this path",
                        )
                    )
            else:
                self.edges.setdefault(
                    (holder.lock_id, lock.lock_id), (source, site)
                )

    def _on_call(
        self,
        call: ast.Call,
        scope: FunctionInfo,
        held: List[LockInfo],
        source: ModuleSource,
    ) -> None:
        parts = dotted_parts(call.func)
        if parts is not None:
            classified = _classify_blocking(parts, call)
            if classified is not None:
                label, is_wait = classified
                wait_lock: Optional[str] = None
                if is_wait and len(parts) >= 2:
                    lock = self.resolve_lock(scope, parts[:-1])
                    wait_lock = lock.lock_id if lock is not None else None
                for holder in held:
                    if (
                        wait_lock is not None
                        and wait_lock == holder.lock_id
                        and holder.kind == "condition"
                    ):
                        continue  # Condition.wait releases the held condition
                    self.findings.append(
                        self.rule.finding(
                            source,
                            call,
                            f"blocking operation {label} while "
                            f"`{holder.lock_id}` is held — every thread "
                            "queued on the lock stalls behind it",
                        )
                    )
            if parts is not None and parts[-1] == "acquire" and len(parts) >= 2:
                lock = self.resolve_lock(scope, parts[:-1])
                if lock is not None:
                    self._on_acquire(lock, call, held, source)
        callee = self.graph.resolve_call(scope, call)
        if callee is None:
            return
        sub = self.summary(callee)
        for holder in held:
            for lock_id, via in sub.acquires.items():
                if lock_id == holder.lock_id:
                    if holder.kind == "lock":
                        self.findings.append(
                            self.rule.finding(
                                source,
                                call,
                                f"call to `{callee.qualname}` re-acquires "
                                f"non-reentrant lock `{holder.lock_id}` "
                                "already held here — guaranteed deadlock",
                            )
                        )
                else:
                    self.edges.setdefault(
                        (holder.lock_id, lock_id), (source, call)
                    )
            for label, wait_lock, via in sub.blocking:
                if (
                    wait_lock is not None
                    and wait_lock == holder.lock_id
                    and holder.kind == "condition"
                ):
                    continue
                via_note = f" (via `{via}`)" if via else ""
                self.findings.append(
                    self.rule.finding(
                        source,
                        call,
                        f"blocking operation {label}{via_note} reachable "
                        f"while `{holder.lock_id}` is held — every thread "
                        "queued on the lock stalls behind it",
                    )
                )

    # -- cycle detection -----------------------------------------------

    def report_cycles(self) -> None:
        adjacency: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            adjacency.setdefault(src, []).append(dst)
        for targets in adjacency.values():
            targets.sort()
        reported: Set[Tuple[str, ...]] = set()
        for src, dst in sorted(self.edges):
            if src == dst:
                continue
            path = self._find_cycle(adjacency, dst, src)
            if path is None:
                continue
            cycle = [src] + path
            canonical = tuple(sorted(set(cycle)))
            if canonical in reported:
                continue
            reported.add(canonical)
            source, site = self.edges[(src, dst)]
            chain = " -> ".join(cycle)
            self.findings.append(
                self.rule.finding(
                    source,
                    site,
                    f"lock-order cycle {chain}: two threads taking these "
                    "locks in opposite orders deadlock — pick one global "
                    "acquisition order",
                )
            )

    @staticmethod
    def _find_cycle(
        adjacency: Dict[str, List[str]], start: str, goal: str
    ) -> Optional[List[str]]:
        """Path ``start..goal`` through the edge set (BFS, deterministic)."""
        parents: Dict[str, Optional[str]] = {start: None}
        queue = [start]
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            if node == goal:
                path: List[str] = []
                cursor: Optional[str] = node
                while cursor is not None:
                    path.append(cursor)
                    cursor = parents[cursor]
                path.reverse()
                return path
            for target in adjacency.get(node, []):
                if target not in parents:
                    parents[target] = node
                    queue.append(target)
        return None


@register_rule
class LockOrderRule(ProjectRule):
    rule_id = "lock-order"
    description = (
        "lock acquisitions must form a global acyclic order and never "
        "hold a lock across blocking operations (pipe I/O, sleeps, "
        "un-timed joins, subprocess waits)"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        analyzer = _Analyzer(self, project)
        analyzer.collect_locks()
        if not analyzer.locks:
            return []
        analyzer.scan_all()
        analyzer.report_cycles()
        return analyzer.findings
