"""Rule ``lock-discipline`` — shared counters mutate under their lock.

:class:`repro.serve.metrics.ServeMetrics` is written from HTTP handler
threads, the micro-batcher worker, and the engine simultaneously; every
counter mutation belongs inside ``with self._lock``.  A missed lock is
the classic silent bug — counts drift only under load, exactly when
nobody is reading the code.

The rule is self-calibrating rather than name-based: in any class whose
``__init__`` binds an attribute to ``threading.Lock()`` / ``RLock()``,
the attributes that are mutated at least once inside a ``with
self.<lock>`` block are considered *guarded*; any other mutation of
those same attributes outside a lock block (``__init__`` excepted — no
other thread can hold a reference yet) is flagged.  A class that never
locks a given attribute is out of scope, so single-threaded state
machines do not false-positive.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, NamedTuple, Set

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    call_name,
    register_rule,
)

LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition"})

#: In-place mutator method names on common container attributes.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "update", "clear", "pop", "popleft",
        "popitem", "extend", "remove", "discard", "setdefault", "move_to_end",
        "subtract", "insert",
    }
)


class _Mutation(NamedTuple):
    attr: str
    locked: bool
    node: ast.AST
    method: str


def _self_attr(node: ast.expr) -> str:
    """``self.X`` (possibly behind a subscript) -> ``X``; else ``""``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _lock_attrs(class_node: ast.ClassDef) -> Set[str]:
    locks: Set[str] = set()
    for statement in class_node.body:
        if not (
            isinstance(statement, ast.FunctionDef)
            and statement.name == "__init__"
        ):
            continue
        for node in ast.walk(statement):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            chain = call_name(node.value)
            if not chain or chain[-1] not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr:
                    locks.add(attr)
    return locks


def _collect_mutations(
    method: ast.FunctionDef, locks: Set[str]
) -> List[_Mutation]:
    mutations: List[_Mutation] = []

    def is_lock_with(node: ast.With) -> bool:
        return any(_self_attr(item.context_expr) in locks for item in node.items)

    def record(target: ast.expr, node: ast.AST, locked: bool) -> None:
        attr = _self_attr(target)
        if attr and attr not in locks:
            mutations.append(_Mutation(attr, locked, node, method.name))

    def walk(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With) and is_lock_with(node):
            locked = True
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function is not necessarily *called* under the
            # lock its definition sits in.
            locked = False
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                record(target, node, locked)
        elif isinstance(node, ast.AugAssign):
            record(node.target, node, locked)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
        ):
            record(node.func.value, node, locked)
        for child in ast.iter_child_nodes(node):
            walk(child, locked)

    walk(method, False)
    return mutations


@register_rule
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    description = (
        "attributes a class mutates under `with self._lock` must never "
        "be mutated outside it (shared serving counters)"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            locks = _lock_attrs(class_node)
            if not locks:
                continue
            mutations: List[_Mutation] = []
            for statement in class_node.body:
                if isinstance(statement, ast.FunctionDef):
                    mutations.extend(_collect_mutations(statement, locks))
            guarded: Dict[str, bool] = {}
            for mutation in mutations:
                if mutation.locked:
                    guarded[mutation.attr] = True
            for mutation in mutations:
                if (
                    not mutation.locked
                    and mutation.method != "__init__"
                    and guarded.get(mutation.attr)
                ):
                    findings.append(
                        self.finding(
                            module,
                            mutation.node,
                            f"`self.{mutation.attr}` is lock-guarded "
                            f"elsewhere in {class_node.name} but mutated "
                            f"here outside `with self.{next(iter(sorted(locks)))}`; "
                            "move the mutation under the lock",
                        )
                    )
        return findings
