"""Rule ``atomic-write`` — staged swaps and context-managed writes only.

PR 3 rebuilt the dataset cache and PR 4 the model registry around a
single crash-safety story: build the artifact in a staging directory,
then rename into place, so a SIGKILL never publishes a torn corpus or a
half-written archive.  Two statically-checkable disciplines keep that
story true:

* ``open()`` in a write mode (``w``/``a``/``x``/``+``) must be the
  context expression of a ``with`` statement, so handles cannot leak
  past an exception with buffered data unflushed.  Long-lived append
  handles (the extraction and sweep journals) go through the shared
  crash-safe helper :class:`repro.fileio.JsonlAppendWriter`, which owns
  the single pragma'd raw ``open``.
* rename-into-place (``os.rename`` / ``os.replace`` / ``shutil.move``)
  is the swap primitive of the managed cache/registry roots, so it is
  reserved to the registered staged-swap modules
  (``repro/datasets/cache.py``, ``repro/serve/registry.py``,
  ``repro/fileio.py``).  A worker performing a local temp-file swap it
  owns outright documents that with a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    call_name,
    register_rule,
)

#: Modules allowed to rename artifacts into place (suffix match on slug).
STAGED_SWAP_MODULES = (
    "repro/datasets/cache.py",
    "repro/serve/registry.py",
    "repro/fileio.py",
)

SWAP_CALLS = frozenset({("os", "rename"), ("os", "replace"), ("shutil", "move")})

WRITE_MODE_CHARS = frozenset("wax+")


def _write_mode(node: ast.Call) -> bool:
    """True when this ``open()`` call's mode argument requests writing."""
    mode: ast.expr
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        keywords = {kw.arg: kw.value for kw in node.keywords}
        if "mode" not in keywords:
            return False  # default "r"
        mode = keywords["mode"]
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in WRITE_MODE_CHARS for ch in mode.value)
    # Non-literal mode: conservatively treat as a write — dynamic modes
    # on raw handles are exactly the pattern the journals used to have.
    return True


@register_rule
class AtomicWriteRule(Rule):
    rule_id = "atomic-write"
    description = (
        "open()-for-write must be context-managed (or use the crash-safe "
        "journal helper); rename-into-place is reserved to the staged-swap "
        "modules"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        findings: List[Finding] = []
        managed = any(module.slug.endswith(slug) for slug in STAGED_SWAP_MODULES)
        with_contexts: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.With):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_name(node)
            if chain == ("open",) or chain == ("io", "open"):
                if _write_mode(node) and id(node) not in with_contexts:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "open() for writing outside a `with` block; a "
                            "crash here leaks an unflushed handle — use a "
                            "context manager, or repro.fileio.JsonlAppendWriter "
                            "for long-lived crash-safe append handles",
                        )
                    )
            elif (
                not module.is_test
                and not managed
                and chain is not None
                and len(chain) >= 2
                and (chain[-2], chain[-1]) in SWAP_CALLS
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{'.'.join(chain)}()` renames into place outside "
                        "the registered staged-swap modules "
                        "(repro.datasets.cache / repro.serve.registry); go "
                        "through those helpers, or pragma a worker-owned "
                        "temp-file swap",
                    )
                )
        return findings
