"""Rule ``fault-contract`` — no exception escapes a fault boundary unmapped.

The fleet's failure story (PR 2/6) is a *taxonomy*, not a traceback:
``execute_unit`` returns ``("fail", FailureKind, detail)``, worker
processes report structured errors over their pipe, HTTP handlers
answer 500s.  An exception that propagates out of one of those
boundaries bypasses the taxonomy — a worker dies without a verdict, a
dispatch thread evaporates, a handler tears down its connection.

Boundaries are discovered, not configured:

* any function passed as ``target=`` to ``Process(...)`` or
  ``Thread(...)`` and resolvable in the project call graph;
* ``do_*`` methods on classes deriving (directly or through project
  classes) from ``BaseHTTPRequestHandler``;
* any function named ``execute_unit`` (the PR-2 contract).

Inside a boundary, a statement is *protected* when it sits in the body
of a ``try`` with a catch-all handler (bare / ``Exception`` /
``BaseException``).  Unprotected ``raise`` / ``assert`` statements and
calls that may raise — resolved project calls are analyzed
transitively; unresolved calls are assumed raising unless their name is
on a benign whitelist — are reported.  Handler bodies, ``else`` and
``finally`` blocks are *not* protected by their own ``try`` (Python
semantics), which is exactly where real escapes hide.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import FunctionInfo, dotted_parts
from repro.analysis.cfg import handler_catches_all
from repro.analysis.engine import (
    Finding,
    ModuleSource,
    ProjectContext,
    ProjectRule,
    register_rule,
)

#: Call tails assumed not to raise in practice (noise control; anything
#: else unresolved is conservatively treated as raising).
BENIGN_CALL_TAILS = frozenset(
    {
        # builtins / conversions
        "len", "isinstance", "issubclass", "repr", "str", "format", "bool",
        "int", "float", "bytes", "print", "sorted", "list", "dict", "set",
        "tuple", "frozenset", "min", "max", "sum", "abs", "round", "id",
        "hash", "enumerate", "zip", "range", "getattr", "hasattr",
        "setattr", "callable", "vars", "type",
        # containers / strings
        "append", "extend", "add", "update", "clear", "get", "items",
        "keys", "values", "copy", "setdefault", "join", "split", "strip",
        "startswith", "endswith", "encode", "decode", "lower", "upper",
        "format_map", "count",
        # logging
        "debug", "info", "warning", "error", "exception", "critical", "log",
        # clocks / process info / liveness probes / signalling
        "time", "monotonic", "perf_counter", "sleep", "getpid", "is_alive",
        "is_set", "locked", "fileno", "poll", "close", "cancel", "done",
        "name", "notify", "notify_all",
    }
)

_THREADLIKE_CONSTRUCTORS = frozenset({"Process", "Thread"})

_EXPLICIT_BOUNDARY_NAMES = frozenset({"execute_unit"})

_MAX_DEPTH = 24

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _own_calls(node: ast.AST) -> Iterable[ast.Call]:
    """Calls in ``node``'s expression subtree, not entering nested scopes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if current is not node and isinstance(current, _SCOPE_NODES):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


class _Analyzer:
    def __init__(self, rule: "FaultContractRule", project: ProjectContext) -> None:
        self.rule = rule
        self.project = project
        self.graph = project.graph
        self.findings: List[Finding] = []
        self._may_raise: Dict[str, Optional[str]] = {}
        self._in_progress: Set[str] = set()

    # -- boundary discovery --------------------------------------------

    def boundaries(self) -> List[Tuple[FunctionInfo, str]]:
        found: Dict[str, Tuple[FunctionInfo, str]] = {}
        for qualname in sorted(self.graph.functions):
            func = self.graph.functions[qualname]
            source = self.project.source_for_slug(func.slug)
            if source is None or source.is_test:
                continue
            if func.name in _EXPLICIT_BOUNDARY_NAMES:
                found.setdefault(qualname, (func, "fault-isolation contract"))
            for call in _own_calls(func.node):
                parts = dotted_parts(call.func)
                if parts is None or parts[-1] not in _THREADLIKE_CONSTRUCTORS:
                    continue
                for keyword in call.keywords:
                    if keyword.arg != "target":
                        continue
                    target = self.graph.resolve_target_expr(func, keyword.value)
                    if target is None:
                        continue
                    target_source = self.project.source_for_slug(target.slug)
                    if target_source is None or target_source.is_test:
                        continue
                    kind = (
                        "process entry point"
                        if parts[-1] == "Process"
                        else "thread entry point"
                    )
                    found.setdefault(target.qualname, (target, kind))
        for qualname in sorted(self.graph.classes):
            cls = self.graph.classes[qualname]
            source = self.project.source_for_slug(cls.slug)
            if source is None or source.is_test:
                continue
            if not self._is_http_handler(qualname, set()):
                continue
            for name in sorted(cls.methods):
                if name.startswith("do_"):
                    method = cls.methods[name]
                    found.setdefault(method.qualname, (method, "HTTP handler"))
        return [found[key] for key in sorted(found)]

    def _is_http_handler(self, qualname: str, seen: Set[str]) -> bool:
        if qualname in seen:
            return False
        seen.add(qualname)
        cls = self.graph.classes.get(qualname)
        if cls is None:
            return False
        for parts in cls.base_names:
            if parts[-1] == "BaseHTTPRequestHandler":
                return True
        return any(self._is_http_handler(base, seen) for base in cls.bases)

    # -- may-raise analysis --------------------------------------------

    def call_raise_reason(
        self, scope: FunctionInfo, call: ast.Call, depth: int
    ) -> Optional[str]:
        parts = dotted_parts(call.func)
        callee = self.graph.resolve_call(scope, call)
        if callee is not None:
            reason = self.may_raise(callee, depth + 1)
            if reason is None:
                return None
            return f"calls `{callee.qualname}` which {reason}"
        if parts is None:
            return "makes a dynamic call that may raise"
        # Constructing a project class with no explicit __init__ (dataclass
        # / NamedTuple field assignment) is benign.
        qualname = self.graph.resolve_scope_name(scope, parts)
        if qualname is not None and qualname in self.graph.classes:
            return None
        if parts[-1] in BENIGN_CALL_TAILS:
            return None
        return f"calls `{'.'.join(parts)}` which may raise"

    def may_raise(self, func: FunctionInfo, depth: int = 0) -> Optional[str]:
        """A reason string when ``func`` can let an exception escape."""
        cached = self._may_raise.get(func.qualname, "miss")
        if cached != "miss":
            return cached
        if func.qualname in self._in_progress or depth > _MAX_DEPTH:
            return None  # converge cycles optimistically
        self._in_progress.add(func.qualname)
        escapes = self._unprotected_raisers(func, func.node.body, False, depth)
        reason = escapes[0][1] if escapes else None
        self._in_progress.discard(func.qualname)
        self._may_raise[func.qualname] = reason
        return reason

    def _unprotected_raisers(
        self,
        scope: FunctionInfo,
        stmts: List[ast.stmt],
        protected: bool,
        depth: int,
    ) -> List[Tuple[ast.stmt, str]]:
        escapes: List[Tuple[ast.stmt, str]] = []
        for stmt in stmts:
            if isinstance(stmt, ast.Try):
                body_protected = protected or any(
                    handler_catches_all(handler) for handler in stmt.handlers
                )
                escapes.extend(
                    self._unprotected_raisers(
                        scope, stmt.body, body_protected, depth
                    )
                )
                for handler in stmt.handlers:
                    escapes.extend(
                        self._unprotected_raisers(
                            scope, handler.body, protected, depth
                        )
                    )
                escapes.extend(
                    self._unprotected_raisers(scope, stmt.orelse, protected, depth)
                )
                escapes.extend(
                    self._unprotected_raisers(
                        scope, stmt.finalbody, protected, depth
                    )
                )
                continue
            if isinstance(
                stmt,
                (
                    ast.If,
                    ast.While,
                    ast.For,
                    ast.AsyncFor,
                    ast.With,
                    ast.AsyncWith,
                ),
            ):
                if not protected:
                    header_reason = self._header_reason(scope, stmt, depth)
                    if header_reason is not None:
                        escapes.append((stmt, header_reason))
                for child_body in (
                    getattr(stmt, "body", []),
                    getattr(stmt, "orelse", []),
                ):
                    escapes.extend(
                        self._unprotected_raisers(
                            scope, child_body, protected, depth
                        )
                    )
                continue
            if isinstance(stmt, _SCOPE_NODES):
                continue  # nested defs do not execute here
            if protected:
                continue
            if isinstance(stmt, ast.Raise):
                escapes.append((stmt, f"raises at line {stmt.lineno}"))
                continue
            if isinstance(stmt, ast.Assert):
                escapes.append(
                    (stmt, f"asserts at line {stmt.lineno} (AssertionError)")
                )
                continue
            for call in _own_calls(stmt):
                reason = self.call_raise_reason(scope, call, depth)
                if reason is not None:
                    escapes.append((stmt, reason))
                    break
        return escapes

    def _header_reason(
        self, scope: FunctionInfo, stmt: ast.stmt, depth: int
    ) -> Optional[str]:
        """Can the header expression (test / iter / context) raise?"""
        headers: List[ast.AST] = []
        if isinstance(stmt, (ast.If, ast.While)):
            headers.append(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            headers.append(stmt.iter)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            headers.extend(item.context_expr for item in stmt.items)
        for header in headers:
            for call in _own_calls(header):
                reason = self.call_raise_reason(scope, call, depth)
                if reason is not None:
                    return reason
        return None

    # -- reporting -----------------------------------------------------

    def check_boundary(self, func: FunctionInfo, kind: str) -> None:
        source = self.project.source_for_slug(func.slug)
        if source is None:
            return
        escapes = self._unprotected_raisers(func, func.node.body, False, 0)
        seen_lines: Set[int] = set()
        for stmt, reason in escapes:
            if stmt.lineno in seen_lines:
                continue
            seen_lines.add(stmt.lineno)
            self.findings.append(
                self.rule.finding(
                    source,
                    stmt,
                    f"exception can escape the {kind} "
                    f"`{func.qualname}`: {reason}; map it into the "
                    "FailureKind taxonomy (or wrap in a catch-all handler "
                    "that reports structured failure)",
                )
            )


@register_rule
class FaultContractRule(ProjectRule):
    rule_id = "fault-contract"
    description = (
        "process/thread entry points, HTTP handlers, and execute_unit "
        "must map every exception into the FailureKind taxonomy instead "
        "of letting it escape"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        analyzer = _Analyzer(self, project)
        for func, kind in analyzer.boundaries():
            analyzer.check_boundary(func, kind)
        return analyzer.findings
