"""Rule ``resource-lifecycle`` — spawned resources are released on *every* path.

The fleet spawns processes and pipes constantly: a worker respawn
allocates a ``Pipe()`` pair and a ``Process``; the pool holds raw file
handles for journals.  A handle leaked on an exception path is invisible
in tests (the happy path closes it) and fatal in production — file
descriptors and zombie processes accumulate until the box stops
accepting connections.

For every local ``x = open(...)`` / ``a, b = Pipe()`` / ``r, w =
os.pipe()`` / ``p = Process(...)`` this rule builds the function's CFG
(:mod:`repro.analysis.cfg`) and proves that **no path — normal or
exception — reaches the function exit without passing a release**
(``close`` / ``join`` / ``terminate`` / ``kill`` / ``os.close`` /
``with x:``).  The ``finally`` cloning in the CFG makes the proof
path-sensitive: a release in a ``finally`` block covers return,
fall-through, *and* exception exits, while a release only on the happy
path leaves the exception edge uncovered and is reported.

Ownership transfer ends the obligation: a resource that is returned,
yielded, stored into an attribute/container, captured by a nested
function, or passed to any call (e.g. ``terminate_process(process)``)
belongs to someone else and is skipped — the rule only proves leaks it
can attribute to the local scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.cfg import build_cfg, iter_functions
from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    call_name,
    register_rule,
)

RELEASE_METHODS = frozenset({"close", "join", "terminate", "kill"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


class _Acquisition(NamedTuple):
    stmt: ast.stmt
    name: str
    kind: str


def _acquisitions(stmt: ast.stmt) -> List[_Acquisition]:
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return []
    if not isinstance(stmt.value, ast.Call):
        return []
    chain = call_name(stmt.value)
    if chain is None:
        return []
    target = stmt.targets[0]
    result: List[_Acquisition] = []
    if chain in (("open",), ("io", "open")) and isinstance(target, ast.Name):
        result.append(_Acquisition(stmt, target.id, "file handle"))
    elif chain[-1] == "Pipe" and isinstance(target, ast.Tuple):
        for element in target.elts:
            if isinstance(element, ast.Name):
                result.append(_Acquisition(stmt, element.id, "pipe connection"))
    elif chain == ("os", "pipe") and isinstance(target, ast.Tuple):
        for element in target.elts:
            if isinstance(element, ast.Name):
                result.append(_Acquisition(stmt, element.id, "pipe fd"))
    elif chain[-1] == "Process" and isinstance(target, ast.Name):
        result.append(_Acquisition(stmt, target.id, "process"))
    return result


def _own_statements(func: ast.AST) -> List[ast.stmt]:
    """All statements in ``func``'s own scope (nested defs excluded)."""
    collected: List[ast.stmt] = []

    def walk(stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            collected.append(stmt)
            if isinstance(stmt, _SCOPE_NODES):
                continue
            for field_name in ("body", "orelse", "finalbody"):
                child = getattr(stmt, field_name, None)
                if isinstance(child, list):
                    walk([s for s in child if isinstance(s, ast.stmt)])
            for handler in getattr(stmt, "handlers", []):
                walk(handler.body)
            for case in getattr(stmt, "cases", []):
                walk(case.body)

    walk(list(getattr(func, "body", [])))
    return collected


def _is_release(stmt: ast.stmt, name: str) -> bool:
    """Does executing ``stmt`` release the resource bound to ``name``?"""
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            expr: Optional[ast.expr] = item.context_expr
            if isinstance(expr, ast.Call):
                chain = call_name(expr)
                if chain is not None and chain[-1] == "closing" and expr.args:
                    expr = expr.args[0]
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
        return False
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return False
    call = stmt.value
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in RELEASE_METHODS
        and isinstance(func.value, ast.Name)
        and func.value.id == name
    ):
        return True
    chain = call_name(call)
    if chain == ("os", "close"):
        return any(
            isinstance(arg, ast.Name) and arg.id == name for arg in call.args
        )
    return False


def _release_call_exprs(stmt: ast.stmt, name: str) -> Set[int]:
    """ids of Call nodes in ``stmt`` that constitute the release itself."""
    ids: Set[int] = set()
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and _is_release(stmt, name)
    ):
        ids.add(id(stmt.value))
    return ids


def _escapes(
    func: ast.AST, own_stmts: List[ast.stmt], acquisition: _Acquisition
) -> bool:
    """True when ownership of the name leaves the local scope."""
    name = acquisition.name
    for stmt in own_stmts:
        if stmt is acquisition.stmt:
            continue
        if isinstance(stmt, (ast.Global, ast.Nonlocal)) and name in stmt.names:
            return True
        if isinstance(stmt, _SCOPE_NODES):
            # closure capture: any mention inside the nested scope
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and node.id == name:
                    return True
            continue
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Name) and node.id == name:
                    return True
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                for node in ast.walk(value):
                    if isinstance(node, ast.Name) and node.id == name:
                        return True
        release_calls = _release_call_exprs(stmt, name)
        # Any *argument* use in a non-release call transfers ownership
        # (``terminate_process(process)``); receiver use (``x.send(...)``)
        # does not.
        header_exprs = _expression_children(stmt)
        for expr in header_exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Lambda):
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Name) and inner.id == name:
                            return True
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Name) and inner.id == name:
                            return True
                if not isinstance(node, ast.Call) or id(node) in release_calls:
                    continue
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    for inner in ast.walk(arg):
                        if isinstance(inner, ast.Name) and inner.id == name:
                            return True
    return False


def _expression_children(stmt: ast.stmt) -> List[ast.expr]:
    """Expressions evaluated by ``stmt`` itself (not nested statements)."""
    exprs: List[ast.expr] = []
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
            continue
        if isinstance(value, ast.expr):
            exprs.append(value)
        elif isinstance(value, list):
            exprs.extend(v for v in value if isinstance(v, ast.expr))
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs.extend(item.context_expr for item in stmt.items)
    return exprs


@register_rule
class ResourceLifecycleRule(Rule):
    rule_id = "resource-lifecycle"
    description = (
        "locally-owned processes, pipes, and file handles must be "
        "closed/joined on every CFG path, exception edges included"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        if module.is_test:
            return []
        findings: List[Finding] = []
        for func in iter_functions(module.tree):
            findings.extend(self._check_function(module, func))
        return findings

    def _check_function(
        self, module: ModuleSource, func: ast.AST
    ) -> List[Finding]:
        own_stmts = _own_statements(func)
        acquisitions: List[_Acquisition] = []
        for stmt in own_stmts:
            if isinstance(stmt, _SCOPE_NODES):
                continue
            acquisitions.extend(_acquisitions(stmt))
        if not acquisitions:
            return []
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        cfg = build_cfg(func)
        findings: List[Finding] = []
        for acquisition in acquisitions:
            if _escapes(func, own_stmts, acquisition):
                continue
            release_stmts = [
                stmt
                for stmt in own_stmts
                if _is_release(stmt, acquisition.name)
            ]
            avoid_blocks: Set[int] = set()
            for stmt in release_stmts:
                avoid_blocks.update(cfg.blocks_for(stmt))
            starts: List[int] = []
            for block in cfg.blocks_for(acquisition.stmt):
                for target, kind in cfg.successors(block):
                    if kind not in ("exception", "raise"):
                        starts.append(target)
            path = cfg.find_path(
                starts,
                frozenset({cfg.exit_block, cfg.raise_exit}),
                frozenset(avoid_blocks),
            )
            if path is None:
                continue
            where = (
                "an exception path"
                if path[-1] == cfg.raise_exit
                else "a normal path"
            )
            verb = "closed" if acquisition.kind != "process" else "joined"
            findings.append(
                self.finding(
                    module,
                    acquisition.stmt,
                    f"`{acquisition.name}` ({acquisition.kind}) can reach "
                    f"the function exit via {where} without being {verb} "
                    "— release it in a `finally` block or `with` statement",
                )
            )
        return findings
