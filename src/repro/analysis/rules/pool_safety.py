"""Rule ``pool-safety`` — nothing unpicklable crosses a process boundary.

``repro.train.sweep`` fans fold work over a ``ProcessPoolExecutor`` and
``repro.features.pool`` spawns supervised worker processes; both pickle
what they are handed.  Lambdas and locally-defined (nested) functions
are unpicklable, and the failure is deferred — the pool raises deep
inside ``concurrent.futures`` at submit time, or worse, only under the
``spawn`` start method on another platform.  This rule rejects them at
review time instead:

* ``<process pool>.submit/map/apply_async(fn, ...)`` where the receiver
  was created from ``ProcessPoolExecutor(...)`` and ``fn`` is a lambda
  or a function defined inside the enclosing function;
* ``initializer=``/``target=`` arguments of ``ProcessPoolExecutor`` /
  ``multiprocessing.Process`` construction;
* ``WorkerSpec(fn=...)`` registrations in the extraction worker
  registry (``fn`` is resolved *by name* inside each worker process, so
  it must be a module-level function; the serialization hooks run in
  the parent and may stay lambdas).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    call_name,
    dotted_name,
    register_rule,
)

POOL_METHODS = frozenset({"submit", "map", "apply_async"})
POOL_CONSTRUCTORS = frozenset({"ProcessPoolExecutor"})
PROCESS_CONSTRUCTORS = frozenset({"Process"})
REGISTRY_CONSTRUCTORS = frozenset({"WorkerSpec"})


def _target_chain(node: ast.expr) -> Optional[str]:
    chain = dotted_name(node)
    return ".".join(chain) if chain else None


class _Scope:
    """One function scope: locally-bound callables and pool variables."""

    def __init__(self) -> None:
        self.local_callables: Set[str] = set()
        self.pool_names: Set[str] = set()


class _PoolVisitor(ast.NodeVisitor):
    def __init__(self, rule: "PoolSafetyRule", module: ModuleSource) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []
        # Scope stack; index 0 is the module scope.  Lambdas bound to a
        # name are unpicklable at any depth (their qualname is
        # ``<lambda>``), nested defs only when bound inside a function.
        self.scopes: List[_Scope] = [_Scope()]

    # -- scope bookkeeping --------------------------------------------

    def _bind(self, name: str, value: ast.expr) -> None:
        scope = self.scopes[-1]
        if isinstance(value, ast.Lambda):
            scope.local_callables.add(name)
        elif isinstance(value, ast.Call):
            chain = call_name(value)
            if chain and chain[-1] in POOL_CONSTRUCTORS:
                scope.pool_names.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            dotted = _target_chain(target)
            if dotted is not None:
                self._bind(dotted, node.value)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is None:
                continue
            dotted = _target_chain(item.optional_vars)
            if dotted is None or not isinstance(item.context_expr, ast.Call):
                continue
            chain = call_name(item.context_expr)
            if chain and chain[-1] in POOL_CONSTRUCTORS:
                self.scopes[-1].pool_names.add(dotted)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node: ast.AST) -> None:
        name = getattr(node, "name", "")
        if len(self.scopes) > 1 and name:
            # A def nested inside a function is a closure: unpicklable.
            self.scopes[-1].local_callables.add(name)
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    # -- checks --------------------------------------------------------

    def _is_unpicklable_ref(self, node: ast.expr) -> Optional[str]:
        """A human-readable label when ``node`` cannot cross a pickle."""
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name):
            for scope in self.scopes:
                if node.id in scope.local_callables:
                    return f"locally-defined function `{node.id}`"
        return None

    def _is_pool_receiver(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            chain = call_name(node)
            return bool(chain) and chain[-1] in POOL_CONSTRUCTORS
        dotted = _target_chain(node)
        if dotted is None:
            return False
        return any(dotted in scope.pool_names for scope in self.scopes)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # pool.submit(fn, ...) / pool.map(fn, ...) on a known process pool
        if (
            isinstance(func, ast.Attribute)
            and func.attr in POOL_METHODS
            and node.args
            and self._is_pool_receiver(func.value)
        ):
            label = self._is_unpicklable_ref(node.args[0])
            if label:
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f"{label} is handed to a ProcessPoolExecutor via "
                        f".{func.attr}(); it cannot be pickled across the "
                        "process boundary — use a module-level function",
                    )
                )
        chain = call_name(node)
        tail = chain[-1] if chain else ""
        # ProcessPoolExecutor(initializer=...) / Process(target=...)
        if tail in POOL_CONSTRUCTORS or tail in PROCESS_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg not in ("initializer", "target"):
                    continue
                label = self._is_unpicklable_ref(keyword.value)
                if label:
                    self.findings.append(
                        self.rule.finding(
                            self.module,
                            keyword.value,
                            f"{label} is passed as `{keyword.arg}=` to "
                            f"{tail}; worker processes cannot unpickle it "
                            "— use a module-level function",
                        )
                    )
        # WorkerSpec(fn=...) — resolved by name inside worker processes
        if tail in REGISTRY_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg != "fn":
                    continue
                label = self._is_unpicklable_ref(keyword.value)
                if label is None and isinstance(keyword.value, ast.Lambda):
                    label = "a lambda"
                if label:
                    self.findings.append(
                        self.rule.finding(
                            self.module,
                            keyword.value,
                            f"{label} is registered as a WorkerSpec worker "
                            "fn; workers resolve fn by module-level name, "
                            "so it must be a top-level function",
                        )
                    )
        self.generic_visit(node)


@register_rule
class PoolSafetyRule(Rule):
    rule_id = "pool-safety"
    description = (
        "lambdas and locally-defined functions must not cross the "
        "ProcessPoolExecutor / repro.features.pool process boundaries"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        visitor = _PoolVisitor(self, module)
        visitor.visit(module.tree)
        return visitor.findings
