"""Rule ``broad-except`` — the structured exception taxonomy is law.

Library errors flow through the :class:`~repro.exceptions.MagicError`
hierarchy and, at the extraction/sweep/serving boundaries, the
structured :class:`~repro.features.pipeline.FailureKind` taxonomy.
``raise Exception(...)`` produces failures that no caller can
discriminate, and an unannotated ``except Exception`` (or a bare
``except:``) silently swallows the very crashes PR 3 built a fault
taxonomy to classify.

Broad excepts are still *required* at the registered fault-isolation
boundaries (pool workers, the micro-batcher loop, quarantine) — those
sites carry an explicit ``# repro: allow[broad-except] — reason``
pragma, replacing the old free-text ``noqa: BLE001`` convention, so the
set of boundaries is greppable and reviewed.

Scope: library modules only (tests may assert on broad exceptions).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import Finding, ModuleSource, Rule, register_rule

BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in BROAD_NAMES


@register_rule
class ExceptionTaxonomyRule(Rule):
    rule_id = "broad-except"
    description = (
        "library code raises MagicError subclasses and never catches "
        "Exception outside a pragma-registered fault-isolation boundary"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        if module.is_test:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                exc = node.exc
                callee = exc.func if isinstance(exc, ast.Call) else exc
                if callee is not None and _broad_name(callee):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "`raise Exception` defeats the structured "
                            "taxonomy; raise a MagicError subclass from "
                            "repro.exceptions instead",
                        )
                    )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "bare `except:` catches SystemExit/KeyboardInterrupt "
                            "too; catch MagicError (or a narrower class), or "
                            "pragma a registered fault-isolation boundary",
                        )
                    )
                    continue
                caught = (
                    list(node.type.elts)
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                if any(_broad_name(entry) for entry in caught):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "broad `except Exception` outside a registered "
                            "fault-isolation boundary; catch MagicError (or "
                            "narrower), or annotate the boundary with "
                            "`# repro: allow[broad-except] — reason`",
                        )
                    )
        return findings
