"""Built-in project-invariant rules.

Importing this package registers every rule with the engine registry
(:func:`repro.analysis.engine.register_rule`); the DESIGN.md rule table
documents which PR's invariant each one guards.  The flow-aware rules
(lock-order, fault-contract) are :class:`~repro.analysis.engine.ProjectRule`
subclasses running over the whole-program call graph; the rest are
per-file AST rules.
"""

from __future__ import annotations

from repro.analysis.rules.atomic_write import AtomicWriteRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.fault_contract import FaultContractRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.pool_safety import PoolSafetyRule
from repro.analysis.rules.resource_lifecycle import ResourceLifecycleRule
from repro.analysis.rules.taxonomy import ExceptionTaxonomyRule

__all__ = [
    "AtomicWriteRule",
    "DeterminismRule",
    "FaultContractRule",
    "FloatEqualityRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "PoolSafetyRule",
    "ResourceLifecycleRule",
    "ExceptionTaxonomyRule",
]
