"""Rule ``float-equality`` — no accidental ``==`` on floats in tests.

The equivalence suites built in PRs 1–3 assert *bit-for-bit* equality
on purpose (batched vs per-graph forward, resumed vs uninterrupted
sweep), but most float comparisons in tests are not that — they are
tolerance assertions written as ``==`` that pass today and flake after
any reordering of arithmetic.  This rule flags ``==`` / ``!=`` where an
operand is a float literal (or an explicit ``float(...)`` cast) in test
modules.  Intentional bit-exactness assertions stay, annotated
``# repro: allow[float-equality] — exact by construction`` so the
intent is visible at the assertion site; everything else should use
``pytest.approx`` / ``np.isclose``.

Scope: test modules only.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import Finding, ModuleSource, Rule, register_rule


def _is_float_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_operand(node.operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register_rule
class FloatEqualityRule(Rule):
    rule_id = "float-equality"
    description = (
        "tests compare floats with ==/!= only as pragma'd bit-exactness "
        "assertions; tolerance checks use pytest.approx / np.isclose"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        if not module.is_test:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_operand(left) or _is_float_operand(right):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "float equality comparison in a test; use "
                            "pytest.approx / np.isclose for tolerances, or "
                            "pragma an intentional bit-exactness assertion "
                            "(`# repro: allow[float-equality] — reason`)",
                        )
                    )
                    break
        return findings
