"""Rule ``determinism`` — no global-state RNG, no wall-clock in numerics.

The paper's 5-fold CV and Table II grid search are only reproducible if
every random draw flows from an explicitly-seeded generator
(``np.random.default_rng`` / ``SeedSequence``; seeds derive per fold via
``MODEL_SEED_STRIDE``).  A single ``np.random.rand`` or ``random.random``
call silently couples results to interpreter-global state — the survey
literature's most common reproducibility killer.  Wall-clock reads
(``time.time``, ``datetime.now``) in library code are flagged for the
same reason: durations belong to the monotonic clocks
(``time.perf_counter`` / ``time.monotonic``), which stay allowed.

Scope: library modules only (``is_test`` files are exempt).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    call_name,
    register_rule,
)

#: ``np.random`` members that construct explicitly-seeded generators.
SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)

#: ``random`` module members that are not draws from the global RNG.
RANDOM_MODULE_ALLOWED = frozenset({"Random"})

#: Wall-clock reads; monotonic clocks (perf_counter, monotonic) stay legal.
WALL_CLOCK_TIME = frozenset({"time", "time_ns", "ctime", "localtime"})
WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})


class _ImportTracker(ast.NodeVisitor):
    """Resolve which local names refer to random / numpy / time modules."""

    def __init__(self) -> None:
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_module_aliases: Set[str] = set()
        self.datetime_class_aliases: Set[str] = set()
        self.bare_time_fn: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                self.numpy_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_module_aliases.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "numpy" and alias.name == "random":
                self.numpy_random_aliases.add(bound)
            elif node.module == "datetime" and alias.name in ("datetime", "date"):
                self.datetime_class_aliases.add(bound)
            elif node.module == "time" and alias.name in WALL_CLOCK_TIME:
                self.bare_time_fn.add(bound)


@register_rule
class DeterminismRule(Rule):
    rule_id = "determinism"
    description = (
        "library code must draw randomness from seeded generators "
        "(np.random.default_rng / SeedSequence) and never read the wall clock"
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        if module.is_test:
            return []
        imports = _ImportTracker()
        imports.visit(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_name(node)
            if chain is None:
                continue
            findings.extend(self._check_call(module, node, chain, imports))
        return findings

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        chain: Tuple[str, ...],
        imports: _ImportTracker,
    ) -> Iterable[Finding]:
        dotted = ".".join(chain)
        head, tail = chain[0], chain[-1]
        # -- global RNG ------------------------------------------------
        if (
            len(chain) >= 2
            and head in imports.random_aliases
            and tail not in RANDOM_MODULE_ALLOWED
        ):
            yield self.finding(
                module,
                node,
                f"`{dotted}()` draws from the interpreter-global RNG; "
                "derive draws from a seeded np.random.Generator "
                "(np.random.default_rng / SeedSequence) instead",
            )
        if (
            len(chain) >= 3
            and head in imports.numpy_aliases
            and chain[1] == "random"
            and chain[2] not in SEEDED_CONSTRUCTORS
        ):
            yield self.finding(
                module,
                node,
                f"`{dotted}()` uses numpy's global RNG state; "
                "use np.random.default_rng(seed) / SeedSequence so the "
                "paper's CV folds and grid search stay reproducible",
            )
        if (
            len(chain) >= 2
            and head in imports.numpy_random_aliases
            and chain[1] not in SEEDED_CONSTRUCTORS
        ):
            yield self.finding(
                module,
                node,
                f"`{dotted}()` uses numpy's global RNG state; "
                "use default_rng(seed) / SeedSequence instead",
            )
        # -- wall clock ------------------------------------------------
        if (
            len(chain) >= 2
            and head in imports.time_aliases
            and tail in WALL_CLOCK_TIME
        ):
            yield self.finding(
                module,
                node,
                f"`{dotted}()` reads the wall clock in a numeric path; "
                "use time.perf_counter()/time.monotonic() for durations "
                "or inject a clock",
            )
        if len(chain) >= 2 and tail in WALL_CLOCK_DATETIME and (
            head in imports.datetime_module_aliases
            or head in imports.datetime_class_aliases
        ):
            yield self.finding(
                module,
                node,
                f"`{dotted}()` reads the wall clock in a numeric path; "
                "inject timestamps at the boundary instead",
            )
        if len(chain) == 1 and head in imports.bare_time_fn:
            yield self.finding(
                module,
                node,
                f"`{dotted}()` reads the wall clock in a numeric path; "
                "use time.perf_counter()/time.monotonic() instead",
            )
