"""AST-based static-analysis engine for project invariants.

Generic linters cannot check the invariants PRs 1–4 rely on —
deterministic seeding, picklability across the process-pool boundaries,
the structured :class:`~repro.exceptions.MagicError` taxonomy, staged
atomic writes, and lock discipline on shared serving counters.  This
engine walks Python sources, hands each parsed module to a registry of
:class:`Rule` subclasses, and applies ``# repro: allow[rule-id]``
pragma suppression plus an optional baseline file for incremental
adoption.  ``repro.cli lint`` is the front end; CI runs it over ``src``
and ``tests`` as a merge gate.
"""

from __future__ import annotations

import ast
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.callgraph import CallGraph
from repro.analysis.findings import Finding
from repro.analysis.pragmas import pragma_rules_by_line
from repro.exceptions import ConfigurationError

#: Directory names never descended into when walking a tree.  ``fixtures``
#: holds deliberately-violating sources for the rule tests.
SKIP_DIRECTORIES = frozenset(
    {"__pycache__", ".git", ".hg", ".venv", "node_modules", "fixtures"}
)

#: Rule id reserved for files that do not parse at all.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True)
class ModuleSource:
    """One parsed Python module plus the context rules need.

    ``slug`` is the display path with forward slashes, so rules can
    scope themselves by suffix (``slug.endswith("repro/datasets/cache.py")``)
    regardless of platform or how the path was spelled on the command
    line.  ``is_test`` gates rules that only apply to library code
    (taxonomy, determinism) or only to tests (float-equality).
    """

    path: str
    text: str
    tree: ast.Module
    slug: str
    is_test: bool


class Rule(ABC):
    """One project invariant, checked per module.

    Subclasses set ``rule_id`` (the pragma / ``--select`` name) and
    ``description`` (one line, shown by ``lint --list-rules`` and the
    DESIGN.md table), and yield :class:`Finding` objects from
    :meth:`check`.  Rules never see pragma or baseline state — the
    engine applies suppression uniformly afterwards.
    """

    rule_id: str = ""
    description: str = ""

    @abstractmethod
    def check(self, module: ModuleSource) -> Iterable[Finding]:
        """Yield every violation of this invariant in ``module``."""

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


@dataclass
class ProjectContext:
    """Everything a whole-program rule sees: modules plus the call graph."""

    modules: List[ModuleSource]
    graph: CallGraph
    _by_slug: Dict[str, ModuleSource] = field(init=False)

    def __post_init__(self) -> None:
        self._by_slug = {module.slug: module for module in self.modules}

    @classmethod
    def from_modules(cls, modules: Sequence[ModuleSource]) -> "ProjectContext":
        graph = CallGraph.build([(m.slug, m.tree) for m in modules])
        return cls(modules=list(modules), graph=graph)

    def source_for_slug(self, slug: str) -> Optional[ModuleSource]:
        return self._by_slug.get(slug)

    @property
    def library_modules(self) -> List[ModuleSource]:
        return [module for module in self.modules if not module.is_test]


class ProjectRule(Rule):
    """A rule that analyzes the whole project at once.

    Per-file rules see one module; interprocedural rules (lock ordering,
    fault contracts) need the cross-module call graph.  The engine runs
    :meth:`check_project` once over the full ``ProjectContext`` when
    linting paths, and over a single-module project when linting raw
    source (so fixture tests exercise these rules unchanged).
    """

    @abstractmethod
    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        """Yield every violation across the project."""

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        return self.check_project(ProjectContext.from_modules([module]))


# ----------------------------------------------------------------------
# registry

_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the engine's default set."""
    if not cls.rule_id:
        raise ConfigurationError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _RULES:
        raise ConfigurationError(f"duplicate rule id {cls.rule_id!r}")
    _RULES[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """All registered rules, importing the built-in set on first use."""
    from repro.analysis import rules as _builtin  # noqa: F401 — registration side effect

    return dict(_RULES)


# ----------------------------------------------------------------------
# engine


def _is_test_path(slug: str) -> bool:
    parts = slug.split("/")
    basename = parts[-1]
    return (
        "tests" in parts[:-1]
        or basename.startswith("test_")
        or basename == "conftest.py"
    )


@dataclass
class LintEngine:
    """Run a set of rules over files, directories, or raw source.

    ``jobs`` > 1 fans per-file rules over a process pool (finding order
    stays deterministic: results are merged and sorted).  ``cache_path``
    enables the sha256-keyed incremental cache: files whose content,
    rule selection, and analyzer version are unchanged skip re-analysis.
    Project-wide rules always run in the parent process over the full
    module set; their result is cached under a digest of the whole tree.
    """

    select: Optional[Sequence[str]] = None
    jobs: int = 1
    cache_path: Optional[str] = None
    _rules: List[Rule] = field(init=False)
    _file_rules: List[Rule] = field(init=False)
    _project_rules: List[Rule] = field(init=False)

    def __post_init__(self) -> None:
        available = registered_rules()
        if self.select is None:
            chosen = sorted(available)
        else:
            unknown = sorted(set(self.select) - set(available))
            if unknown:
                raise ConfigurationError(
                    f"unknown lint rule(s) {', '.join(unknown)}; "
                    f"available: {', '.join(sorted(available))}"
                )
            chosen = list(dict.fromkeys(self.select))
        self._rules = [available[rule_id]() for rule_id in chosen]
        self._file_rules = [
            rule for rule in self._rules if not isinstance(rule, ProjectRule)
        ]
        self._project_rules = [
            rule for rule in self._rules if isinstance(rule, ProjectRule)
        ]

    # -- discovery ----------------------------------------------------

    @staticmethod
    def discover(paths: Sequence[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files.

        Directories are walked recursively, skipping
        :data:`SKIP_DIRECTORIES`; explicitly named files are always
        included (which is how the fixture tests lint sources that live
        under an otherwise-skipped ``fixtures`` directory).
        """
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for root, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames if d not in SKIP_DIRECTORIES
                    )
                    files.extend(
                        os.path.join(root, name)
                        for name in sorted(filenames)
                        if name.endswith(".py")
                    )
            elif os.path.isfile(path):
                files.append(path)
            else:
                raise ConfigurationError(f"lint target {path!r} does not exist")
        return files

    # -- linting ------------------------------------------------------

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        from repro.analysis.cache import LintCache

        findings: List[Finding] = []
        modules: List[ModuleSource] = []
        digests: Dict[str, str] = {}
        for filename in self.discover(paths):
            with open(filename, "r", encoding="utf-8", errors="replace") as handle:
                text = handle.read()
            loaded = self._load_source(text, filename, None)
            if isinstance(loaded, Finding):
                findings.append(loaded)
                continue
            modules.append(loaded)
            digests[loaded.path] = LintCache.digest(text)

        cache = (
            LintCache.load(self.cache_path) if self.cache_path is not None else None
        )
        file_signature = ",".join(sorted(rule.rule_id for rule in self._file_rules))
        pending: List[ModuleSource] = []
        for module in modules:
            key = LintCache.file_key(
                module.path, digests[module.path], file_signature
            )
            cached = cache.get(key) if cache is not None else None
            if cached is not None:
                findings.extend(cached)
            else:
                pending.append(module)
        for module, module_findings in zip(
            pending, self._run_file_rules(pending)
        ):
            findings.extend(module_findings)
            if cache is not None:
                key = LintCache.file_key(
                    module.path, digests[module.path], file_signature
                )
                cache.put(key, module_findings)

        if self._project_rules and modules:
            project_signature = ",".join(
                sorted(rule.rule_id for rule in self._project_rules)
            )
            tree_key = LintCache.tree_key(
                [(module.path, digests[module.path]) for module in modules],
                project_signature,
            )
            cached = cache.get(tree_key) if cache is not None else None
            if cached is not None:
                findings.extend(cached)
            else:
                project_findings = self._run_project_rules(modules)
                findings.extend(project_findings)
                if cache is not None:
                    cache.put(tree_key, project_findings)

        if cache is not None:
            cache.save()
        return sorted(findings)

    def _run_file_rules(
        self, modules: Sequence[ModuleSource]
    ) -> List[List[Finding]]:
        """Per-file findings for each module, in input order."""
        if self.jobs > 1 and len(modules) > 1:
            from concurrent.futures import ProcessPoolExecutor

            rule_ids = tuple(rule.rule_id for rule in self._file_rules)
            tasks = [
                (module.path, module.text, rule_ids) for module in modules
            ]
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(_file_lint_worker, tasks))
        return [self._check_module(module) for module in modules]

    def _check_module(self, module: ModuleSource) -> List[Finding]:
        findings = [
            finding
            for rule in self._file_rules
            for finding in rule.check(module)
        ]
        return sorted(_suppress(findings, module.text))

    def _run_project_rules(
        self, modules: Sequence[ModuleSource]
    ) -> List[Finding]:
        project = ProjectContext.from_modules(modules)
        raw = [
            finding
            for rule in self._project_rules
            for finding in rule.check_project(project)
        ]
        allowed_by_path: Dict[str, Dict[int, FrozenSet[str]]] = {
            module.path: pragma_rules_by_line(module.text) for module in modules
        }
        return sorted(
            finding
            for finding in raw
            if finding.rule
            not in allowed_by_path.get(finding.path, {}).get(
                finding.line, frozenset()
            )
        )

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
        return self.lint_source(text, path)

    def lint_source(
        self, text: str, path: str, is_test: Optional[bool] = None
    ) -> List[Finding]:
        """Lint raw source presented as ``path``.

        ``path`` decides rule scoping (library vs test, allowlisted
        modules), so tests can present fixture text under any virtual
        location; ``is_test`` overrides the path-based classification.
        Project rules run over a single-module project here, so
        cross-module calls stay unresolved (conservative).
        """
        loaded = self._load_source(text, path, is_test)
        if isinstance(loaded, Finding):
            return [loaded]
        findings = list(self._check_module(loaded))
        if self._project_rules:
            findings.extend(self._run_project_rules([loaded]))
        return sorted(findings)

    @staticmethod
    def _load_source(
        text: str, path: str, is_test: Optional[bool]
    ) -> "ModuleSource | Finding":
        slug = path.replace(os.sep, "/")
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            return Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        return ModuleSource(
            path=path,
            text=text,
            tree=tree,
            slug=slug,
            is_test=_is_test_path(slug) if is_test is None else is_test,
        )


def _suppress(findings: Iterable[Finding], text: str) -> List[Finding]:
    allowed = pragma_rules_by_line(text)
    return [
        finding
        for finding in findings
        if finding.rule not in allowed.get(finding.line, frozenset())
    ]


def _file_lint_worker(
    task: Tuple[str, str, Tuple[str, ...]]
) -> List[Finding]:
    """Process-pool entry point: lint one file's text with per-file rules.

    Module-level (picklable) by design — the pool-safety rule applies to
    the analyzer itself.
    """
    path, text, rule_ids = task
    engine = LintEngine(select=list(rule_ids))
    return engine.lint_source(text, path)


# ----------------------------------------------------------------------
# shared AST helpers used by several rules


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chains as a name tuple; None when dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[Tuple[str, ...]]:
    return dotted_name(node.func)
