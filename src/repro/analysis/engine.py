"""AST-based static-analysis engine for project invariants.

Generic linters cannot check the invariants PRs 1–4 rely on —
deterministic seeding, picklability across the process-pool boundaries,
the structured :class:`~repro.exceptions.MagicError` taxonomy, staged
atomic writes, and lock discipline on shared serving counters.  This
engine walks Python sources, hands each parsed module to a registry of
:class:`Rule` subclasses, and applies ``# repro: allow[rule-id]``
pragma suppression plus an optional baseline file for incremental
adoption.  ``repro.cli lint`` is the front end; CI runs it over ``src``
and ``tests`` as a merge gate.
"""

from __future__ import annotations

import ast
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.findings import Finding
from repro.analysis.pragmas import pragma_rules_by_line
from repro.exceptions import ConfigurationError

#: Directory names never descended into when walking a tree.  ``fixtures``
#: holds deliberately-violating sources for the rule tests.
SKIP_DIRECTORIES = frozenset(
    {"__pycache__", ".git", ".hg", ".venv", "node_modules", "fixtures"}
)

#: Rule id reserved for files that do not parse at all.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True)
class ModuleSource:
    """One parsed Python module plus the context rules need.

    ``slug`` is the display path with forward slashes, so rules can
    scope themselves by suffix (``slug.endswith("repro/datasets/cache.py")``)
    regardless of platform or how the path was spelled on the command
    line.  ``is_test`` gates rules that only apply to library code
    (taxonomy, determinism) or only to tests (float-equality).
    """

    path: str
    text: str
    tree: ast.Module
    slug: str
    is_test: bool


class Rule(ABC):
    """One project invariant, checked per module.

    Subclasses set ``rule_id`` (the pragma / ``--select`` name) and
    ``description`` (one line, shown by ``lint --list-rules`` and the
    DESIGN.md table), and yield :class:`Finding` objects from
    :meth:`check`.  Rules never see pragma or baseline state — the
    engine applies suppression uniformly afterwards.
    """

    rule_id: str = ""
    description: str = ""

    @abstractmethod
    def check(self, module: ModuleSource) -> Iterable[Finding]:
        """Yield every violation of this invariant in ``module``."""

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


# ----------------------------------------------------------------------
# registry

_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the engine's default set."""
    if not cls.rule_id:
        raise ConfigurationError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _RULES:
        raise ConfigurationError(f"duplicate rule id {cls.rule_id!r}")
    _RULES[cls.rule_id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """All registered rules, importing the built-in set on first use."""
    from repro.analysis import rules as _builtin  # noqa: F401 — registration side effect

    return dict(_RULES)


# ----------------------------------------------------------------------
# engine


def _is_test_path(slug: str) -> bool:
    parts = slug.split("/")
    basename = parts[-1]
    return (
        "tests" in parts[:-1]
        or basename.startswith("test_")
        or basename == "conftest.py"
    )


@dataclass
class LintEngine:
    """Run a set of rules over files, directories, or raw source."""

    select: Optional[Sequence[str]] = None
    _rules: List[Rule] = field(init=False)

    def __post_init__(self) -> None:
        available = registered_rules()
        if self.select is None:
            chosen = sorted(available)
        else:
            unknown = sorted(set(self.select) - set(available))
            if unknown:
                raise ConfigurationError(
                    f"unknown lint rule(s) {', '.join(unknown)}; "
                    f"available: {', '.join(sorted(available))}"
                )
            chosen = list(dict.fromkeys(self.select))
        self._rules = [available[rule_id]() for rule_id in chosen]

    # -- discovery ----------------------------------------------------

    @staticmethod
    def discover(paths: Sequence[str]) -> List[str]:
        """Expand files/directories into a sorted list of ``.py`` files.

        Directories are walked recursively, skipping
        :data:`SKIP_DIRECTORIES`; explicitly named files are always
        included (which is how the fixture tests lint sources that live
        under an otherwise-skipped ``fixtures`` directory).
        """
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for root, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames if d not in SKIP_DIRECTORIES
                    )
                    files.extend(
                        os.path.join(root, name)
                        for name in sorted(filenames)
                        if name.endswith(".py")
                    )
            elif os.path.isfile(path):
                files.append(path)
            else:
                raise ConfigurationError(f"lint target {path!r} does not exist")
        return files

    # -- linting ------------------------------------------------------

    def lint_paths(self, paths: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for filename in self.discover(paths):
            findings.extend(self.lint_file(filename))
        return sorted(findings)

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            text = handle.read()
        return self.lint_source(text, path)

    def lint_source(
        self, text: str, path: str, is_test: Optional[bool] = None
    ) -> List[Finding]:
        """Lint raw source presented as ``path``.

        ``path`` decides rule scoping (library vs test, allowlisted
        modules), so tests can present fixture text under any virtual
        location; ``is_test`` overrides the path-based classification.
        """
        slug = path.replace(os.sep, "/")
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule=SYNTAX_ERROR_RULE,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        module = ModuleSource(
            path=path,
            text=text,
            tree=tree,
            slug=slug,
            is_test=_is_test_path(slug) if is_test is None else is_test,
        )
        allowed = pragma_rules_by_line(text)
        findings = [
            finding
            for rule in self._rules
            for finding in rule.check(module)
            if finding.rule not in allowed.get(finding.line, frozenset())
        ]
        return sorted(findings)


# ----------------------------------------------------------------------
# shared AST helpers used by several rules


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chains as a name tuple; None when dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[Tuple[str, ...]]:
    return dotted_name(node.func)
