"""Project-invariant static analysis (``repro.cli lint``).

An AST-based lint engine whose rules encode the invariants the training
/ sweep / extraction / serving stack depends on but no generic linter
can check: deterministic seeding, picklability across process
boundaries, the structured exception taxonomy, staged atomic writes,
float-equality discipline in tests, and lock discipline on shared
serving counters.  See ``docs/USAGE.md`` §12 for the workflow and
DESIGN.md for the rule-to-invariant table.
"""

from __future__ import annotations

from repro.analysis.engine import (
    LintEngine,
    ModuleSource,
    Rule,
    register_rule,
    registered_rules,
)
from repro.analysis.findings import (
    Finding,
    apply_baseline,
    findings_to_json,
    format_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.pragmas import pragma_rules_by_line

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleSource",
    "Rule",
    "apply_baseline",
    "findings_to_json",
    "format_findings",
    "load_baseline",
    "pragma_rules_by_line",
    "register_rule",
    "registered_rules",
    "write_baseline",
]
