"""Project-invariant static analysis (``repro.cli lint``).

An AST-based lint engine whose rules encode the invariants the training
/ sweep / extraction / serving stack depends on but no generic linter
can check: deterministic seeding, picklability across process
boundaries, the structured exception taxonomy, staged atomic writes,
float-equality discipline in tests, and lock discipline on shared
serving counters.  The flow-aware core adds per-function control-flow
graphs (:mod:`repro.analysis.cfg`), a project-wide call graph
(:mod:`repro.analysis.callgraph`), and interprocedural rules over both:
lock-ordering/deadlock analysis, fault-boundary exception contracts,
and CFG path proofs for resource release.  See ``docs/USAGE.md`` §12
for the workflow and DESIGN.md for the rule-to-invariant table.
"""

from __future__ import annotations

from repro.analysis.cache import LintCache, engine_fingerprint
from repro.analysis.callgraph import CallGraph, FunctionInfo, ModuleInfo
from repro.analysis.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.engine import (
    LintEngine,
    ModuleSource,
    ProjectContext,
    ProjectRule,
    Rule,
    register_rule,
    registered_rules,
)
from repro.analysis.findings import (
    Finding,
    apply_baseline,
    findings_to_json,
    format_findings,
    format_findings_github,
    load_baseline,
    write_baseline,
)
from repro.analysis.pragmas import pragma_rules_by_line

__all__ = [
    "BasicBlock",
    "CallGraph",
    "ControlFlowGraph",
    "Finding",
    "FunctionInfo",
    "LintCache",
    "LintEngine",
    "ModuleInfo",
    "ModuleSource",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "apply_baseline",
    "build_cfg",
    "engine_fingerprint",
    "findings_to_json",
    "format_findings",
    "format_findings_github",
    "load_baseline",
    "pragma_rules_by_line",
    "register_rule",
    "registered_rules",
    "write_baseline",
]
