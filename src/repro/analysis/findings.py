"""Findings and baselines for the project-invariant lint engine.

A :class:`Finding` is one rule violation at one source location.  Its
*baseline identity* deliberately excludes the line number: a baseline
records pre-existing debt so incremental adoption does not require
fixing the whole tree at once, and line numbers drift on every edit.
Two findings with the same (rule, path, message) are matched by count —
a file may legitimately carry N identical violations, and fixing one of
them must surface the baseline shrinkage.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from typing import Any, Dict, List, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Baseline schema version; bumped on incompatible format changes.
BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, str]


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def baseline_key(self) -> BaselineKey:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a tally."""
    lines = [finding.format() for finding in findings]
    counts: Counter[str] = Counter(finding.rule for finding in findings)
    tally = ", ".join(f"{rule}: {count}" for rule, count in sorted(counts.items()))
    lines.append(f"{len(findings)} finding(s)" + (f" ({tally})" if tally else ""))
    return "\n".join(lines)


def _escape_annotation(value: str) -> str:
    """Escape message data for a GitHub Actions workflow command."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _escape_property(value: str) -> str:
    """Escape a workflow-command property (also `:` and `,`)."""
    return _escape_annotation(value).replace(":", "%3A").replace(",", "%2C")


def format_findings_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions ``::error`` annotations, one per finding.

    Emitted on stdout inside a workflow step, these surface as inline
    annotations on the pull-request diff — no plugin needed.
    """
    lines = [
        "::error file={path},line={line},col={col},title={title}::{message}".format(
            path=_escape_property(finding.path),
            line=finding.line,
            col=finding.col,
            title=_escape_property(f"repro lint [{finding.rule}]"),
            message=_escape_annotation(finding.message),
        )
        for finding in findings
    ]
    return "\n".join(lines)


def findings_to_json(findings: Sequence[Finding]) -> Dict[str, Any]:
    """JSON-ready payload: the findings plus a per-rule count summary."""
    counts: Counter[str] = Counter(finding.rule for finding in findings)
    return {
        "version": BASELINE_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "counts": dict(sorted(counts.items())),
    }


# ----------------------------------------------------------------------
# baseline files


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Record the current findings as accepted debt."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": finding.rule, "path": finding.path, "message": finding.message}
            for finding in sorted(findings)
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> "Counter[BaselineKey]":
    """Baseline entries as a multiset of line-insensitive keys."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read lint baseline {path!r}: {exc}")
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"lint baseline {path!r} has an unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    accepted: Counter[BaselineKey] = Counter()
    for entry in payload.get("findings", []):
        try:
            accepted[(entry["rule"], entry["path"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise ConfigurationError(
                f"lint baseline {path!r} has a malformed entry {entry!r}: {exc}"
            )
    return accepted


def apply_baseline(
    findings: Sequence[Finding], accepted: "Counter[BaselineKey]"
) -> List[Finding]:
    """Drop findings covered by the baseline multiset (count-aware)."""
    budget: Counter[BaselineKey] = Counter(accepted)
    remaining: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget[key] > 0:
            budget[key] -= 1
        else:
            remaining.append(finding)
    return remaining
