"""Intraprocedural control-flow graphs over Python AST.

The PR-5 lint rules are per-file pattern matchers; the concurrency and
resource rules need to reason about *paths* — can this statement
execute while that lock is held, does every path from an acquisition
reach a release, can this exception escape the enclosing boundary.
This module builds a statement-precise CFG for one function:

* **One statement per basic block.**  Exception edges are attached per
  statement, so "the ``open()`` succeeded but the next line raised" is
  a distinct path from "the ``open()`` itself raised".
* **Branch / loop / try edges.**  ``if``/``while``/``for`` headers get
  ``true``/``false`` edges, loop bodies get back edges, ``break`` /
  ``continue`` / ``return`` / ``raise`` get dedicated edge kinds.
* **Exception edges.**  Every statement that can plausibly raise gets
  an ``exception`` edge to the innermost handler dispatch (or to the
  synthetic ``raise_exit`` block when nothing catches).  Handler
  dispatch only stops propagation when some handler is a catch-all
  (bare / ``Exception`` / ``BaseException``).
* **``finally`` routing.**  ``finally`` bodies are cloned per jump
  kind (fall-through, exception, return, break, continue), so a
  ``return`` inside ``try`` demonstrably passes through the cleanup
  before reaching the function exit — which is exactly the property
  the resource-lifecycle rule proves.
* **``with`` regions.**  Each ``with`` item records the block set of
  its body, so lock rules know which statements run under which
  context manager.

The graph is conservative by construction: unknown constructs become
plain statement blocks with exception edges, never silently dropped
flow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
WithNode = Union[ast.With, ast.AsyncWith]

#: Exception-name sets treated as catching everything.
CATCH_ALL_NAMES = frozenset({"Exception", "BaseException"})

#: Statement types that cannot raise at runtime (no exception edge).
_NON_RAISING = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


@dataclass
class BasicBlock:
    """One CFG node: at most one source statement plus a label."""

    block_id: int
    label: str
    statements: List[ast.stmt] = field(default_factory=list)
    lineno: int = 0

    @property
    def statement(self) -> Optional[ast.stmt]:
        return self.statements[0] if self.statements else None


@dataclass(frozen=True)
class WithRegion:
    """One ``with`` item and the blocks executing under it."""

    node: ast.stmt
    item: ast.withitem
    header_block: int
    body_blocks: FrozenSet[int]


@dataclass
class ControlFlowGraph:
    """Statement-precise CFG for one function body."""

    entry: int
    exit_block: int
    raise_exit: int
    blocks: Dict[int, BasicBlock]
    edges: Dict[int, List[Tuple[int, str]]]
    with_regions: List[WithRegion]
    stmt_blocks: Dict[int, List[int]] = field(default_factory=dict)

    def successors(self, block_id: int) -> Sequence[Tuple[int, str]]:
        return self.edges.get(block_id, [])

    def blocks_for(self, stmt: ast.stmt) -> List[int]:
        """Blocks holding ``stmt`` (``finally`` cloning can yield several)."""
        return list(self.stmt_blocks.get(id(stmt), []))

    def reachable_from(
        self, start: int, avoid: FrozenSet[int] = frozenset()
    ) -> Set[int]:
        """Blocks reachable from ``start`` without entering ``avoid``."""
        seen: Set[int] = set()
        stack: List[int] = [start]
        while stack:
            block = stack.pop()
            if block in seen or block in avoid:
                continue
            seen.add(block)
            for target, _kind in self.successors(block):
                stack.append(target)
        return seen

    def find_path(
        self,
        starts: Sequence[int],
        targets: FrozenSet[int],
        avoid: FrozenSet[int] = frozenset(),
    ) -> Optional[List[int]]:
        """Shortest path from any start to any target skipping ``avoid``.

        Returns the block-id path (start..target) or ``None``.  This is
        the primitive behind "a path reaches the function exit without
        passing a release".
        """
        parents: Dict[int, Optional[int]] = {}
        queue: List[int] = []
        for start in starts:
            if start in avoid or start in parents:
                continue
            parents[start] = None
            queue.append(start)
        index = 0
        while index < len(queue):
            block = queue[index]
            index += 1
            if block in targets:
                path: List[int] = []
                cursor: Optional[int] = block
                while cursor is not None:
                    path.append(cursor)
                    cursor = parents[cursor]
                path.reverse()
                return path
            for target, _kind in self.successors(block):
                if target in avoid or target in parents:
                    continue
                parents[target] = block
                queue.append(target)
        return None


@dataclass(frozen=True)
class _Context:
    """Where the non-local edge kinds flow at the current nesting."""

    exc: int
    ret: int
    brk: Optional[int] = None
    cont: Optional[int] = None


def handler_catches_all(handler: ast.ExceptHandler) -> bool:
    """True when the handler stops any exception (bare or broad)."""
    if handler.type is None:
        return True
    candidates: List[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for candidate in candidates:
        name: Optional[str] = None
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        if name in CATCH_ALL_NAMES:
            return True
    return False


class _Builder:
    def __init__(self) -> None:
        self._next_id = 0
        self.blocks: Dict[int, BasicBlock] = {}
        self.edges: Dict[int, List[Tuple[int, str]]] = {}
        self.with_regions: List[WithRegion] = []
        self.stmt_blocks: Dict[int, List[int]] = {}
        #: Dangling (block, edge-kind) pairs awaiting the next placed block.
        self._preds: List[Tuple[int, str]] = []

    # -- graph primitives ---------------------------------------------

    def new_block(
        self, label: str, stmt: Optional[ast.stmt] = None, lineno: int = 0
    ) -> int:
        block_id = self._next_id
        self._next_id += 1
        statements: List[ast.stmt] = []
        if stmt is not None:
            statements.append(stmt)
            lineno = stmt.lineno
            self.stmt_blocks.setdefault(id(stmt), []).append(block_id)
        self.blocks[block_id] = BasicBlock(
            block_id=block_id, label=label, statements=statements, lineno=lineno
        )
        return block_id

    def edge(self, src: int, dst: int, kind: str) -> None:
        targets = self.edges.setdefault(src, [])
        if (dst, kind) not in targets:
            targets.append((dst, kind))

    def place(self, block_id: int) -> None:
        """Connect every dangling predecessor to ``block_id``."""
        for src, kind in self._preds:
            self.edge(src, block_id, kind)
        self._preds = [(block_id, "next")]

    # -- statement dispatch -------------------------------------------

    def seq(self, stmts: Sequence[ast.stmt], ctx: _Context) -> None:
        for stmt in stmts:
            self.statement(stmt, ctx)

    def statement(self, stmt: ast.stmt, ctx: _Context) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt, ctx)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt, ctx)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, ctx)
        elif isinstance(stmt, ast.Try):
            self._try(stmt, ctx)
        elif isinstance(stmt, ast.Match):
            self._match(stmt, ctx)
        else:
            self._simple(stmt, ctx)

    def _simple(self, stmt: ast.stmt, ctx: _Context) -> None:
        block = self.new_block(type(stmt).__name__, stmt)
        self.place(block)
        if not isinstance(stmt, _NON_RAISING):
            self.edge(block, ctx.exc, "exception")
        if isinstance(stmt, ast.Return):
            self.edge(block, ctx.ret, "return")
            self._preds = []
        elif isinstance(stmt, ast.Raise):
            self.edge(block, ctx.exc, "raise")
            self._preds = []
        elif isinstance(stmt, ast.Break):
            if ctx.brk is not None:
                self.edge(block, ctx.brk, "break")
            self._preds = []
        elif isinstance(stmt, ast.Continue):
            if ctx.cont is not None:
                self.edge(block, ctx.cont, "continue")
            self._preds = []

    def _if(self, stmt: ast.If, ctx: _Context) -> None:
        header = self.new_block("if", stmt)
        self.place(header)
        self.edge(header, ctx.exc, "exception")
        self._preds = [(header, "true")]
        self.seq(stmt.body, ctx)
        body_ends = self._preds
        self._preds = [(header, "false")]
        self.seq(stmt.orelse, ctx)
        self._preds = body_ends + self._preds

    def _loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], ctx: _Context
    ) -> None:
        header = self.new_block(type(stmt).__name__.lower(), stmt)
        self.place(header)
        self.edge(header, ctx.exc, "exception")
        loop_exit = self.new_block("loop-exit", lineno=stmt.lineno)
        loop_ctx = replace(ctx, brk=loop_exit, cont=header)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        self._preds = [(header, "true")]
        self.seq(stmt.body, loop_ctx)
        for src, kind in self._preds:
            self.edge(src, header, "loop" if kind == "next" else kind)
        self._preds = []
        if not infinite:
            self._preds = [(header, "false")]
            self.seq(stmt.orelse, ctx)
        self._preds.append((loop_exit, "next"))

    def _with(self, stmt: WithNode, ctx: _Context) -> None:
        header = self.new_block("with", stmt)
        self.place(header)
        self.edge(header, ctx.exc, "exception")
        first_body_id = self._next_id
        self.seq(stmt.body, ctx)
        body_blocks = frozenset(range(first_body_id, self._next_id))
        for item in stmt.items:
            self.with_regions.append(
                WithRegion(
                    node=stmt,
                    item=item,
                    header_block=header,
                    body_blocks=body_blocks,
                )
            )

    def _match(self, stmt: ast.Match, ctx: _Context) -> None:
        header = self.new_block("match", stmt)
        self.place(header)
        self.edge(header, ctx.exc, "exception")
        ends: List[Tuple[int, str]] = [(header, "next")]
        for case in stmt.cases:
            self._preds = [(header, "case")]
            self.seq(case.body, ctx)
            ends.extend(self._preds)
        self._preds = ends

    def _try(self, stmt: ast.Try, ctx: _Context) -> None:
        incoming = self._preds
        if stmt.finalbody:
            inner_ctx = _Context(
                exc=self._finally_clone(stmt, ctx, ctx.exc, "exception"),
                ret=self._finally_clone(stmt, ctx, ctx.ret, "return"),
                brk=(
                    self._finally_clone(stmt, ctx, ctx.brk, "break")
                    if ctx.brk is not None
                    else None
                ),
                cont=(
                    self._finally_clone(stmt, ctx, ctx.cont, "continue")
                    if ctx.cont is not None
                    else None
                ),
            )
        else:
            inner_ctx = ctx

        if stmt.handlers:
            dispatch = self.new_block("except-dispatch", lineno=stmt.lineno)
            body_ctx = replace(inner_ctx, exc=dispatch)
        else:
            dispatch = -1
            body_ctx = inner_ctx

        self._preds = incoming
        self.seq(stmt.body, body_ctx)
        if stmt.orelse:
            self.seq(stmt.orelse, inner_ctx)
        ends = list(self._preds)

        if stmt.handlers:
            caught_all = False
            for handler in stmt.handlers:
                entry = self.new_block("except", lineno=handler.lineno)
                self.edge(dispatch, entry, "exception")
                self._preds = [(entry, "next")]
                self.seq(handler.body, inner_ctx)
                ends.extend(self._preds)
                if handler_catches_all(handler):
                    caught_all = True
            if not caught_all:
                self.edge(dispatch, inner_ctx.exc, "exception")

        if stmt.finalbody:
            norm_entry = self.new_block("finally", lineno=stmt.finalbody[0].lineno)
            self._preds = ends
            self.place(norm_entry)
            self.seq(stmt.finalbody, ctx)
        else:
            self._preds = ends

    def _finally_clone(
        self, stmt: ast.Try, ctx: _Context, target: int, kind: str
    ) -> int:
        """Clone the ``finally`` body routing ``kind`` edges to ``target``."""
        entry = self.new_block(
            f"finally[{kind}]", lineno=stmt.finalbody[0].lineno
        )
        saved = self._preds
        self._preds = [(entry, "next")]
        self.seq(stmt.finalbody, ctx)
        for src, end_kind in self._preds:
            self.edge(src, target, kind if end_kind == "next" else end_kind)
        self._preds = saved
        return entry


def build_cfg(func: FunctionNode) -> ControlFlowGraph:
    """Build the CFG of ``func``'s body (nested defs are opaque blocks)."""
    builder = _Builder()
    entry = builder.new_block("entry", lineno=func.lineno)
    exit_block = builder.new_block("exit", lineno=func.lineno)
    raise_exit = builder.new_block("raise-exit", lineno=func.lineno)
    builder._preds = [(entry, "next")]
    ctx = _Context(exc=raise_exit, ret=exit_block)
    builder.seq(func.body, ctx)
    for src, kind in builder._preds:
        builder.edge(src, exit_block, kind)
    return ControlFlowGraph(
        entry=entry,
        exit_block=exit_block,
        raise_exit=raise_exit,
        blocks=builder.blocks,
        edges=builder.edges,
        with_regions=builder.with_regions,
        stmt_blocks=builder.stmt_blocks,
    )


def iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function/method in ``tree``, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
