"""Command-line interface for MAGIC.

Mirrors the deployment story of Section VII — train on labelled corpora,
then classify unknown binaries' listings — as four subcommands:

* ``info``     — parse a listing, print CFG structure and metrics.
* ``extract``  — batch-convert listings to cached CFG JSON files.
* ``train``    — train a MAGIC instance on a synthetic corpus (or a
  directory of cached CFGs named ``<family>__<id>.json``) and persist it,
  optionally publishing an integrity-checked archive to a registry.
* ``predict``  — classify listings with a persisted model.
* ``classify`` — classify listings through the serving engine
  (registry archives, per-request failure kinds, prediction cache).
* ``dedup``    — report (or drop) near-duplicate samples in an
  extracted corpus using the topology-aware CFG fingerprints of
  :mod:`repro.similarity`.
* ``serve``    — run the HTTP classification service (``/classify``,
  ``/healthz``, ``/metrics``): single-process micro-batching by
  default, or a multi-process fleet of model replicas with
  ``--workers N``.
* ``rollout``  — drive a running fleet's zero-downtime model rollout
  (``start``/``status``/``promote``/``rollback`` against the server's
  ``/rollout/*`` endpoints).
* ``attack``   — adversarial robustness: feature-space PGD (and
  optionally the problem-space re-obfuscation attack) against a
  persisted model, reported per family.
* ``sweep``    — Table II-style hyper-parameter sweep with ``--n-jobs``
  process-pool parallelism and ``--journal``/``--resume`` checkpointing.
* ``lint``     — project-invariant static analysis (``repro.analysis``):
  determinism, pool-safety, exception taxonomy, atomic writes,
  float-equality, lock discipline; pragma and baseline aware.

Run ``python -m repro.cli --help`` for usage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.asm.parser import AsmParser
from repro.cfg.builder import CfgBuilder
from repro.cfg.metrics import compute_cfg_metrics, to_dot
from repro.cfg.serialization import load_cfg
from repro.core.dgcnn import ModelConfig
from repro.core.magic import Magic
from repro.exceptions import MagicError
from repro.features.acfg import ACFG
from repro.train.trainer import TrainingConfig


def _build_cfg_from_file(path: str):
    parser = AsmParser()
    program = parser.parse_file(path)
    builder = CfgBuilder(resolve_target=parser.resolve_target)
    return builder.build(program, name=os.path.basename(path))


# ----------------------------------------------------------------------
# subcommands


def cmd_info(args: argparse.Namespace) -> int:
    cfg = _build_cfg_from_file(args.listing)
    metrics = compute_cfg_metrics(cfg)
    print(f"{args.listing}:")
    for key, value in metrics.as_dict().items():
        print(f"  {key:24s} {value}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(cfg, include_instructions=args.verbose))
        print(f"  DOT written to {args.dot}")
    return 0


def cmd_extract(args: argparse.Namespace) -> int:
    """Batch-convert listings to cached CFG JSON, fault-tolerantly.

    Runs on the extraction service: ``--n-jobs``/``--timeout`` use the
    supervised process pool (hung listings are killed, crashed workers
    cost one sample), ``--journal``/``--resume`` give SIGKILL-and-resume
    for long corpora, ``--max-vertices`` guards against pathological
    graphs, and ``--quarantine`` preserves failing inputs for triage.
    """
    from repro.features.pipeline import AcfgPipeline

    os.makedirs(args.output, exist_ok=True)
    items = []
    for path in args.listings:
        base = os.path.splitext(os.path.basename(path))[0]
        destination = os.path.join(args.output, base + ".json")
        items.append((base, {"path": path, "destination": destination}, None))

    pipeline = AcfgPipeline(
        max_workers=args.n_jobs,
        use_processes=args.n_jobs > 1 or args.timeout is not None,
        timeout=args.timeout,
        max_vertices=args.max_vertices,
        journal_path=args.journal,
        resume=args.resume,
        quarantine_dir=args.quarantine,
    )
    report = pipeline.run_units(items, "cfg-json")
    for index, _, summary in report.results:
        print(f"{items[index][1]['path']} -> {summary['destination']} "
              f"({summary['num_vertices']} blocks, "
              f"{summary['num_edges']} edges)")
    for failure in report.failures:
        print(f"FAILED {items[failure.index][1]['path']} "
              f"[{failure.kind.value}]: {failure.detail}", file=sys.stderr)
    if report.resumed_samples:
        print(f"(resumed {report.resumed_samples} samples from "
              f"{args.journal})")
    return 1 if report.failures else 0


def _load_cfg_corpus(directory: str):
    """Load ``<family>__<id>.json`` CFGs into a labelled dataset."""
    from repro.datasets.loader import MalwareDataset

    families: List[str] = []
    acfgs = []
    records = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        family = filename.split("__", 1)[0]
        if family not in families:
            families.append(family)
        records.append((os.path.join(directory, filename), family))
    for path, family in records:
        cfg = load_cfg(path)
        acfgs.append(ACFG.from_cfg(cfg, label=families.index(family)))
    if not acfgs:
        raise MagicError(f"no CFG JSON files found in {directory}")
    return MalwareDataset(acfgs=acfgs, family_names=families)


def cmd_train(args: argparse.Namespace) -> int:
    if args.cfg_dir:
        dataset = _load_cfg_corpus(args.cfg_dir)
    elif args.dataset == "mskcfg":
        from repro.datasets import generate_mskcfg_dataset

        dataset = generate_mskcfg_dataset(
            total=args.total, seed=args.seed, minimum_per_family=8
        )
    else:
        from repro.datasets import generate_yancfg_dataset

        dataset = generate_yancfg_dataset(
            total=args.total, seed=args.seed, minimum_per_family=8
        )

    train, validation = dataset.stratified_split(0.2, seed=args.seed)
    config = ModelConfig(
        num_attributes=dataset.acfgs[0].num_attributes,
        num_classes=dataset.num_classes,
        pooling=args.pooling,
        graph_conv_sizes=(32, 32, 32, 32),
        amp_grid=(3, 3),
        conv2d_channels=16,
        sort_k=10,
        hidden_size=64,
        dropout=0.1,
        seed=args.seed,
    )
    magic = Magic(config, dataset.family_names)
    adversarial = None
    if args.adversarial:
        from repro.train.trainer import AdversarialConfig

        adversarial = AdversarialConfig(
            steps=args.attack_steps,
            epsilon=args.attack_epsilon,
            weight=args.attack_weight,
        )
        print(f"Adversarial training: {args.attack_steps}-step inner PGD, "
              f"epsilon={args.attack_epsilon}, weight={args.attack_weight} "
              "(eager path)")
    print(f"Training on {len(train)} samples "
          f"({dataset.num_classes} families, {args.epochs} epochs)...")
    history = magic.fit(
        train.acfgs,
        validation.acfgs,
        TrainingConfig(epochs=args.epochs, batch_size=10,
                       learning_rate=3e-3, compiled=args.compiled,
                       seed=args.seed, adversarial=adversarial),
    )
    report = magic.evaluate(validation.acfgs)
    print(report.format_table())
    print(f"Best epoch {history.best_epoch} "
          f"(validation loss {history.best_validation_loss:.4f})")
    magic.save(args.model_dir)
    print(f"Model saved to {args.model_dir}")
    if args.registry:
        from repro.serve import publish

        info = publish(magic, args.registry,
                       args.model_name or args.dataset)
        print(f"Published archive {info.describe()} to {info.path}")
    return 0


def _serving_engine(args: argparse.Namespace):
    """Build the ``InferenceEngine`` shared by ``classify`` and ``serve``."""
    from repro.serve import InferenceEngine

    kwargs = {
        "max_vertices": args.max_vertices,
        "compiled": args.compiled,
        "infer_dtype": args.infer_dtype,
        "similar_threshold": args.similar_threshold,
    }
    if args.cache_size is not None:
        kwargs["cache_size"] = args.cache_size
    if args.fingerprint_iterations is not None:
        kwargs["fingerprint_iterations"] = args.fingerprint_iterations
    if args.model_dir:
        return InferenceEngine.from_archive(args.model_dir, **kwargs)
    if not (args.registry and args.model):
        raise MagicError(
            "pass either --model-dir, or --registry with --model NAME[@VERSION]"
        )
    name, _, version = args.model.partition("@")
    return InferenceEngine.from_registry(
        args.registry, name, version or None, **kwargs
    )


def cmd_classify(args: argparse.Namespace) -> int:
    """Classify listings through the serving engine, one batched forward.

    Unlike ``predict`` this runs on the online-serving path: archives
    come from the integrity-checked registry, repeated inputs hit the
    content-hash prediction cache, and a malformed listing is reported
    with its structured failure kind (``[parse]``, ``[oversize]``, ...)
    without poisoning the rest of the batch.
    """
    engine = _serving_engine(args)
    samples = []
    for path in args.listings:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            samples.append((path, handle.read()))
    results = engine.classify_texts(samples)
    status = 0
    for result in results:
        if result.failure is not None:
            print(f"FAILED {result.name} [{result.failure.kind.value}]: "
                  f"{result.failure.detail}", file=sys.stderr)
            status = 1
        else:
            if result.similar and result.similarity is not None:
                suffix = f" (similar {result.similarity:.3f})"
            elif result.cached:
                suffix = " (cached)"
            else:
                suffix = ""
            print(f"{result.name}: {result.family} "
                  f"(confidence {result.confidence:.3f}){suffix}")
    return status


def cmd_dedup(args: argparse.Namespace) -> int:
    """Report (or drop) near-duplicates in an extracted dataset cache.

    Runs the same topology-aware fingerprint the serving similarity
    tier uses over every sample of a ``save_dataset`` corpus.  Dropped
    members print one ``DROPPED <name> [near-duplicate]: ...`` line
    each to stderr — mirroring ``extract``'s quarantine-style failure
    listing — and the command exits 1 when duplicates were found but
    not applied, so pipelines can gate on a clean corpus.  ``--apply``
    rewrites the cache atomically, keeping each cluster's first-seen
    keeper.
    """
    import json

    from repro.datasets.cache import load_dataset, save_dataset
    from repro.datasets.loader import MalwareDataset
    from repro.similarity import find_near_duplicates

    dataset = load_dataset(args.cache_dir)
    kwargs = {}
    if args.threshold is not None:
        kwargs["threshold"] = args.threshold
    if args.iterations is not None:
        kwargs["iterations"] = args.iterations
    report = find_near_duplicates(dataset.acfgs, **kwargs)
    for cluster in report.clusters:
        for member in cluster.members:
            print(f"DROPPED {member.name} [near-duplicate]: "
                  f"estimated Jaccard {member.similarity:.3f} vs "
                  f"{cluster.keeper_name}", file=sys.stderr)
    print(f"{args.cache_dir}: {report.total} samples, "
          f"{report.num_kept} kept, {report.num_dropped} near-duplicates "
          f"in {len(report.clusters)} clusters "
          f"(threshold {report.threshold})")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.output}")
    if not report.num_dropped:
        return 0
    if not args.apply:
        return 1
    kept = [dataset.acfgs[index] for index in report.kept_indices]
    save_dataset(
        MalwareDataset(acfgs=kept, family_names=dataset.family_names,
                       name=dataset.name),
        args.cache_dir,
    )
    print(f"rewrote {args.cache_dir} with {len(kept)} samples")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP classification service (single-process or fleet).

    ``--workers 0`` (the default) keeps the original single-process
    path: one engine behind one micro-batcher.  ``--workers N`` starts
    N model-replica worker processes behind the fleet dispatcher
    (least-loaded routing, per-worker batching, SIGKILL+respawn
    supervision) and enables the ``/rollout/*`` endpoints.
    """
    if args.workers > 0:
        from repro.serve import FleetDispatcher, build_fleet_server

        if args.model_dir or not (args.registry and args.model):
            raise MagicError(
                "--workers N requires --registry and --model: fleet "
                "replicas each load a verified archive from the registry"
            )
        name, _, version = args.model.partition("@")
        fleet_kwargs = {}
        if args.cache_size is not None:
            fleet_kwargs["cache_size"] = args.cache_size
        dispatcher = FleetDispatcher(
            args.registry,
            name,
            version or None,
            num_workers=args.workers,
            max_batch_size=args.max_batch_size,
            batch_timeout=args.batch_timeout,
            max_vertices=args.max_vertices,
            similar_threshold=args.similar_threshold,
            fingerprint_iterations=args.fingerprint_iterations,
            compiled=args.compiled,
            infer_dtype=args.infer_dtype,
            **fleet_kwargs,
        )
        server = build_fleet_server(
            dispatcher,
            host=args.host,
            port=args.port,
            request_timeout=args.request_timeout,
            quiet=not args.verbose,
            include_margin=args.include_margin,
        )
        print(f"Serving {dispatcher.describe_model()} on "
              f"http://{args.host}:{server.port} "
              f"(fleet: {args.workers} workers, "
              f"max_batch_size={args.max_batch_size})")
        print("Endpoints: POST /classify, GET /healthz, GET /metrics, "
              "POST /rollout/start|promote|rollback, GET /rollout/status")
    else:
        from repro.serve import build_server

        engine = _serving_engine(args)
        server = build_server(
            engine,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            request_timeout=args.request_timeout,
            quiet=not args.verbose,
            include_margin=args.include_margin,
        )
        described = (engine.model_info.describe()
                     if engine.model_info else "in-process model")
        print(f"Serving {described} on http://{args.host}:{server.port} "
              f"(max_batch_size={args.max_batch_size}, "
              f"max_wait_ms={args.max_wait_ms})")
        print("Endpoints: POST /classify, GET /healthz, GET /metrics")
    try:
        server.serve()
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_rollout(args: argparse.Namespace) -> int:
    """Drive a running fleet's ``/rollout/*`` control surface over HTTP."""
    import json
    import time
    from urllib import error as urlerror
    from urllib import request as urlrequest

    base = args.url.rstrip("/")

    def call(method: str, path: str, payload=None):
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(
            base + path, data=data, headers=headers, method=method
        )
        try:
            with urlrequest.urlopen(req, timeout=args.http_timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                body = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                body = {"error": raw}
            return exc.code, body
        except urlerror.URLError as exc:
            raise MagicError(
                f"cannot reach the serve endpoint at {base}: {exc.reason}"
            ) from exc

    if args.action == "start":
        if not args.version:
            raise MagicError("rollout start requires --version")
        payload = {"version": args.version}
        if args.num_workers is not None:
            payload["num_workers"] = args.num_workers
        if args.shadow_fraction is not None:
            payload["shadow_fraction"] = args.shadow_fraction
        if args.min_samples is not None:
            payload["min_samples"] = args.min_samples
        if args.min_parity is not None:
            payload["min_parity"] = args.min_parity
        if args.max_latency_ratio is not None:
            payload["max_latency_ratio"] = args.max_latency_ratio
        if args.manual:
            payload["auto"] = False
        status, body = call("POST", "/rollout/start", payload)
    elif args.action == "status":
        status, body = call("GET", "/rollout/status")
    else:  # promote / rollback
        status, body = call("POST", f"/rollout/{args.action}")

    print(json.dumps(body, indent=2))
    if status >= 400:
        return 1
    if args.action == "start" and args.watch:
        deadline = time.monotonic() + args.watch
        while time.monotonic() < deadline:
            time.sleep(args.interval)
            status, body = call("GET", "/rollout/status")
            state = body.get("state")
            report = body.get("report") or {}
            print(f"state={state} completed={report.get('completed')} "
                  f"parity={report.get('parity')} "
                  f"latency_ratio={report.get('latency_ratio')}")
            if state != "shadowing":
                print(json.dumps(body, indent=2))
                return 0 if state == "promoted" else 1
        print("watch window elapsed while still shadowing", file=sys.stderr)
        return 1
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Grid-search a reduced Table II sweep, optionally in parallel.

    Each (setting, fold) pair is an independent work unit; ``--n-jobs``
    fans them over a process pool and ``--journal`` checkpoints every
    completed fold so ``--resume`` skips finished work after an
    interruption.  Results are identical to a serial run.
    """
    import json

    from repro.train import GridSearch, reduced_table2_grid, setting_key

    if args.dataset == "mskcfg":
        from repro.datasets import generate_mskcfg_dataset as generate
    else:
        from repro.datasets import generate_yancfg_dataset as generate
    dataset = generate(
        total=args.total, seed=args.seed, minimum_per_family=args.folds + 2
    )
    settings = reduced_table2_grid(limit=args.settings)

    def progress(position, count, setting, score):
        print(f"[{position}/{count}] score={score:.4f}  {setting.describe()}")

    search = GridSearch(
        dataset,
        epochs=args.epochs,
        n_splits=args.folds,
        seed=args.seed,
        hidden_size=args.hidden_size,
        progress=progress,
    )
    result = search.run(
        settings, n_jobs=args.n_jobs, journal=args.journal, resume=args.resume
    )

    print(f"\nRanking ({len(result.entries)} settings, "
          f"{args.folds}-fold CV, n_jobs={args.n_jobs}):")
    rows = []
    for rank, entry in enumerate(result.ranking(), start=1):
        print(f"  {rank}. score={entry.score:.4f}  "
              f"accuracy={entry.result.accuracy:.3f}  "
              f"{entry.setting.describe()}")
        rows.append({
            "rank": rank,
            "setting_key": setting_key(entry.setting),
            "setting": entry.setting.describe(),
            "score": entry.score,
            "accuracy": entry.result.accuracy,
            "fold_validation_losses": [
                h.validation_losses for h in entry.result.fold_histories
            ],
        })
    for failure in result.failures:
        print(f"FAILED {failure.setting.describe()} fold {failure.fold_index} "
              f"after {failure.attempts} attempts: {failure.error}",
              file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump({"ranking": rows}, handle, indent=2)
        print(f"Ranking written to {args.output}")
    return 1 if result.failures else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Check the tree against the project-invariant rules.

    Exit status: 0 when clean (after pragma and baseline suppression),
    1 when findings remain, 2 on configuration errors (unknown rule,
    unreadable baseline, missing target).  CI runs this over ``src``
    and ``tests`` as the lint gate.
    """
    import json

    from repro.analysis import (
        LintEngine,
        apply_baseline,
        findings_to_json,
        format_findings,
        format_findings_github,
        load_baseline,
        registered_rules,
        write_baseline,
    )

    if args.list_rules:
        for rule_id, rule_cls in sorted(registered_rules().items()):
            print(f"{rule_id:16s} {rule_cls.description}")
        return 0
    if not args.paths:
        raise MagicError("lint needs at least one file or directory to check")
    if args.jobs < 1:
        raise MagicError(f"--jobs must be >= 1, got {args.jobs}")
    select = args.select.split(",") if args.select else None
    engine = LintEngine(
        select=[s.strip() for s in select] if select else None,
        jobs=args.jobs,
        cache_path=args.cache,
    )
    findings = engine.lint_paths(args.paths)
    if args.write_baseline:
        if not args.baseline:
            raise MagicError("--write-baseline requires --baseline PATH")
        write_baseline(args.baseline, findings)
        print(f"baseline with {len(findings)} finding(s) written to "
              f"{args.baseline}")
        return 0
    if args.baseline and os.path.exists(args.baseline):
        findings = apply_baseline(findings, load_baseline(args.baseline))
    if args.format == "json":
        print(json.dumps(findings_to_json(findings), indent=2))
    elif args.format == "github":
        if findings:
            print(format_findings_github(findings))
        print(f"{len(findings)} finding(s)")
    elif findings:
        print(format_findings(findings))
    else:
        print("clean: no findings")
    return 1 if findings else 0


def cmd_attack(args: argparse.Namespace) -> int:
    """Attack a persisted model and print its per-family robustness.

    Regenerates the synthetic MSKCFG corpus the model was trained
    against (same ``--seed``/``--total`` conventions as ``train``), runs
    the feature-space PGD attack over it, and prints the per-family
    robustness report.  ``--asm-samples N`` additionally runs the
    problem-space knob attack (re-obfuscate, re-extract) over the first
    N corpus coordinates.
    """
    import json

    import numpy as np

    from repro.adv import (
        AttackConfig,
        FeatureSpaceAttack,
        asm_attack_corpus,
        build_robustness_report,
    )
    from repro.datasets import generate_mskcfg_dataset
    from repro.datasets.mskcfg import MSKCFG_FAMILIES
    from repro.features.validator import is_semantically_valid

    magic = Magic.load(args.model_dir)
    dataset = generate_mskcfg_dataset(
        total=args.total, seed=args.seed, minimum_per_family=8
    )
    acfgs = dataset.acfgs
    attack = FeatureSpaceAttack(
        magic.model,
        magic.scaler,
        AttackConfig(epsilon=args.epsilon, steps=args.steps, seed=args.seed),
    )
    outcome = attack.attack(acfgs)
    labels = np.array([acfg.label for acfg in acfgs], dtype=np.int64)
    report = build_robustness_report(
        dataset.family_names,
        labels,
        outcome.clean_probabilities,
        outcome.adversarial_probabilities,
        [record.perturbation_linf for record in outcome.records],
    )
    all_valid = all(
        is_semantically_valid(graph.attributes, graph.adjacency)
        for graph in outcome.adversarial_acfgs
    )
    print(f"Feature-space PGD: epsilon={args.epsilon}, steps={args.steps}")
    print(report.format_table())
    print("semantic validator: "
          + ("all adversarial samples valid" if all_valid
             else "INVALID adversarial samples present"))

    asm_payload = []
    if args.asm_samples > 0:
        coordinates = [
            (MSKCFG_FAMILIES[i % len(MSKCFG_FAMILIES)],
             i // len(MSKCFG_FAMILIES))
            for i in range(args.asm_samples)
        ]
        results = asm_attack_corpus(magic, coordinates, seed=args.seed)
        flips = sum(1 for r in results if r.flipped and r.clean_label == r.label)
        eligible = sum(1 for r in results if r.clean_label == r.label)
        print(f"\nProblem-space knob attack: {flips}/{eligible} "
              "clean-correct samples flipped")
        for result in results:
            knobs = result.knobs.to_dict() if result.knobs else {}
            print(f"  {result.name}: "
                  f"{'FLIPPED' if result.flipped else 'held'} "
                  f"(margin {result.clean_margin:+.3f} -> "
                  f"{result.adversarial_margin:+.3f}, "
                  f"attempts {result.attempts}, knobs {knobs})")
        asm_payload = [result.to_dict() for result in results]

    if args.output:
        payload = {
            "feature_space": report.to_dict(),
            "all_semantically_valid": all_valid,
            "attack": {"epsilon": args.epsilon, "steps": args.steps,
                       "seed": args.seed},
            "asm": asm_payload,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nReport written to {args.output}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """Classify listings in one batched forward pass.

    Ingestion failures are reported per file; every successfully
    extracted ACFG then flows through the model as part of one
    GraphBatch-collated prediction call instead of one forward pass per
    file.
    """
    magic = Magic.load(args.model_dir)
    status = 0
    ingested = []  # (path, ACFG) for everything that survived the front end
    for path in args.listings:
        try:
            if path.endswith(".json"):
                acfg = ACFG.from_cfg(load_cfg(path))
            else:
                with open(path, "r", encoding="utf-8", errors="replace") as fh:
                    acfg = magic.acfg_from_asm(fh.read(), name=path)
        except MagicError as exc:
            print(f"FAILED {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        ingested.append((path, acfg))
    if ingested:
        probabilities = magic.predict_proba([acfg for _, acfg in ingested])
        for (path, _), row in zip(ingested, probabilities):
            family = magic.family_names[int(row.argmax())]
            print(f"{path}: {family} (confidence {float(row.max()):.3f})")
    return status


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="MAGIC: CFG-based malware classification (DSN 2019 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="inspect one listing's CFG")
    p_info.add_argument("listing")
    p_info.add_argument("--dot", help="also write a Graphviz DOT file")
    p_info.add_argument("--verbose", action="store_true",
                        help="embed disassembly in DOT labels")
    p_info.set_defaults(func=cmd_info)

    p_extract = sub.add_parser(
        "extract",
        help="listings -> cached CFG JSON (fault-tolerant, resumable)",
    )
    p_extract.add_argument("listings", nargs="+")
    p_extract.add_argument("--output", required=True)
    p_extract.add_argument("--n-jobs", type=int, default=1,
                           help="extraction worker processes")
    p_extract.add_argument("--timeout", type=float, default=None,
                           help="per-sample wall-clock limit in seconds "
                                "(hung samples are killed)")
    p_extract.add_argument("--max-vertices", type=int, default=None,
                           help="fail samples whose CFG exceeds this size")
    p_extract.add_argument("--journal",
                           help="JSON-lines checkpoint of finished samples")
    p_extract.add_argument("--resume", action="store_true",
                           help="skip samples already recorded in --journal")
    p_extract.add_argument("--quarantine",
                           help="directory preserving failing inputs")
    p_extract.set_defaults(func=cmd_extract)

    p_train = sub.add_parser("train", help="train and persist a model")
    p_train.add_argument("--dataset", choices=("mskcfg", "yancfg"),
                         default="mskcfg")
    p_train.add_argument("--cfg-dir",
                         help="train on <family>__<id>.json CFGs instead")
    p_train.add_argument("--total", type=int, default=120)
    p_train.add_argument("--epochs", type=int, default=15)
    p_train.add_argument("--pooling", default="adaptive",
                         choices=("adaptive", "sort_conv1d", "sort_weighted"))
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--model-dir", required=True)
    p_train.add_argument("--registry",
                         help="also publish a sha256-verified archive to "
                              "this registry root")
    p_train.add_argument("--model-name",
                         help="registry model name (default: dataset name)")
    p_train.add_argument("--compiled", action="store_true", default=True,
                         help="capture/replay training batches through the "
                              "tape engine (default; bit-exact with eager)")
    p_train.add_argument("--no-compiled", dest="compiled",
                         action="store_false",
                         help="force the eager per-op training path")
    p_train.add_argument("--adversarial", action="store_true",
                         help="adversarial training: mix each batch with "
                              "an inner-PGD attacked copy (forces the "
                              "eager path)")
    p_train.add_argument("--attack-steps", type=int, default=3,
                         help="inner-attack PGD steps (with --adversarial)")
    p_train.add_argument("--attack-epsilon", type=float, default=1.0,
                         help="inner-attack L-inf radius in scaled "
                              "feature units (with --adversarial)")
    p_train.add_argument("--attack-weight", type=float, default=0.5,
                         help="adversarial-loss weight in the "
                              "clean/adversarial mix (with --adversarial)")
    p_train.set_defaults(func=cmd_train)

    p_sweep = sub.add_parser(
        "sweep", help="parallel hyper-parameter sweep with checkpoint/resume"
    )
    p_sweep.add_argument("--dataset", choices=("mskcfg", "yancfg"),
                         default="mskcfg")
    p_sweep.add_argument("--total", type=int, default=100,
                         help="synthetic corpus size")
    p_sweep.add_argument("--settings", type=int, default=None,
                         help="truncate the reduced Table II grid to N settings")
    p_sweep.add_argument("--epochs", type=int, default=8)
    p_sweep.add_argument("--folds", type=int, default=3)
    p_sweep.add_argument("--hidden-size", type=int, default=32)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--n-jobs", type=int, default=1,
                         help="worker processes for the (setting x fold) pool")
    p_sweep.add_argument("--journal",
                         help="JSON-lines checkpoint of completed folds")
    p_sweep.add_argument("--resume", action="store_true",
                         help="skip folds already recorded in --journal")
    p_sweep.add_argument("--output", help="write the ranking as JSON")
    p_sweep.set_defaults(func=cmd_sweep)

    p_lint = sub.add_parser(
        "lint",
        help="project-invariant static analysis (repro.analysis)",
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories to check")
    p_lint.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="report style; 'github' emits ::error "
                             "annotations for GitHub Actions")
    p_lint.add_argument("--select",
                        help="comma-separated rule ids to run "
                             "(default: all registered rules)")
    p_lint.add_argument("--jobs", type=int, default=1,
                        help="lint files in N worker processes "
                             "(default: 1, in-process)")
    p_lint.add_argument("--cache",
                        help="JSON result cache keyed by file sha256 and "
                             "engine fingerprint; warm runs skip "
                             "unchanged files")
    p_lint.add_argument("--baseline",
                        help="JSON baseline of accepted findings; existing "
                             "entries are filtered from the report")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="record the current findings into --baseline "
                             "and exit 0 (incremental adoption)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    p_lint.set_defaults(func=cmd_lint)

    p_predict = sub.add_parser("predict", help="classify listings")
    p_predict.add_argument("--model-dir", required=True)
    p_predict.add_argument("listings", nargs="+")
    p_predict.set_defaults(func=cmd_predict)

    p_attack = sub.add_parser(
        "attack",
        help="adversarially attack a persisted model and report "
             "per-family robustness",
    )
    p_attack.add_argument("--model-dir", required=True)
    p_attack.add_argument("--total", type=int, default=120,
                          help="synthetic corpus size to attack "
                               "(match the train --total)")
    p_attack.add_argument("--seed", type=int, default=0,
                          help="corpus + attack seed (match train --seed)")
    p_attack.add_argument("--epsilon", type=float, default=1.5,
                          help="PGD L-inf radius in scaled feature units")
    p_attack.add_argument("--steps", type=int, default=10,
                          help="PGD iterations")
    p_attack.add_argument("--asm-samples", type=int, default=0,
                          help="also run the problem-space knob attack "
                               "over this many corpus samples")
    p_attack.add_argument("--output",
                          help="write the robustness report as JSON")
    p_attack.set_defaults(func=cmd_attack)

    def add_model_source(sub_parser):
        sub_parser.add_argument("--registry",
                                help="model registry root directory")
        sub_parser.add_argument("--model",
                                help="registry model as NAME or NAME@VERSION")
        sub_parser.add_argument("--model-dir",
                                help="load one archive directory instead "
                                     "(legacy Magic.save dirs load with a "
                                     "warning)")
        sub_parser.add_argument("--max-vertices", type=int, default=None,
                                help="per-request graph size guard "
                                     "(oversize requests fail [oversize])")
        sub_parser.add_argument("--cache-size", type=int, default=None,
                                help="prediction cache bound (0 disables "
                                     "all result caching, the similarity "
                                     "tier included)")
        sub_parser.add_argument("--similar-threshold", type=float,
                                default=None,
                                help="enable the near-duplicate cache tier: "
                                     "serve fingerprint matches at or above "
                                     "this estimated Jaccard, flagged "
                                     "'similar' (default: off; calibrated "
                                     "default when enabling: 0.5)")
        sub_parser.add_argument("--fingerprint-iterations", type=int,
                                default=None,
                                help="WL relabeling rounds for similarity "
                                     "fingerprints (default 3; more rounds "
                                     "= stricter topology matching)")
        sub_parser.add_argument("--compiled", action="store_true",
                                default=True,
                                help="serve forwards through the compiled "
                                     "tape cache (default; float64 replay "
                                     "is bit-exact with eager)")
        sub_parser.add_argument("--no-compiled", dest="compiled",
                                action="store_false",
                                help="force the eager per-op forward path")
        sub_parser.add_argument("--infer-dtype",
                                choices=("float64", "float32"),
                                default="float64",
                                help="compiled inference precision; float32 "
                                     "trades ~1e-6 relative error for speed "
                                     "(requires --compiled)")

    p_classify = sub.add_parser(
        "classify",
        help="classify listings via the serving engine (per-request "
             "failure kinds, prediction cache)",
    )
    add_model_source(p_classify)
    p_classify.add_argument("listings", nargs="+")
    p_classify.set_defaults(func=cmd_classify)

    p_dedup = sub.add_parser(
        "dedup",
        help="report/drop near-duplicate samples in an extracted "
             "dataset cache (topology-aware CFG fingerprints)",
    )
    p_dedup.add_argument("cache_dir",
                         help="dataset cache directory (save_dataset format)")
    p_dedup.add_argument("--threshold", type=float, default=None,
                         help="estimated-Jaccard near-duplicate "
                              "threshold (default: the calibrated "
                              "serving default, 0.5)")
    p_dedup.add_argument("--iterations", type=int, default=None,
                         help="WL relabeling rounds (default 3)")
    p_dedup.add_argument("--apply", action="store_true",
                         help="rewrite the cache keeping only cluster "
                              "keepers (atomic; default is report-only)")
    p_dedup.add_argument("--output",
                         help="also write the full cluster report as JSON")
    p_dedup.set_defaults(func=cmd_dedup)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP classification service "
                      "(single-process or --workers N fleet)"
    )
    add_model_source(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8731,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="model-replica worker processes; 0 keeps the "
                              "single-process micro-batching path")
    p_serve.add_argument("--max-batch-size", type=int, default=32,
                         help="requests coalesced into one forward pass")
    p_serve.add_argument("--max-wait-ms", type=float, default=5.0,
                         help="how long the first request of a batch waits "
                              "for company (single-process mode only)")
    p_serve.add_argument("--batch-timeout", type=float, default=60.0,
                         help="wall-clock limit per fleet worker batch; a "
                              "worker over it is killed and respawned")
    p_serve.add_argument("--request-timeout", type=float, default=60.0,
                         help="per-request queue timeout before a 503")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.add_argument("--include-margin", action="store_true",
                         help="add the top-2 score margin to /classify "
                              "responses (adversarial-drift monitoring)")
    p_serve.set_defaults(func=cmd_serve)

    p_rollout = sub.add_parser(
        "rollout",
        help="drive a running fleet's zero-downtime model rollout",
    )
    p_rollout.add_argument("action",
                           choices=("start", "status", "promote", "rollback"))
    p_rollout.add_argument("--url", default="http://127.0.0.1:8731",
                           help="base URL of the running serve endpoint")
    p_rollout.add_argument("--version",
                           help="candidate registry version (start)")
    p_rollout.add_argument("--num-workers", type=int, default=None,
                           help="candidate replicas (default: primary count)")
    p_rollout.add_argument("--shadow-fraction", type=float, default=None,
                           help="fraction of live traffic mirrored to the "
                                "candidate (default 0.25)")
    p_rollout.add_argument("--min-samples", type=int, default=None,
                           help="mirrored completions before a verdict")
    p_rollout.add_argument("--min-parity", type=float, default=None,
                           help="label-parity canary threshold")
    p_rollout.add_argument("--max-latency-ratio", type=float, default=None,
                           help="shadow/primary p50 latency canary threshold")
    p_rollout.add_argument("--manual", action="store_true",
                           help="park the verdict for operator "
                                "promote/rollback instead of acting on it")
    p_rollout.add_argument("--watch", type=float, default=None,
                           help="after start, poll status for up to this "
                                "many seconds until the verdict lands")
    p_rollout.add_argument("--interval", type=float, default=1.0,
                           help="seconds between --watch polls")
    p_rollout.add_argument("--http-timeout", type=float, default=10.0,
                           help="timeout for each HTTP call")
    p_rollout.set_defaults(func=cmd_rollout)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except MagicError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
