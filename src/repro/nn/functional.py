"""Neural-network operations built on the autograd tensor.

Implements the ops DGCNN needs beyond basic arithmetic: 1-D and 2-D
convolutions (im2col formulation), max pooling, *adaptive* max pooling
(Section III-C of the paper), numerically stable (log-)softmax, and
dropout.  Every op here has a finite-difference gradient test in
``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import ShapeError
from repro.nn.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


# ----------------------------------------------------------------------
# convolutions


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
) -> Tensor:
    """1-D convolution.

    ``x``: ``(N, C_in, L)``; ``weight``: ``(C_out, C_in, K)``;
    ``bias``: ``(C_out,)``.  Output: ``(N, C_out, L_out)`` with
    ``L_out = (L - K) // stride + 1`` (no padding — DGCNN's remaining
    Conv1D layers never pad).
    """
    if x.ndim != 3:
        raise ShapeError(f"conv1d input must be (N, C, L), got {x.shape}")
    if weight.ndim != 3:
        raise ShapeError(f"conv1d weight must be (F, C, K), got {weight.shape}")
    n, c_in, length = x.shape
    c_out, c_in_w, kernel = weight.shape
    if c_in != c_in_w:
        raise ShapeError(
            f"conv1d channel mismatch: input has {c_in}, weight expects {c_in_w}"
        )
    if kernel > length:
        raise ShapeError(f"conv1d kernel {kernel} larger than input length {length}")
    l_out = (length - kernel) // stride + 1

    # cols: (N, C_in, K, L_out)
    cols_data = np.empty((n, c_in, kernel, l_out), dtype=np.float64)
    for k in range(kernel):
        cols_data[:, :, k, :] = x.data[:, :, k : k + stride * l_out : stride]

    out_data = np.einsum("nckl,fck->nfl", cols_data, weight.data)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def grad_fn(grad: np.ndarray):
        grad_weight = np.einsum("nfl,nckl->fck", grad, cols_data)
        grad_cols = np.einsum("nfl,fck->nckl", grad, weight.data)
        grad_x = np.zeros_like(x.data)
        for k in range(kernel):
            grad_x[:, :, k : k + stride * l_out : stride] += grad_cols[:, :, k, :]
        if bias is None:
            return (grad_x, grad_weight)
        grad_bias = grad.sum(axis=(0, 2))
        return (grad_x, grad_weight, grad_bias)

    return Tensor._make(
        out_data,
        parents,
        grad_fn,
        op="conv1d",
        meta={
            "stride": stride,
            "kernel": kernel,
            "l_out": l_out,
            "has_bias": bias is not None,
        },
    )


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D convolution via im2col.

    ``x``: ``(N, C_in, H, W)``; ``weight``: ``(C_out, C_in, KH, KW)``;
    output ``(N, C_out, H_out, W_out)``.
    """
    if x.ndim != 4:
        raise ShapeError(f"conv2d input must be (N, C, H, W), got {x.shape}")
    if weight.ndim != 4:
        raise ShapeError(f"conv2d weight must be (F, C, KH, KW), got {weight.shape}")
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c_in, height, width = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ShapeError(
            f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}"
        )
    padded_h, padded_w = height + 2 * ph, width + 2 * pw
    if kh > padded_h or kw > padded_w:
        raise ShapeError(
            f"conv2d kernel ({kh}, {kw}) larger than padded input "
            f"({padded_h}, {padded_w})"
        )
    h_out = (padded_h - kh) // sh + 1
    w_out = (padded_w - kw) // sw + 1

    x_padded = x.data
    if ph or pw:
        x_padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    cols_data = np.empty((n, c_in, kh, kw, h_out, w_out), dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            cols_data[:, :, i, j, :, :] = x_padded[
                :, :, i : i + sh * h_out : sh, j : j + sw * w_out : sw
            ]

    out_data = np.einsum("ncijhw,fcij->nfhw", cols_data, weight.data)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None, None]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def grad_fn(grad: np.ndarray):
        grad_weight = np.einsum("nfhw,ncijhw->fcij", grad, cols_data)
        grad_cols = np.einsum("nfhw,fcij->ncijhw", grad, weight.data)
        grad_padded = np.zeros(
            (n, c_in, padded_h, padded_w), dtype=np.float64
        )
        for i in range(kh):
            for j in range(kw):
                grad_padded[
                    :, :, i : i + sh * h_out : sh, j : j + sw * w_out : sw
                ] += grad_cols[:, :, i, j, :, :]
        grad_x = grad_padded
        if ph or pw:
            grad_x = grad_padded[
                :, :, ph : ph + height, pw : pw + width
            ]
        if bias is None:
            return (grad_x, grad_weight)
        grad_bias = grad.sum(axis=(0, 2, 3))
        return (grad_x, grad_weight, grad_bias)

    return Tensor._make(
        out_data,
        parents,
        grad_fn,
        op="conv2d",
        meta={
            "stride": (sh, sw),
            "padding": (ph, pw),
            "kernel": (kh, kw),
            "out_hw": (h_out, w_out),
            "has_bias": bias is not None,
        },
    )


# ----------------------------------------------------------------------
# pooling


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Plain max pooling over ``(N, C, H, W)``."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, height, width = x.shape
    h_out = (height - kh) // sh + 1
    w_out = (width - kw) // sw + 1
    if h_out < 1 or w_out < 1:
        raise ShapeError(
            f"max_pool2d kernel ({kh}, {kw}) too large for input "
            f"({height}, {width})"
        )

    out_data = np.empty((n, c, h_out, w_out), dtype=np.float64)
    argmax = np.empty((n, c, h_out, w_out, 2), dtype=np.int64)
    for oh in range(h_out):
        for ow in range(w_out):
            window = x.data[:, :, oh * sh : oh * sh + kh, ow * sw : ow * sw + kw]
            flat = window.reshape(n, c, -1)
            best = flat.argmax(axis=2)
            out_data[:, :, oh, ow] = np.take_along_axis(
                flat, best[:, :, None], axis=2
            )[:, :, 0]
            argmax[:, :, oh, ow, 0] = oh * sh + best // kw
            argmax[:, :, oh, ow, 1] = ow * sw + best % kw

    def grad_fn(grad: np.ndarray):
        grad_x = np.zeros_like(x.data)
        n_idx, c_idx = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
        for oh in range(h_out):
            for ow in range(w_out):
                rows = argmax[:, :, oh, ow, 0]
                cols = argmax[:, :, oh, ow, 1]
                np.add.at(grad_x, (n_idx, c_idx, rows, cols), grad[:, :, oh, ow])
        return (grad_x,)

    return Tensor._make(
        out_data,
        (x,),
        grad_fn,
        op="max_pool2d",
        meta={"kernel": (kh, kw), "stride": (sh, sw), "out_hw": (h_out, w_out)},
    )


def max_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over ``(N, C, L)``, implemented via :func:`max_pool2d`."""
    if x.ndim != 3:
        raise ShapeError(f"max_pool1d input must be (N, C, L), got {x.shape}")
    n, c, length = x.shape
    stride_value = stride if stride is not None else kernel_size
    as_2d = x.reshape(n, c, 1, length)
    pooled = max_pool2d(as_2d, (1, kernel_size), (1, stride_value))
    return pooled.reshape(n, c, pooled.shape[-1])


def adaptive_window_bounds(input_size: int, output_size: int, index: int) -> Tuple[int, int]:
    """Window ``[start, end)`` for output cell ``index`` (PyTorch rule).

    ``start = floor(index * in / out)``, ``end = ceil((index + 1) * in / out)``.
    Windows tile the input, overlap when ``in`` is not a multiple of
    ``out``, and adapt their size to the input — exactly the behaviour the
    paper illustrates in Figure 6.
    """
    start = (index * input_size) // output_size
    end = math.ceil((index + 1) * input_size / output_size)
    return start, end


def adaptive_max_pool2d(x: Tensor, output_size: IntPair) -> Tensor:
    """Adaptive max pooling: any ``(N, C, H, W)`` -> ``(N, C, OH, OW)``.

    The key layer of the paper's second DGCNN extension (Section III-C):
    it unifies graph-convolution outputs of *varying* vertex counts into
    a fixed-size grid by choosing window sizes per input.
    """
    oh_size, ow_size = _pair(output_size)
    if x.ndim != 4:
        raise ShapeError(f"adaptive_max_pool2d input must be 4-D, got {x.shape}")
    n, c, height, width = x.shape
    if height < 1 or width < 1:
        raise ShapeError("adaptive_max_pool2d input has an empty spatial dim")

    out_data = np.empty((n, c, oh_size, ow_size), dtype=np.float64)
    argmax = np.empty((n, c, oh_size, ow_size, 2), dtype=np.int64)
    for oh in range(oh_size):
        h0, h1 = adaptive_window_bounds(height, oh_size, oh)
        for ow in range(ow_size):
            w0, w1 = adaptive_window_bounds(width, ow_size, ow)
            window = x.data[:, :, h0:h1, w0:w1]
            flat = window.reshape(n, c, -1)
            best = flat.argmax(axis=2)
            out_data[:, :, oh, ow] = np.take_along_axis(
                flat, best[:, :, None], axis=2
            )[:, :, 0]
            win_w = w1 - w0
            argmax[:, :, oh, ow, 0] = h0 + best // win_w
            argmax[:, :, oh, ow, 1] = w0 + best % win_w

    def grad_fn(grad: np.ndarray):
        grad_x = np.zeros_like(x.data)
        n_idx, c_idx = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
        for oh in range(oh_size):
            for ow in range(ow_size):
                rows = argmax[:, :, oh, ow, 0]
                cols = argmax[:, :, oh, ow, 1]
                np.add.at(grad_x, (n_idx, c_idx, rows, cols), grad[:, :, oh, ow])
        return (grad_x,)

    return Tensor._make(
        out_data,
        (x,),
        grad_fn,
        op="adaptive_max_pool2d",
        meta={"grid": (oh_size, ow_size)},
    )


# ----------------------------------------------------------------------
# sparse support


def sparse_matmul(matrix, x: Tensor, matrix_t=None) -> Tensor:
    """Multiply a *constant* scipy.sparse matrix with a dense tensor.

    Used by the block-diagonal batched graph convolution: the propagation
    operator ``D̂^-1 Â`` carries no gradient, so only the dense operand's
    gradient (``Sᵀ · grad``) is needed.  Pass ``matrix_t`` (the CSR
    transpose of ``matrix``) when it is already available — e.g. cached
    on a :class:`~repro.core.batched.GraphBatch` — so the backward pass
    does not re-transpose per layer; otherwise the transpose is computed
    lazily on first backward.
    """
    if x.ndim != 2:
        raise ShapeError(f"sparse_matmul expects a 2-D tensor, got {x.shape}")
    if matrix.shape[1] != x.shape[0]:
        raise ShapeError(
            f"sparse matrix {matrix.shape} incompatible with tensor {x.shape}"
        )
    out_data = np.asarray(matrix @ x.data)
    cache = {"t": matrix_t}

    def grad_fn(grad: np.ndarray):
        if cache["t"] is None:
            cache["t"] = matrix.T.tocsr()
        return (np.asarray(cache["t"] @ grad),)

    return Tensor._make(
        out_data,
        (x,),
        grad_fn,
        op="spmm",
        meta={"matrix": matrix, "t_cache": cache},
    )


# ----------------------------------------------------------------------
# softmax family


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    softmax_data = np.exp(out_data)

    def grad_fn(grad: np.ndarray):
        return (grad - softmax_data * grad.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), grad_fn, op="log_softmax", meta={"axis": axis})


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


# ----------------------------------------------------------------------
# regularization


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: identity at eval time, scaled mask in training."""
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(x.shape) >= p) / (1.0 - p)

    def grad_fn(grad: np.ndarray):
        return (grad * mask,)

    return Tensor._make(
        x.data * mask, (x,), grad_fn, op="dropout", meta={"p": p, "rng": generator}
    )
