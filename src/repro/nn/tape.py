"""Capture-and-replay ("tape") execution for the autograd hot path.

The eager :class:`~repro.nn.tensor.Tensor` engine rebuilds the whole
computation graph — one Python closure and one freshly allocated output
array per op — on *every* forward pass, even though training batches and
serve micro-batches repeat the exact same op topology thousands of
times.  This module compiles one recorded eager pass into a flat op list
("tape") and replays it with preallocated arena buffers and
``out=``-style numpy kernels: no Tensor objects, no graph walk, no
per-op allocation on the replay path.

How a tape is built
-------------------
Every op in :mod:`repro.nn.tensor` / :mod:`repro.nn.functional` stamps
its output with a kind (``Tensor._op``) and static metadata
(``Tensor._op_meta``).  :func:`compile_output` walks the recorded graph
of one eager forward in topological order and emits a
:class:`TapeRecord` per compute node.  Record inputs are classified as:

``("buf", i)``
    An intermediate — arena buffer ``i`` (the captured eager output
    array, reused in place on every replay).
``("leaf", tensor)``
    A trainable parameter.  Read through ``tensor.data`` *fresh on every
    replay*, so optimizer steps and ``load_state_dict`` (which rebind
    ``.data``) are picked up without invalidating the tape.
``("sym", name)``
    A batch-varying constant (``attributes`` / ``propagation`` /
    ``propagation_t``), identity-matched against the capture batch and
    resolved from the *replay* batch.
``("const", array)``
    Anything else — snapshotted at capture time.

Data-dependent decisions (SortPooling's permutation, max-pool argmaxes,
dropout masks) are recomputed per replay; *shape*-dependent decisions
are frozen, which is safe because an executor is only ever replayed for
batches with the same :func:`batch_signature`.

A fusion pass then collapses ``SpMM → activation`` in the graph-conv
stack and ``matmul → bias add → ReLU`` in the MLP head into single
records with hand-written backward rules.  Fusion only fires when the
eliminated intermediates have exactly one consumer, so gradient
accumulation order is unchanged.

Equality contract
-----------------
float64 replay is value-exact with the eager engine (every kernel
performs the same numpy arithmetic in the same order; verified with
``np.array_equal`` in ``tests/nn/test_tape.py``).  The only tolerated
representation difference is the sign of zero (``np.maximum`` vs
``np.where`` for ReLU), which ``==``-compares equal and cannot change
any downstream comparison.  float32 execution is a deliberately
different numeric mode: inference-only, opt-in, documented tolerance.

Thread safety: :class:`CompiledModel` serializes capture and replay
under one lock — arena buffers are shared mutable state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import CompilationError, GradientError
from repro.nn.tensor import Tensor, _unbroadcast

try:  # scipy's C kernel for CSR @ dense-matrix, accumulating into out.
    # Private module, so guard the import *and* the symbol: if either is
    # missing we fall back to the (allocating) ``matrix @ src`` operator,
    # which runs the same arithmetic.
    from scipy.sparse import _sparsetools as _sparse_kernels

    _HAVE_CSR_MATVECS = hasattr(_sparse_kernels, "csr_matvecs")
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _sparse_kernels = None
    _HAVE_CSR_MATVECS = False

# Ops whose output is a numpy *view* of their input: the arena slot is
# rebound (not written through) on every replay.
_VIEW_KINDS = ("reshape", "getitem", "transpose")


def _spmm_into(matrix: Any, src: np.ndarray, dst: np.ndarray) -> None:
    """``dst <- matrix @ src`` for CSR ``matrix``, allocation-free.

    ``csr_matvecs`` accumulates ``dst += A @ src``, so ``dst`` is zeroed
    first — exactly what scipy's own ``@`` does into its freshly zeroed
    result, hence bit-identical arithmetic.
    """
    if (
        _HAVE_CSR_MATVECS
        and matrix.format == "csr"
        and src.flags.c_contiguous
        and dst.flags.c_contiguous
        and matrix.data.dtype == src.dtype == dst.dtype
    ):
        dst.fill(0.0)
        n_rows, n_cols = matrix.shape
        _sparse_kernels.csr_matvecs(
            n_rows,
            n_cols,
            src.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            src.ravel(),
            dst.ravel(),
        )
    else:
        dst[...] = matrix @ src


class TapeRecord:
    """One compiled op: kind, input refs, output arena slot, metadata."""

    __slots__ = ("kind", "inputs", "out", "meta", "state")

    def __init__(
        self,
        kind: str,
        inputs: Tuple[Tuple[str, Any], ...],
        out: int,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.inputs = inputs
        self.out = out
        self.meta = meta if meta is not None else {}
        # Per-replay data-dependent values shared between the forward
        # and backward kernels of this record (sort order, masks, ...).
        self.state: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TapeRecord({self.kind!r}, out={self.out})"


def batch_signature(batch: Any, training: bool, dtype: Any) -> Tuple[Any, ...]:
    """Replay key: everything that fixes the compiled program's shapes.

    Two batches with the same signature run the identical op list with
    identical buffer shapes; everything else about them (attribute
    values, edge structure within a graph) is resolved per replay via
    symbolic inputs and data-dependent recomputes.
    """
    boundaries = getattr(batch, "boundaries", None)
    attributes = getattr(batch, "attributes", None)
    if boundaries is None or attributes is None:
        raise CompilationError(
            "compiled execution needs a GraphBatch-like input with "
            "`.boundaries` and `.attributes`"
        )
    return (
        tuple(int(b) for b in boundaries),
        int(attributes.shape[1]),
        bool(getattr(batch, "normalized", True)),
        bool(training),
        str(np.dtype(dtype)),
    )


# ----------------------------------------------------------------------
# graph -> records


def _record_graph(
    output: Tensor, batch: Any
) -> Tuple[List[TapeRecord], List[np.ndarray], int]:
    """Walk one recorded eager graph into a flat record list.

    The program order is ``reversed(output._topological_order())`` — the
    exact reverse of the order eager ``backward()`` processes nodes in,
    which is what makes replayed gradient accumulation order-identical
    to the eager engine.
    """
    if output._grad_fn is None:
        raise CompilationError(
            "model output records no computation graph; compiled "
            "execution needs at least one differentiable op"
        )
    compute = [n for n in reversed(output._topological_order()) if n._grad_fn is not None]
    index = {id(n): i for i, n in enumerate(compute)}
    attributes = getattr(batch, "attributes", None)
    propagation = getattr(batch, "propagation", None)

    def ref(parent: Tensor) -> Tuple[str, Any]:
        if parent._grad_fn is not None:
            return ("buf", index[id(parent)])
        if parent.requires_grad:
            return ("leaf", parent)
        if attributes is not None and parent.data is attributes:
            return ("sym", "attributes")
        return ("const", parent.data)

    records: List[TapeRecord] = []
    for node in compute:
        kind = node._op
        if kind is None:
            raise CompilationError(
                "op recorded without a tape kind (custom Tensor._make "
                "caller?); cannot compile this graph"
            )
        meta = dict(node._op_meta) if node._op_meta else {}
        if kind == "spmm":
            matrix = meta.pop("matrix")
            cache = meta.pop("t_cache", None) or {}
            if propagation is not None and matrix is propagation:
                meta["matrix_ref"] = ("sym", "propagation")
                meta["matrix_t_ref"] = ("sym", "propagation_t")
            else:
                # A non-batch sparse operand is a constant; its
                # transpose is resolved lazily at backward-build time.
                meta["matrix_ref"] = ("const", matrix)
                meta["matrix_t_src"] = (matrix, cache)
        records.append(
            TapeRecord(kind, tuple(ref(p) for p in node._parents), index[id(node)], meta)
        )
    return records, [n.data for n in compute], index[id(output)]


# ----------------------------------------------------------------------
# fusion


def _ref_array(
    ref: Tuple[str, Any], buffers: List[np.ndarray]
) -> Optional[np.ndarray]:
    tag, val = ref
    if tag == "buf":
        return buffers[val]
    if tag == "leaf":
        return val.data
    if tag == "const":
        return val
    return None


def _fuse_program(
    records: List[TapeRecord], buffers: List[np.ndarray], out_index: int
) -> Tuple[List[TapeRecord], int]:
    """Collapse SpMM→activation and matmul→add(bias)→ReLU chains.

    Only fires when every eliminated intermediate has exactly one
    consumer (and is not the program output), so no other record — and
    no gradient contribution — ever touches the removed buffers.
    """
    producer = {r.out: i for i, r in enumerate(records)}
    consumers: Dict[int, int] = {}
    for r in records:
        for tag, val in r.inputs:
            if tag == "buf":
                consumers[val] = consumers.get(val, 0) + 1
    # The final output stays live for the caller even with no consumer.
    consumers[out_index] = consumers.get(out_index, 0) + 1

    replaced: Dict[int, TapeRecord] = {}
    skip: set = set()
    for j, act in enumerate(records):
        if act.kind not in ("tanh", "relu") or len(act.inputs) != 1:
            continue
        tag, pre = act.inputs[0]
        if tag != "buf" or consumers.get(pre, 0) != 1:
            continue
        i = producer[pre]
        if i in skip:
            continue
        prod = records[i]
        if prod.kind == "spmm":
            fused_meta = dict(prod.meta)
            fused_meta["activation"] = act.kind
            replaced[j] = TapeRecord("spmm_act", prod.inputs, act.out, fused_meta)
            skip.add(i)
        elif act.kind == "relu" and prod.kind == "add" and len(prod.inputs) == 2:
            (xtag, xbuf), bias_ref = prod.inputs
            if xtag != "buf" or bias_ref[0] != "leaf":
                continue
            if consumers.get(xbuf, 0) != 1:
                continue
            mi = producer[xbuf]
            if mi in skip:
                continue
            mm = records[mi]
            if mm.kind != "matmul" or mm.inputs[1][0] != "leaf":
                continue
            x_arr = _ref_array(mm.inputs[0], buffers)
            w_arr = _ref_array(mm.inputs[1], buffers)
            if x_arr is None or x_arr.ndim != 2 or w_arr is None or w_arr.ndim != 2:
                continue
            if _ref_array(bias_ref, buffers).ndim != 1:
                continue
            replaced[j] = TapeRecord(
                "linear_relu", (mm.inputs[0], mm.inputs[1], bias_ref), act.out, {}
            )
            skip.add(i)
            skip.add(mi)
    if not replaced:
        return records, 0
    fused = [replaced.get(j, r) for j, r in enumerate(records) if j not in skip]
    return fused, len(replaced)


# ----------------------------------------------------------------------
# executor

class TapeExecutor:
    """Replays one compiled program against arena buffers.

    One executor serves exactly one :func:`batch_signature`; the owning
    :class:`CompiledModel` guarantees it is never fed a batch with a
    different signature and serializes access (the arena is shared
    mutable state).
    """

    def __init__(
        self,
        records: List[TapeRecord],
        buffers: List[np.ndarray],
        out_index: int,
        batch: Any,
        dtype: Any = "float64",
        fused_ops: int = 0,
    ) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise CompilationError(f"unsupported tape dtype {dtype!r}")
        self.records = records
        self.out_index = out_index
        self.fused_ops = fused_ops
        if self.dtype == np.float64:
            # The captured eager outputs *are* the arena.
            self.bufs: List[np.ndarray] = list(buffers)
        else:
            self.bufs = [np.empty(b.shape, dtype=np.float32) for b in buffers]
        self.out_shape = buffers[out_index].shape
        self._view_outs = {r.out for r in records if r.kind in _VIEW_KINDS}
        self._syms: Dict[str, Any] = {}
        self._fwd_syms: set = set()
        self._bwd_syms: set = set()
        for rec in records:
            for tag, val in rec.inputs:
                if tag == "sym":
                    self._fwd_syms.add(val)
            mref = rec.meta.get("matrix_ref")
            if mref is not None and mref[0] == "sym":
                self._fwd_syms.add(mref[1])
                self._bwd_syms.add("propagation_t")
        self._leaf_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._batch: Any = None
        self._grads: List[Optional[np.ndarray]] = []
        self._grad_arrays: List[np.ndarray] = []
        self._bwd: Optional[List[Callable[[], None]]] = None
        self.set_batch(batch)
        self._fwd = [self._build_fwd(rec) for rec in records]

    # -- input plumbing -------------------------------------------------

    def set_batch(self, batch: Any) -> None:
        """Bind the symbolic inputs to a (same-signature) batch."""
        if batch is self._batch:
            return
        self._batch = batch
        self._load_syms(batch, include_backward=self._bwd is not None)

    def _load_syms(self, batch: Any, include_backward: bool) -> None:
        names = set(self._fwd_syms)
        if include_backward:
            names |= self._bwd_syms
        for name in names:
            if name == "attributes":
                value: Any = batch.attributes
            elif name == "propagation":
                value = batch.propagation
            elif name == "propagation_t":
                value = batch.propagation_transpose()
            else:  # pragma: no cover - names are produced above only
                raise CompilationError(f"unknown symbolic input {name!r}")
            self._syms[name] = self._cast_const(value)

    def _cast_const(self, value: Any) -> Any:
        if self.dtype == np.float64:
            return value
        if isinstance(value, np.ndarray):
            return np.ascontiguousarray(value, dtype=np.float32)
        return value.astype(np.float32)  # scipy sparse matrix

    def _leaf_value(self, tensor: Tensor) -> np.ndarray:
        """float32 view of a parameter, re-cast when ``.data`` rebinds.

        Optimizer steps and ``load_state_dict`` replace ``param.data``
        with a new array, so an identity check on the source array is a
        complete invalidation rule — no version counters needed.
        """
        entry = self._leaf_cache.get(id(tensor))
        if entry is None or entry[0] is not tensor.data:
            entry = (tensor.data, tensor.data.astype(np.float32))
            self._leaf_cache[id(tensor)] = entry
        return entry[1]

    def _reader(self, ref: Tuple[str, Any]) -> Callable[[], Any]:
        tag, val = ref
        if tag == "buf":
            if val in self._view_outs:
                bufs = self.bufs
                index = val
                return lambda: bufs[index]
            arr = self.bufs[val]
            return lambda: arr
        if tag == "leaf":
            tensor = val
            if self.dtype == np.float64:
                return lambda: tensor.data
            return lambda: self._leaf_value(tensor)
        if tag == "const":
            const = self._cast_const(val)
            return lambda: const
        syms = self._syms
        name = val
        return lambda: syms[name]

    def _scratch(self, shape: Tuple[int, ...], dtype: Any = None) -> np.ndarray:
        return np.empty(shape, dtype=self.dtype if dtype is None else dtype)

    # -- forward --------------------------------------------------------

    def forward(self, batch: Any) -> np.ndarray:
        """Replay the program; returns the output *arena buffer*.

        The returned array is reused by the next replay — callers that
        keep results must copy (``np.exp`` etc. already do).
        """
        self.set_batch(batch)
        for fn in self._fwd:
            fn()
        return self.bufs[self.out_index]

    def _build_fwd(self, rec: TapeRecord) -> Callable[[], None]:
        kind = rec.kind
        bufs = self.bufs
        out_index = rec.out
        readers = [self._reader(ref) for ref in rec.inputs]
        dst = None if out_index in self._view_outs else bufs[out_index]

        if kind in _VIEW_KINDS:
            a = readers[0]
            if kind == "reshape":
                shape = rec.meta["shape"]

                def fwd() -> None:
                    bufs[out_index] = a().reshape(shape)

            elif kind == "getitem":
                key = rec.meta["key"]

                def fwd() -> None:
                    bufs[out_index] = a()[key]

            else:  # transpose
                order = rec.meta["order"]

                def fwd() -> None:
                    bufs[out_index] = a().transpose(order)

            return fwd

        if kind == "add":
            a, b = readers

            def fwd() -> None:
                np.add(a(), b(), out=dst)

        elif kind == "sub":
            a, b = readers

            def fwd() -> None:
                np.subtract(a(), b(), out=dst)

        elif kind == "mul":
            a, b = readers

            def fwd() -> None:
                np.multiply(a(), b(), out=dst)

        elif kind == "div":
            a, b = readers

            def fwd() -> None:
                np.divide(a(), b(), out=dst)

        elif kind == "neg":
            a = readers[0]

            def fwd() -> None:
                np.negative(a(), out=dst)

        elif kind == "pow":
            a = readers[0]
            exponent = rec.meta["exponent"]

            def fwd() -> None:
                np.power(a(), exponent, out=dst)

        elif kind == "matmul":
            a, b = readers

            def fwd() -> None:
                np.matmul(a(), b(), out=dst)

        elif kind == "relu":

            a = readers[0]

            def fwd() -> None:
                np.maximum(a(), 0.0, out=dst)

        elif kind == "tanh":
            a = readers[0]

            def fwd() -> None:
                np.tanh(a(), out=dst)

        elif kind == "sigmoid":
            a = readers[0]

            def fwd() -> None:
                np.negative(a(), out=dst)
                np.exp(dst, out=dst)
                np.add(dst, 1.0, out=dst)
                np.divide(1.0, dst, out=dst)

        elif kind == "exp":
            a = readers[0]

            def fwd() -> None:
                np.exp(a(), out=dst)

        elif kind == "log":
            a = readers[0]

            def fwd() -> None:
                np.log(a(), out=dst)

        elif kind == "sum":
            a = readers[0]
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]

            def fwd() -> None:
                np.sum(a(), axis=axis, keepdims=keepdims, out=dst)

        elif kind == "max":
            a = readers[0]
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]
            state = rec.state

            def fwd() -> None:
                src = a()
                np.amax(src, axis=axis, keepdims=keepdims, out=dst)
                state["argmax"] = src.argmax(axis=axis)

        elif kind == "concat":
            axis = rec.meta["axis"]
            offsets = np.cumsum([0] + [r().shape[axis] for r in readers])
            views = []
            for i in range(len(readers)):
                sl = [slice(None)] * dst.ndim
                sl[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
                views.append(dst[tuple(sl)])

            def fwd() -> None:
                for view, reader in zip(views, readers):
                    np.copyto(view, reader())

        elif kind == "stack":
            axis = rec.meta["axis"]
            rows = np.moveaxis(dst, axis, 0)

            def fwd() -> None:
                for i, reader in enumerate(readers):
                    np.copyto(rows[i], reader())

        elif kind == "gather":
            a = readers[0]
            indices = rec.meta["indices"]

            def fwd() -> None:
                np.take(a(), indices, axis=0, out=dst)

        elif kind == "pad_rows":
            a = readers[0]
            n = rec.meta["rows"]
            dst[n:] = 0.0  # the pad region is never written again

            def fwd() -> None:
                np.copyto(dst[:n], a())

        elif kind == "sort_pool":
            a = readers[0]
            order_fn = rec.meta["order_fn"]
            m = min(a().shape[0], rec.meta["k"])
            state = rec.state
            dst[m:] = 0.0  # zero padding persists across replays
            head = dst[:m]

            def fwd() -> None:
                src = a()
                order = order_fn(src)
                state["order"] = order
                np.take(src, order[:m], axis=0, out=head)

        elif kind in ("spmm", "spmm_act"):
            a = readers[0]
            matrix = self._reader(rec.meta["matrix_ref"])
            activation = rec.meta.get("activation")
            if activation is None:

                def fwd() -> None:
                    _spmm_into(matrix(), a(), dst)

            elif activation == "tanh":

                def fwd() -> None:
                    _spmm_into(matrix(), a(), dst)
                    np.tanh(dst, out=dst)

            else:  # relu

                def fwd() -> None:
                    _spmm_into(matrix(), a(), dst)
                    np.maximum(dst, 0.0, out=dst)

        elif kind == "linear_relu":
            a, w, b = readers

            def fwd() -> None:
                np.matmul(a(), w(), out=dst)
                np.add(dst, b(), out=dst)
                np.maximum(dst, 0.0, out=dst)

        elif kind == "log_softmax":
            a = readers[0]
            axis = rec.meta["axis"]
            src_shape = a().shape
            red_shape = list(src_shape)
            red_shape[axis] = 1
            mx = self._scratch(tuple(red_shape))
            es = self._scratch(src_shape)
            sm = self._scratch(tuple(red_shape))

            def fwd() -> None:
                src = a()
                np.max(src, axis=axis, keepdims=True, out=mx)
                np.subtract(src, mx, out=dst)  # dst = shifted
                np.exp(dst, out=es)
                np.sum(es, axis=axis, keepdims=True, out=sm)
                np.log(sm, out=sm)
                np.subtract(dst, sm, out=dst)

        elif kind == "dropout":
            a = readers[0]
            p = rec.meta["p"]
            rng = rec.meta["rng"]
            rand = self._scratch(dst.shape)
            keep = np.empty(dst.shape, dtype=bool)
            mask = self._scratch(dst.shape)
            state = rec.state
            state["mask"] = mask
            scale = 1.0 - p

            def fwd() -> None:
                rng.random(out=rand)
                np.greater_equal(rand, p, out=keep)
                np.divide(keep, scale, out=mask)
                np.multiply(a(), mask, out=dst)

        elif kind == "conv1d":
            fwd = self._build_conv1d_fwd(rec, readers, dst)
        elif kind == "conv2d":
            fwd = self._build_conv2d_fwd(rec, readers, dst)
        elif kind == "max_pool2d":
            fwd = self._build_pool_fwd(rec, readers, dst, adaptive=False)
        elif kind == "adaptive_max_pool2d":
            fwd = self._build_pool_fwd(rec, readers, dst, adaptive=True)
        else:
            raise CompilationError(f"no replay kernel for op kind {kind!r}")
        return fwd

    def _build_conv1d_fwd(
        self, rec: TapeRecord, readers: List[Callable[[], Any]], dst: np.ndarray
    ) -> Callable[[], None]:
        x = readers[0]
        w = readers[1]
        b = readers[2] if rec.meta["has_bias"] else None
        stride = rec.meta["stride"]
        kernel = rec.meta["kernel"]
        l_out = rec.meta["l_out"]
        n, c_in = x().shape[0], x().shape[1]
        cols = self._scratch((n, c_in, kernel, l_out))
        rec.state["cols"] = cols

        def fwd() -> None:
            src = x()
            for k in range(kernel):
                cols[:, :, k, :] = src[:, :, k : k + stride * l_out : stride]
            np.einsum("nckl,fck->nfl", cols, w(), out=dst)
            if b is not None:
                np.add(dst, b()[None, :, None], out=dst)

        return fwd

    def _build_conv2d_fwd(
        self, rec: TapeRecord, readers: List[Callable[[], Any]], dst: np.ndarray
    ) -> Callable[[], None]:
        x = readers[0]
        w = readers[1]
        b = readers[2] if rec.meta["has_bias"] else None
        sh, sw = rec.meta["stride"]
        ph, pw = rec.meta["padding"]
        kh, kw = rec.meta["kernel"]
        h_out, w_out = rec.meta["out_hw"]
        n, c_in, height, width = x().shape
        cols = self._scratch((n, c_in, kh, kw, h_out, w_out))
        rec.state["cols"] = cols
        if ph or pw:
            padded = np.zeros(
                (n, c_in, height + 2 * ph, width + 2 * pw), dtype=self.dtype
            )
            interior = padded[:, :, ph : ph + height, pw : pw + width]
        else:
            padded = None
            interior = None

        def fwd() -> None:
            src = x()
            if padded is not None:
                np.copyto(interior, src)
                src = padded
            for i in range(kh):
                for j in range(kw):
                    cols[:, :, i, j, :, :] = src[
                        :, :, i : i + sh * h_out : sh, j : j + sw * w_out : sw
                    ]
            np.einsum("ncijhw,fcij->nfhw", cols, w(), out=dst)
            if b is not None:
                np.add(dst, b()[None, :, None, None], out=dst)

        return fwd

    def _build_pool_fwd(
        self,
        rec: TapeRecord,
        readers: List[Callable[[], Any]],
        dst: np.ndarray,
        adaptive: bool,
    ) -> Callable[[], None]:
        from repro.nn.functional import adaptive_window_bounds

        x = readers[0]
        n, c, height, width = x().shape
        if adaptive:
            oh_size, ow_size = rec.meta["grid"]
            windows = []
            for oh in range(oh_size):
                h0, h1 = adaptive_window_bounds(height, oh_size, oh)
                for ow in range(ow_size):
                    w0, w1 = adaptive_window_bounds(width, ow_size, ow)
                    windows.append((oh, ow, h0, h1, w0, w1))
        else:
            kh, kw = rec.meta["kernel"]
            sh, sw = rec.meta["stride"]
            oh_size, ow_size = rec.meta["out_hw"]
            windows = [
                (oh, ow, oh * sh, oh * sh + kh, ow * sw, ow * sw + kw)
                for oh in range(oh_size)
                for ow in range(ow_size)
            ]
        argmax = np.empty((n, c, oh_size, ow_size, 2), dtype=np.int64)
        rec.state["argmax"] = argmax

        def fwd() -> None:
            src = x()
            for oh, ow, h0, h1, w0, w1 in windows:
                window = src[:, :, h0:h1, w0:w1]
                flat = window.reshape(n, c, -1)
                best = flat.argmax(axis=2)
                dst[:, :, oh, ow] = np.take_along_axis(flat, best[:, :, None], axis=2)[
                    :, :, 0
                ]
                win_w = w1 - w0
                argmax[:, :, oh, ow, 0] = h0 + best // win_w
                argmax[:, :, oh, ow, 1] = w0 + best % win_w

        return fwd

    # -- backward -------------------------------------------------------

    def backward(self, seed: np.ndarray) -> None:
        """Accumulate parameter gradients for the last replayed forward.

        Kernel-for-kernel this performs the same arithmetic, in the same
        node order, as eager ``Tensor.backward`` — the program is stored
        in forward topological order, so iterating it reversed *is* the
        eager processing order.
        """
        if self.dtype != np.float64:
            raise GradientError("backward requires float64 compiled execution")
        if self._bwd is None:
            self._build_backward()
        seed = np.asarray(seed, dtype=np.float64)
        if seed.shape != self.out_shape:
            raise GradientError(
                f"seed shape {seed.shape} does not match output {self.out_shape}"
            )
        for grad in self._grad_arrays:
            grad.fill(0.0)
        np.add(self._grads[self.out_index], seed, out=self._grads[self.out_index])
        for fn in self._bwd:
            fn()

    def _build_backward(self) -> None:
        self._grads = [None] * len(self.bufs)
        for rec in self.records:
            if self._grads[rec.out] is None:
                self._grads[rec.out] = np.zeros(self.bufs[rec.out].shape)
        self._grad_arrays = [g for g in self._grads if g is not None]
        bwd: List[Callable[[], None]] = []
        for rec in reversed(self.records):
            fn = self._build_bwd(rec)
            if fn is not None:
                bwd.append(fn)
        self._bwd = bwd
        # propagation_t (only needed here) must be bound for the batch
        # the last forward ran against.
        if self._batch is not None:
            self._load_syms(self._batch, include_backward=True)

    def _accumulator(self, ref: Tuple[str, Any]) -> Optional[Callable[[np.ndarray], None]]:
        tag, val = ref
        if tag == "buf":
            arr = self._grads[val]

            def acc(v: np.ndarray) -> None:
                np.add(arr, v, out=arr)

            return acc
        if tag == "leaf":
            tensor = val

            def acc(v: np.ndarray) -> None:
                if tensor.grad is None:
                    tensor.grad = np.zeros_like(tensor.data)
                np.add(tensor.grad, v, out=tensor.grad)

            return acc
        return None

    def _build_bwd(self, rec: TapeRecord) -> Optional[Callable[[], None]]:
        kind = rec.kind
        readers = [self._reader(ref) for ref in rec.inputs]
        accs = [self._accumulator(ref) for ref in rec.inputs]
        if not any(accs):
            return None
        g = self._grads[rec.out]
        out_buf = None if rec.out in self._view_outs else self.bufs[rec.out]
        shapes = [
            val.data.shape
            if tag == "leaf"
            else (self.bufs[val].shape if tag == "buf" else np.shape(val))
            for tag, val in rec.inputs
        ]

        if kind == "add":
            parts = []
            for acc, shape in zip(accs, shapes):
                if acc is None:
                    continue
                if shape == g.shape:
                    parts.append(lambda acc=acc: acc(g))
                else:
                    parts.append(lambda acc=acc, shape=shape: acc(_unbroadcast(g, shape)))

            def bwd() -> None:
                for part in parts:
                    part()

        elif kind == "sub":
            acc_a, acc_b = accs

            def bwd() -> None:
                if acc_a is not None:
                    acc_a(_unbroadcast(g, shapes[0]))
                if acc_b is not None:
                    acc_b(_unbroadcast(-g, shapes[1]))

        elif kind == "mul":
            a, b = readers
            acc_a, acc_b = accs

            def bwd() -> None:
                if acc_a is not None:
                    acc_a(_unbroadcast(g * b(), shapes[0]))
                if acc_b is not None:
                    acc_b(_unbroadcast(g * a(), shapes[1]))

        elif kind == "div":
            a, b = readers
            acc_a, acc_b = accs

            def bwd() -> None:
                if acc_a is not None:
                    acc_a(_unbroadcast(g / b(), shapes[0]))
                if acc_b is not None:
                    bv = b()
                    acc_b(_unbroadcast(-g * a() / (bv * bv), shapes[1]))

        elif kind == "neg":
            acc_a = accs[0]
            scr = np.empty(g.shape)

            def bwd() -> None:
                np.negative(g, out=scr)
                acc_a(scr)

        elif kind == "pow":
            a = readers[0]
            acc_a = accs[0]
            exponent = rec.meta["exponent"]

            def bwd() -> None:
                acc_a(g * exponent * a() ** (exponent - 1))

        elif kind == "matmul":
            bwd = self._build_matmul_bwd(g, readers, accs, shapes)
        elif kind == "transpose":
            acc_a = accs[0]
            inverse = np.argsort(rec.meta["order"])

            def bwd() -> None:
                acc_a(g.transpose(inverse))

        elif kind == "reshape":
            acc_a = accs[0]
            in_shape = shapes[0]

            def bwd() -> None:
                acc_a(g.reshape(in_shape))

        elif kind == "getitem":
            key = rec.meta["key"]
            tag, val = rec.inputs[0]
            if tag == "buf":
                target = self._grads[val]

                def bwd() -> None:
                    np.add.at(target, key, g)

            else:
                acc_a = accs[0]
                scr = np.empty(shapes[0])

                def bwd() -> None:
                    scr.fill(0.0)
                    np.add.at(scr, key, g)
                    acc_a(scr)

        elif kind == "sum":
            acc_a = accs[0]
            in_shape = shapes[0]
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]
            if axis is None:

                def bwd() -> None:
                    acc_a(np.broadcast_to(g, in_shape))

            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)

                def bwd() -> None:
                    expanded = g
                    if not keepdims:
                        for a in sorted(axes):
                            expanded = np.expand_dims(expanded, a)
                    acc_a(np.broadcast_to(expanded, in_shape))

        elif kind == "max":
            acc_a = accs[0]
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]
            state = rec.state
            scr = np.empty(shapes[0])

            def bwd() -> None:
                scr.fill(0.0)
                grad_vals = g if keepdims else np.expand_dims(g, axis)
                idx = np.expand_dims(state["argmax"], axis)
                np.put_along_axis(scr, idx, grad_vals, axis)
                acc_a(scr)

        elif kind == "relu":
            acc_a = accs[0]
            mask = np.empty(g.shape, dtype=bool)
            scr = np.empty(g.shape)

            def bwd() -> None:
                np.greater(out_buf, 0.0, out=mask)
                np.multiply(g, mask, out=scr)
                acc_a(scr)

        elif kind == "tanh":
            acc_a = accs[0]
            scr = np.empty(g.shape)

            def bwd() -> None:
                np.multiply(out_buf, out_buf, out=scr)
                np.subtract(1.0, scr, out=scr)
                np.multiply(g, scr, out=scr)
                acc_a(scr)

        elif kind == "sigmoid":
            acc_a = accs[0]
            scr = np.empty(g.shape)
            scr2 = np.empty(g.shape)

            def bwd() -> None:
                np.multiply(g, out_buf, out=scr)
                np.subtract(1.0, out_buf, out=scr2)
                np.multiply(scr, scr2, out=scr)
                acc_a(scr)

        elif kind == "exp":
            acc_a = accs[0]
            scr = np.empty(g.shape)

            def bwd() -> None:
                np.multiply(g, out_buf, out=scr)
                acc_a(scr)

        elif kind == "log":
            a = readers[0]
            acc_a = accs[0]
            scr = np.empty(g.shape)

            def bwd() -> None:
                np.divide(g, a(), out=scr)
                acc_a(scr)

        elif kind == "concat":
            axis = rec.meta["axis"]
            offsets = np.cumsum([0] + [shape[axis] for shape in shapes])
            views = []
            for i in range(len(readers)):
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(offsets[i]), int(offsets[i + 1]))
                views.append(g[tuple(sl)])

            def bwd() -> None:
                for acc, view in zip(accs, views):
                    if acc is not None:
                        acc(view)

        elif kind == "stack":
            rows = np.moveaxis(g, rec.meta["axis"], 0)

            def bwd() -> None:
                for i, acc in enumerate(accs):
                    if acc is not None:
                        acc(rows[i])

        elif kind == "gather":
            acc_a = accs[0]
            indices = rec.meta["indices"]
            scr = np.empty(shapes[0])

            def bwd() -> None:
                scr.fill(0.0)
                np.add.at(scr, indices, g)
                acc_a(scr)

        elif kind == "pad_rows":
            acc_a = accs[0]
            head = g[: rec.meta["rows"]]

            def bwd() -> None:
                acc_a(head)

        elif kind == "sort_pool":
            acc_a = accs[0]
            m = min(shapes[0][0], rec.meta["k"])
            state = rec.state
            scr = np.empty(shapes[0])
            g_head = g[:m]

            def bwd() -> None:
                scr.fill(0.0)
                np.add.at(scr, state["order"][:m], g_head)
                acc_a(scr)

        elif kind in ("spmm", "spmm_act"):
            bwd = self._build_spmm_bwd(rec, g, accs, shapes, out_buf)
        elif kind == "linear_relu":
            bwd = self._build_linear_relu_bwd(rec, g, readers, accs, shapes, out_buf)
        elif kind == "log_softmax":
            acc_a = accs[0]
            axis = rec.meta["axis"]
            red_shape = list(g.shape)
            red_shape[axis] = 1
            es = np.empty(g.shape)
            sm = np.empty(tuple(red_shape))
            scr = np.empty(g.shape)

            def bwd() -> None:
                np.exp(out_buf, out=es)
                np.sum(g, axis=axis, keepdims=True, out=sm)
                np.multiply(es, sm, out=es)
                np.subtract(g, es, out=scr)
                acc_a(scr)

        elif kind == "dropout":
            acc_a = accs[0]
            state = rec.state
            scr = np.empty(g.shape)

            def bwd() -> None:
                np.multiply(g, state["mask"], out=scr)
                acc_a(scr)

        elif kind == "conv1d":
            bwd = self._build_conv1d_bwd(rec, g, readers, accs, shapes)
        elif kind == "conv2d":
            bwd = self._build_conv2d_bwd(rec, g, readers, accs, shapes)
        elif kind in ("max_pool2d", "adaptive_max_pool2d"):
            acc_a = accs[0]
            state = rec.state
            n, c = shapes[0][0], shapes[0][1]
            n_idx, c_idx = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
            oh_size, ow_size = g.shape[2], g.shape[3]
            scr = np.empty(shapes[0])

            def bwd() -> None:
                scr.fill(0.0)
                argmax = state["argmax"]
                for oh in range(oh_size):
                    for ow in range(ow_size):
                        rows = argmax[:, :, oh, ow, 0]
                        cols = argmax[:, :, oh, ow, 1]
                        np.add.at(scr, (n_idx, c_idx, rows, cols), g[:, :, oh, ow])
                acc_a(scr)

        else:
            raise CompilationError(f"no backward kernel for op kind {kind!r}")
        return bwd

    def _build_matmul_bwd(
        self,
        g: np.ndarray,
        readers: List[Callable[[], Any]],
        accs: List[Optional[Callable[[np.ndarray], None]]],
        shapes: List[Tuple[int, ...]],
    ) -> Callable[[], None]:
        a, b = readers
        acc_a, acc_b = accs
        if len(shapes[0]) == 2 and len(shapes[1]) == 2:
            scr_a = np.empty(shapes[0]) if acc_a is not None else None
            scr_b = np.empty(shapes[1]) if acc_b is not None else None

            def bwd() -> None:
                if acc_a is not None:
                    np.matmul(g, b().swapaxes(-1, -2), out=scr_a)
                    acc_a(scr_a)
                if acc_b is not None:
                    np.matmul(a().swapaxes(-1, -2), g, out=scr_b)
                    acc_b(scr_b)

            return bwd

        def bwd() -> None:
            # 1-D operand promotion: mirror the eager rule exactly.
            av, bv = a(), b()
            a2 = av[None, :] if av.ndim == 1 else av
            b2 = bv[:, None] if bv.ndim == 1 else bv
            g2 = g
            if av.ndim == 1:
                g2 = g2[None, ...]
            if bv.ndim == 1:
                g2 = g2[..., None]
            if acc_a is not None:
                grad_a = g2 @ b2.swapaxes(-1, -2)
                if av.ndim == 1:
                    grad_a = grad_a.reshape(av.shape)
                acc_a(grad_a)
            if acc_b is not None:
                grad_b = a2.swapaxes(-1, -2) @ g2
                if bv.ndim == 1:
                    grad_b = grad_b.reshape(bv.shape)
                acc_b(grad_b)

        return bwd

    def _matrix_t_reader(self, rec: TapeRecord) -> Callable[[], Any]:
        t_ref = rec.meta.get("matrix_t_ref")
        if t_ref is not None:
            return self._reader(t_ref)
        matrix, cache = rec.meta["matrix_t_src"]
        transposed = cache.get("t")
        if transposed is None:
            transposed = matrix.T.tocsr()
        const = self._cast_const(transposed)
        return lambda: const

    def _build_spmm_bwd(
        self,
        rec: TapeRecord,
        g: np.ndarray,
        accs: List[Optional[Callable[[np.ndarray], None]]],
        shapes: List[Tuple[int, ...]],
        out_buf: Optional[np.ndarray],
    ) -> Callable[[], None]:
        acc_x = accs[0]
        matrix_t = self._matrix_t_reader(rec)
        scr_in = np.empty(shapes[0])
        activation = rec.meta.get("activation")
        if activation is None:

            def bwd() -> None:
                _spmm_into(matrix_t(), g, scr_in)
                acc_x(scr_in)

            return bwd
        scr_out = np.empty(g.shape)
        if activation == "tanh":

            def bwd() -> None:
                np.multiply(out_buf, out_buf, out=scr_out)
                np.subtract(1.0, scr_out, out=scr_out)
                np.multiply(g, scr_out, out=scr_out)
                _spmm_into(matrix_t(), scr_out, scr_in)
                acc_x(scr_in)

        else:  # relu
            mask = np.empty(g.shape, dtype=bool)

            def bwd() -> None:
                np.greater(out_buf, 0.0, out=mask)
                np.multiply(g, mask, out=scr_out)
                _spmm_into(matrix_t(), scr_out, scr_in)
                acc_x(scr_in)

        return bwd

    def _build_linear_relu_bwd(
        self,
        rec: TapeRecord,
        g: np.ndarray,
        readers: List[Callable[[], Any]],
        accs: List[Optional[Callable[[np.ndarray], None]]],
        shapes: List[Tuple[int, ...]],
        out_buf: Optional[np.ndarray],
    ) -> Callable[[], None]:
        x, w, _ = readers
        acc_x, acc_w, acc_b = accs
        mask = np.empty(g.shape, dtype=bool)
        grad_pre = np.empty(g.shape)
        scr_x = np.empty(shapes[0]) if acc_x is not None else None
        scr_w = np.empty(shapes[1]) if acc_w is not None else None
        scr_b = np.empty(shapes[2]) if acc_b is not None else None

        def bwd() -> None:
            np.greater(out_buf, 0.0, out=mask)
            np.multiply(g, mask, out=grad_pre)
            if acc_x is not None:
                np.matmul(grad_pre, w().swapaxes(-1, -2), out=scr_x)
                acc_x(scr_x)
            if acc_w is not None:
                np.matmul(x().swapaxes(-1, -2), grad_pre, out=scr_w)
                acc_w(scr_w)
            if acc_b is not None:
                np.sum(grad_pre, axis=0, out=scr_b)
                acc_b(scr_b)

        return bwd

    def _build_conv1d_bwd(
        self,
        rec: TapeRecord,
        g: np.ndarray,
        readers: List[Callable[[], Any]],
        accs: List[Optional[Callable[[np.ndarray], None]]],
        shapes: List[Tuple[int, ...]],
    ) -> Callable[[], None]:
        w = readers[1]
        acc_x = accs[0]
        acc_w = accs[1]
        acc_b = accs[2] if rec.meta["has_bias"] else None
        stride = rec.meta["stride"]
        kernel = rec.meta["kernel"]
        l_out = rec.meta["l_out"]
        state = rec.state
        scr_w = np.empty(shapes[1]) if acc_w is not None else None
        scr_cols = np.empty(state["cols"].shape)
        scr_x = np.empty(shapes[0]) if acc_x is not None else None
        scr_b = np.empty(shapes[2]) if acc_b is not None else None

        def bwd() -> None:
            if acc_w is not None:
                np.einsum("nfl,nckl->fck", g, state["cols"], out=scr_w)
                acc_w(scr_w)
            if acc_x is not None:
                np.einsum("nfl,fck->nckl", g, w(), out=scr_cols)
                scr_x.fill(0.0)
                for k in range(kernel):
                    scr_x[:, :, k : k + stride * l_out : stride] += scr_cols[:, :, k, :]
                acc_x(scr_x)
            if acc_b is not None:
                np.sum(g, axis=(0, 2), out=scr_b)
                acc_b(scr_b)

        return bwd

    def _build_conv2d_bwd(
        self,
        rec: TapeRecord,
        g: np.ndarray,
        readers: List[Callable[[], Any]],
        accs: List[Optional[Callable[[np.ndarray], None]]],
        shapes: List[Tuple[int, ...]],
    ) -> Callable[[], None]:
        w = readers[1]
        acc_x = accs[0]
        acc_w = accs[1]
        acc_b = accs[2] if rec.meta["has_bias"] else None
        sh, sw = rec.meta["stride"]
        ph, pw = rec.meta["padding"]
        kh, kw = rec.meta["kernel"]
        h_out, w_out = rec.meta["out_hw"]
        n, c_in, height, width = shapes[0]
        state = rec.state
        scr_w = np.empty(shapes[1]) if acc_w is not None else None
        scr_cols = np.empty(state["cols"].shape)
        scr_pad = np.empty((n, c_in, height + 2 * ph, width + 2 * pw))
        grad_x = (
            scr_pad[:, :, ph : ph + height, pw : pw + width] if (ph or pw) else scr_pad
        )
        scr_b = np.empty(shapes[2]) if acc_b is not None else None

        def bwd() -> None:
            if acc_w is not None:
                np.einsum("nfhw,ncijhw->fcij", g, state["cols"], out=scr_w)
                acc_w(scr_w)
            if acc_x is not None:
                np.einsum("nfhw,fcij->ncijhw", g, w(), out=scr_cols)
                scr_pad.fill(0.0)
                for i in range(kh):
                    for j in range(kw):
                        scr_pad[
                            :, :, i : i + sh * h_out : sh, j : j + sw * w_out : sw
                        ] += scr_cols[:, :, i, j, :, :]
                acc_x(grad_x)
            if acc_b is not None:
                np.sum(g, axis=(0, 2, 3), out=scr_b)
                acc_b(scr_b)

        return bwd


# ----------------------------------------------------------------------
# public entry points


def compile_output(output: Tensor, batch: Any, dtype: Any = "float64") -> TapeExecutor:
    """Compile one recorded eager forward into a replayable executor."""
    records, buffers, out_index = _record_graph(output, batch)
    records, fused = _fuse_program(records, buffers, out_index)
    return TapeExecutor(records, buffers, out_index, batch, dtype=dtype, fused_ops=fused)


class CompiledModel:
    """Signature-keyed cache of compiled executors for one model.

    ``forward`` / ``infer`` return the *log-probability array* (not a
    Tensor): on a signature miss the eager forward runs once and is
    compiled as a side effect; on a hit the stored tape replays.  The
    LRU bound keeps memory proportional to the number of distinct batch
    shapes in flight; capture is cheap (one eager forward), so eviction
    and worker ``respawn()`` simply re-capture.
    """

    def __init__(self, model: Any, dtype: Any = "float64", max_entries: int = 32) -> None:
        self.model = model
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise CompilationError(f"unsupported compiled dtype {dtype!r}")
        if max_entries < 1:
            raise CompilationError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[Any, ...], TapeExecutor]" = OrderedDict()
        self._lock = threading.RLock()
        self._last_executor: Optional[TapeExecutor] = None
        self._last_eager: Optional[Tensor] = None
        self.captures = 0
        self.replays = 0
        self.evictions = 0

    def forward(self, batch: Any) -> np.ndarray:
        """Compiled forward honouring the model's current train/eval mode."""
        with self._lock:
            training = bool(getattr(self.model, "training", False))
            if training and self.dtype != np.dtype(np.float64):
                raise CompilationError(
                    "float32 compiled execution is inference-only; train in float64"
                )
            signature = batch_signature(batch, training, self.dtype)
            executor = self._entries.get(signature)
            if executor is not None:
                self._entries.move_to_end(signature)
                self.replays += 1
                self._last_executor = executor
                self._last_eager = None
                return executor.forward(batch)
            # Miss: run eagerly once, compile the recorded graph.
            output = self.model(batch)
            executor = compile_output(output, batch, dtype=self.dtype)
            self._entries[signature] = executor
            self.captures += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            if self.dtype == np.dtype(np.float64):
                # The eager output is already exact; keep its graph so a
                # capture-step backward() runs eagerly (replay kernels
                # have no saved forward state yet).
                self._last_executor = None
                self._last_eager = output
                return output.data
            self._last_executor = executor
            self._last_eager = None
            return executor.forward(batch)

    def infer(self, batch: Any) -> np.ndarray:
        """Eval-mode compiled forward (restores the previous mode)."""
        with self._lock:
            was_training = bool(getattr(self.model, "training", False))
            if was_training:
                self.model.train(False)
            try:
                return self.forward(batch)
            finally:
                if was_training:
                    self.model.train(True)

    def backward(self, seed: np.ndarray) -> None:
        """Backward for the most recent :meth:`forward` (float64 only)."""
        with self._lock:
            if self._last_eager is not None:
                self._last_eager.backward(seed)
            elif self._last_executor is not None:
                self._last_executor.backward(seed)
            else:
                raise GradientError("backward() before any compiled forward()")

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "dtype": str(self.dtype),
                "entries": len(self._entries),
                "captures": self.captures,
                "replays": self.replays,
                "evictions": self.evictions,
                "fused_ops": sum(e.fused_ops for e in self._entries.values()),
            }
