"""Gradient clipping.

Graph convolutions over high-degree dispatch blocks can occasionally
produce large gradients early in training; global-norm clipping (the
standard remedy) caps the update magnitude without changing its
direction.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.nn.layers import Parameter


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Parameters without gradients are
    ignored; if nothing has a gradient the norm is 0 and nothing
    changes.
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    with_grads = [p for p in parameters if p.grad is not None]
    for param in with_grads:
        total += float((param.grad ** 2).sum())
    norm = math.sqrt(total)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in with_grads:
            param.grad = param.grad * scale
    return norm
