"""Optimizers: SGD (with momentum) and Adam.

The paper trains with Adam (Kingma & Ba) plus L2 weight regularization
(Table II sweeps the weight-decay factor); both are implemented here with
the standard update rules.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with decoupled-from-nothing L2 decay.

    ``weight_decay`` is classic L2 (added to the gradient), matching
    PyTorch's ``torch.optim.Adam`` which the paper uses.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
