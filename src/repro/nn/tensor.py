"""Reverse-mode automatic differentiation over numpy arrays.

This module is the numerical heart of the reproduction.  The paper trains
its models with PyTorch; since no deep-learning framework is available in
this environment, we implement the minimal-but-complete equivalent: a
:class:`Tensor` that records the computation graph on the fly and a
:meth:`Tensor.backward` that walks it in reverse topological order,
accumulating gradients.

Design notes
------------
* Every differentiable operation creates a new tensor whose ``_grad_fn``
  maps the incoming output gradient to per-parent input gradients.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` sums
  gradients back down to each parent's shape.
* Gradients are plain ``numpy.ndarray``s stored on leaf (and, when
  requested, interior) tensors, mirroring PyTorch's ``.grad``.
* Every op additionally stamps its output with a tape kind (``_op``) and
  the static metadata a replay kernel needs (``_op_meta``) so that
  :mod:`repro.nn.tape` can compile a recorded graph into a flat op list
  without re-executing Python closures.  Ops built purely by composing
  other ops (``mean``, ``max_pool1d``) need no kind of their own.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GradientError, ShapeError

ArrayLike = Union["Tensor", np.ndarray, float, int, list]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away prepended broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along dimensions that were broadcast from size one.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the bookkeeping for reverse-mode autodiff."""

    __slots__ = (
        "data",
        "requires_grad",
        "grad",
        "_parents",
        "_grad_fn",
        "_op",
        "_op_meta",
        "_order_cache",
        "name",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._grad_fn: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None
        self._op: Optional[str] = None
        self._op_meta: Optional[dict] = None
        self._order_cache: Optional[List["Tensor"]] = None
        self.name = name

    # ------------------------------------------------------------------
    # graph construction

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        grad_fn: Callable[[np.ndarray], Sequence[Optional[np.ndarray]]],
        op: Optional[str] = None,
        meta: Optional[dict] = None,
    ) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._grad_fn = grad_fn
            out._op = op
            out._op_meta = meta
        return out

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Zero the gradient in place.

        The gradient array is kept (and filled with zeros) rather than
        dropped so that buffers referenced by compiled tape replays —
        and by optimizers holding views — survive across steps without
        reallocation.  A tensor that never received a gradient keeps
        ``grad is None``.
        """
        if self.grad is not None:
            self.grad.fill(0.0)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # backward

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise GradientError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise GradientError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        # The recorded graph is immutable once built, so repeated
        # backward() calls over the same output (gradient accumulation)
        # reuse the first walk instead of re-deriving it.
        if self._order_cache is None:
            self._order_cache = self._topological_order()
        order = self._order_cache
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                # In-place accumulation: `.grad` buffers persist across
                # steps (see zero_grad) instead of being reallocated.
                node.grad += node_grad
            if node._grad_fn is None:
                continue
            parent_grads = node._grad_fn(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    def _topological_order(self) -> List["Tensor"]:
        order: List[Tensor] = []
        visited: set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # elementwise arithmetic

    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def grad_fn(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other.data.shape),
            )

        return Tensor._make(out_data, (self, other), grad_fn, op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def grad_fn(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), grad_fn, op="neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def grad_fn(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(-grad, other.data.shape),
            )

        return Tensor._make(out_data, (self, other), grad_fn, op="sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def grad_fn(grad: np.ndarray):
            return (
                _unbroadcast(grad * other.data, self.data.shape),
                _unbroadcast(grad * self.data, other.data.shape),
            )

        return Tensor._make(out_data, (self, other), grad_fn, op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def grad_fn(grad: np.ndarray):
            return (
                _unbroadcast(grad / other.data, self.data.shape),
                _unbroadcast(
                    -grad * self.data / (other.data * other.data),
                    other.data.shape,
                ),
            )

        return Tensor._make(out_data, (self, other), grad_fn, op="div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ShapeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def grad_fn(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(
            out_data, (self,), grad_fn, op="pow", meta={"exponent": exponent}
        )

    # ------------------------------------------------------------------
    # matrix ops

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting 2-D operands (and 1-D vectors)."""
        other = self._coerce(other)
        out_data = self.data @ other.data

        def grad_fn(grad: np.ndarray):
            a, b = self.data, other.data
            # Promote 1-D operands to 2-D, apply the 2-D rule, then
            # squeeze the promoted axis back out of the result.
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            grad2 = np.asarray(grad)
            if a.ndim == 1:
                grad2 = grad2[None, ...]
            if b.ndim == 1:
                grad2 = grad2[..., None]
            grad_a = grad2 @ b2.swapaxes(-1, -2)
            grad_b = a2.swapaxes(-1, -2) @ grad2
            if a.ndim == 1:
                grad_a = grad_a.reshape(a.shape)
            if b.ndim == 1:
                grad_b = grad_b.reshape(b.shape)
            return (grad_a, grad_b)

        return Tensor._make(out_data, (self, other), grad_fn, op="matmul")

    __matmul__ = matmul

    def transpose(self, *axes: int) -> "Tensor":
        order = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(order)
        inverse = np.argsort(order)

        def grad_fn(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(
            out_data, (self,), grad_fn, op="transpose", meta={"order": tuple(order)}
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def grad_fn(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(
            out_data, (self,), grad_fn, op="reshape", meta={"shape": tuple(shape)}
        )

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        original_shape = self.data.shape

        def grad_fn(grad: np.ndarray):
            full = np.zeros(original_shape, dtype=np.float64)
            np.add.at(full, key, grad)
            return (full,)

        return Tensor._make(out_data, (self,), grad_fn, op="getitem", meta={"key": key})

    # ------------------------------------------------------------------
    # reductions

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        original_shape = self.data.shape

        def grad_fn(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, original_shape).copy(),)
            grad_expanded = grad
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(original_shape) for a in axes)
                for a in sorted(axes):
                    grad_expanded = np.expand_dims(grad_expanded, a)
            return (np.broadcast_to(grad_expanded, original_shape).copy(),)

        return Tensor._make(
            out_data,
            (self,),
            grad_fn,
            op="sum",
            meta={"axis": axis, "keepdims": keepdims},
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.data.shape[a]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum along one axis; gradient routes to the arg-max entries."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        argmax = self.data.argmax(axis=axis)
        original_shape = self.data.shape

        def grad_fn(grad: np.ndarray):
            grad_in = np.zeros(original_shape, dtype=np.float64)
            grad_vals = grad if keepdims else np.expand_dims(grad, axis)
            idx = np.expand_dims(argmax, axis)
            np.put_along_axis(grad_in, idx, grad_vals, axis)
            return (grad_in,)

        return Tensor._make(
            out_data,
            (self,),
            grad_fn,
            op="max",
            meta={"axis": axis, "keepdims": keepdims},
        )

    # ------------------------------------------------------------------
    # elementwise nonlinearities

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def grad_fn(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(np.where(mask, self.data, 0.0), (self,), grad_fn, op="relu")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def grad_fn(grad: np.ndarray):
            return (grad * (1.0 - out_data * out_data),)

        return Tensor._make(out_data, (self,), grad_fn, op="tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def grad_fn(grad: np.ndarray):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), grad_fn, op="sigmoid")

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def grad_fn(grad: np.ndarray):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), grad_fn, op="exp")

    def log(self) -> "Tensor":
        def grad_fn(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(np.log(self.data), (self,), grad_fn, op="log")


# ----------------------------------------------------------------------
# free functions building multi-parent nodes


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient splitting."""
    tensors = [Tensor._coerce(t) for t in tensors]
    if not tensors:
        raise ShapeError("concatenate() needs at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def grad_fn(grad: np.ndarray):
        pieces = []
        for i in range(len(tensors)):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(index)])
        return tuple(pieces)

    return Tensor._make(out_data, tuple(tensors), grad_fn, op="concat", meta={"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shaped tensors along a new axis."""
    tensors = [Tensor._coerce(t) for t in tensors]
    if not tensors:
        raise ShapeError("stack() needs at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def grad_fn(grad: np.ndarray):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(piece, axis=axis) for piece in pieces)

    return Tensor._make(out_data, tuple(tensors), grad_fn, op="stack", meta={"axis": axis})


def gather_rows(tensor: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows of a 2-D tensor; gradient scatter-adds back.

    Used by SortPooling, where the row permutation is computed from the
    forward values and treated as constant during backprop.
    """
    tensor = Tensor._coerce(tensor)
    if tensor.ndim != 2:
        raise ShapeError(f"gather_rows expects a 2-D tensor, got {tensor.shape}")
    indices = np.asarray(indices, dtype=np.int64)
    out_data = tensor.data[indices]
    n_rows = tensor.data.shape[0]

    def grad_fn(grad: np.ndarray):
        grad_in = np.zeros_like(tensor.data)
        np.add.at(grad_in, indices, grad)
        return (grad_in,)

    return Tensor._make(
        out_data, (tensor,), grad_fn, op="gather", meta={"indices": indices}
    )


def pad_rows(tensor: Tensor, total_rows: int) -> Tensor:
    """Zero-pad a 2-D tensor along axis 0 up to ``total_rows`` rows."""
    tensor = Tensor._coerce(tensor)
    if tensor.ndim != 2:
        raise ShapeError(f"pad_rows expects a 2-D tensor, got {tensor.shape}")
    n, c = tensor.shape
    if total_rows < n:
        raise ShapeError(f"cannot pad {n} rows down to {total_rows}")
    if total_rows == n:
        return tensor
    out_data = np.zeros((total_rows, c), dtype=np.float64)
    out_data[:n] = tensor.data

    def grad_fn(grad: np.ndarray):
        return (grad[:n],)

    return Tensor._make(out_data, (tensor,), grad_fn, op="pad_rows", meta={"rows": n})
