"""From-scratch neural-network engine (numpy + reverse-mode autodiff).

The paper's models run on PyTorch; this package is the substrate
replacement: :class:`Tensor` autograd, layers, pooling, optimizers,
LR scheduling, and losses.  See DESIGN.md section 2 for the
substitution rationale.
"""

from repro.nn import functional
from repro.nn.clip import clip_grad_norm
from repro.nn.layers import (
    Conv1d,
    Conv2d,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.loss import cross_entropy, nll_loss
from repro.nn.lr_scheduler import ReduceLROnPlateau
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.pooling import AdaptiveMaxPool2d, MaxPool2d
from repro.nn.tape import CompiledModel, TapeExecutor, batch_signature, compile_output
from repro.nn.tensor import Tensor, concatenate, gather_rows, pad_rows, stack

__all__ = [
    "Adam",
    "AdaptiveMaxPool2d",
    "Conv1d",
    "Conv2d",
    "Dropout",
    "Linear",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "ReduceLROnPlateau",
    "SGD",
    "Sequential",
    "Tanh",
    "Tensor",
    "CompiledModel",
    "TapeExecutor",
    "batch_signature",
    "clip_grad_norm",
    "compile_output",
    "concatenate",
    "cross_entropy",
    "functional",
    "gather_rows",
    "nll_loss",
    "pad_rows",
    "stack",
]
