"""Weight initialization schemes.

Matches the defaults the paper's PyTorch implementation inherits:
Glorot/Xavier uniform for graph-convolution and linear weights, Kaiming
uniform for convolutions, zeros for biases.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def xavier_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform: ``U(-a, a)`` with ``a = sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(
    shape: Tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming uniform for ReLU networks: ``U(-a, a)``, ``a = sqrt(6 / fan_in)``."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        # (in, out) orientation, as used by Linear / graph conv weights.
        return shape[0], shape[1]
    # Convolution weights: (out_channels, in_channels, *kernel).
    receptive = 1
    for dim in shape[2:]:
        receptive *= dim
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
