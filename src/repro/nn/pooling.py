"""Pooling layer modules wrapping the functional implementations."""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class MaxPool2d(Module):
    """Fixed-kernel max pooling."""

    def __init__(self, kernel_size: F.IntPair, stride: F.IntPair = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AdaptiveMaxPool2d(Module):
    """Adaptive max pooling to a fixed ``(H, W)`` output grid.

    The AMP layer of Section III-C: inputs of any spatial size are pooled
    into the same output grid by adapting window sizes per input.
    """

    def __init__(self, output_size: F.IntPair) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_max_pool2d(x, self.output_size)
