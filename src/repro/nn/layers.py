"""Layer/module system: a small PyTorch-like ``nn.Module``.

Modules own named parameters, recurse into sub-modules, and toggle
between train and eval mode (dropout needs the distinction).  Parameter
state can be exported/imported as plain dicts of arrays for model
persistence.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is part of a module's trainable state."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- attribute magic: registering children on assignment ------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its descendants."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    # -- persistence -----------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ConfigurationError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ConfigurationError(
                    f"parameter {name!r}: shape {value.shape} does not match "
                    f"{param.data.shape}"
                )
            param.data = value.copy()

    # -- forward ----------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map ``y = x W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), generator),
            name="linear.weight",
        )
        self.bias = (
            Parameter(init.zeros((out_features,)), name="linear.bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expects last dim {self.in_features}, got {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv1d(Module):
    """1-D convolution layer (no padding), wrapping :func:`F.conv1d`."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size), generator
            ),
            name="conv1d.weight",
        )
        self.bias = (
            Parameter(init.zeros((out_channels,)), name="conv1d.bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, stride=self.stride)


class Conv2d(Module):
    """2-D convolution layer wrapping :func:`F.conv2d`."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: F.IntPair,
        stride: F.IntPair = 1,
        padding: F.IntPair = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), generator),
            name="conv2d.weight",
        )
        self.bias = (
            Parameter(init.zeros((out_channels,)), name="conv2d.bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._ordered.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._ordered)

    def __getitem__(self, index: int) -> Module:
        return self._ordered[index]
