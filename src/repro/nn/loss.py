"""Loss functions.

Equation (5) of the paper: mean negative log-likelihood over the dataset,
``L = -(1/N) * sum_i sum_c y_ic * log(p_ic)``.  (The paper's equation
omits the minus sign and the 1/N, but describes minimizing the "mean
negative logarithmic loss"; we implement the standard form.)
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood from log-probabilities.

    Parameters
    ----------
    log_probs:
        ``(N, C)`` log-probabilities (e.g. output of a log-softmax head).
    targets:
        ``(N,)`` integer class labels.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if log_probs.ndim != 2:
        raise ShapeError(f"nll_loss expects (N, C) log-probs, got {log_probs.shape}")
    n, c = log_probs.shape
    if targets.shape != (n,):
        raise ShapeError(
            f"targets shape {targets.shape} does not match batch size {n}"
        )
    if targets.min() < 0 or targets.max() >= c:
        raise ShapeError(
            f"target labels must be in [0, {c}), got range "
            f"[{targets.min()}, {targets.max()}]"
        )
    picked = log_probs[np.arange(n), targets]
    return -(picked.sum() * (1.0 / n))


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy from raw logits."""
    return nll_loss(F.log_softmax(logits, axis=-1), targets)
