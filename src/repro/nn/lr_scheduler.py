"""Learning-rate scheduling.

Section V-B: "Once the validation loss increases for two continuous
epochs, we decrease the learning rate by a factor of ten to prevent the
model from overfitting."  :class:`ReduceLROnPlateau` implements exactly
that rule (``patience=2`` consecutive increases, ``factor=0.1``).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.nn.optim import Optimizer


class ReduceLROnPlateau:
    """Divide the LR by ``1/factor`` after ``patience`` consecutive increases.

    Parameters
    ----------
    optimizer:
        The optimizer whose ``lr`` is managed.
    factor:
        Multiplier applied on trigger (paper: 0.1).
    patience:
        Number of *consecutive* epochs with increasing monitored loss that
        trigger a decay (paper: 2).
    min_lr:
        Floor below which the LR is never reduced.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.1,
        patience: int = 2,
        min_lr: float = 1e-8,
    ) -> None:
        if not 0.0 < factor < 1.0:
            raise ConfigurationError(f"factor must be in (0, 1), got {factor}")
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self._previous_loss: float = float("inf")
        self._consecutive_increases = 0
        self.num_reductions = 0

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    def step(self, loss: float) -> bool:
        """Record an epoch's validation loss; returns ``True`` on decay."""
        increased = loss > self._previous_loss
        self._previous_loss = loss
        if increased:
            self._consecutive_increases += 1
        else:
            self._consecutive_increases = 0
        if self._consecutive_increases >= self.patience:
            self._consecutive_increases = 0
            new_lr = max(self.optimizer.lr * self.factor, self.min_lr)
            if new_lr < self.optimizer.lr:
                self.optimizer.lr = new_lr
                self.num_reductions += 1
                return True
        return False
