"""Gradient-guided feature-space attack on ACFG classifiers.

A PGD-style loop over *input* gradients: the batch attribute matrix is
exposed as a ``requires_grad`` leaf
(:meth:`~repro.core.batched.GraphBatch.require_input_grad`), one eager
forward/backward delivers ``dL/dX``, and each ascent step on the true
label's negative log-likelihood is projected back onto ACFG semantics —
non-negative integer counts, ``offspring == out-degree``, instruction
totals covering the category counts — via the shared validator/projector
(:mod:`repro.features.validator`).

Two entry points:

* :class:`FeatureSpaceAttack` — the evaluation attack.  Operates on raw
  (unscaled) labelled ACFGs, steps in the scaler's z-scored feature
  space (where the epsilon ball is meaningful), and returns adversarial
  ACFGs in raw count space that pass the semantic validator.  This is
  the realistic threat model the robustness report measures.
* :func:`perturb_batch_scaled` — the *inner* attack of adversarial
  training (``TrainingConfig.adversarial``).  Training data is already
  scaled, so it perturbs scaled features directly without the integer
  projection: training against this relaxed threat model upper-bounds
  the projected attack, the standard trick for keeping the inner
  maximization differentiable.

Both always run the eager autograd path — compiled tape replay has no
input-gradient channel, so attack steps never touch it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batched import GraphBatch
from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.features.attributes import attribute_names
from repro.features.scaling import AttributeScaler
from repro.features.validator import CATEGORY_CHANNELS, project_attributes
from repro.nn.layers import Module
from repro.nn.loss import nll_loss

#: Channels the attack may move.  ``offspring`` is structural (pinned to
#: the out-degree by the projector), and custom registered channels have
#: unknown semantics, so both stay frozen.
MUTABLE_CHANNELS = frozenset({
    "numeric_constants",
    "total_instructions",
    "vertex_instructions",
    *CATEGORY_CHANNELS,
})


@dataclasses.dataclass(frozen=True)
class AttackConfig:
    """PGD hyper-parameters.

    ``epsilon`` bounds the L-infinity perturbation in *scaled* feature
    space (z-scores after ``log1p``), where one unit means one training
    standard deviation — the only space where a single radius is
    meaningful across heavy-tailed count channels.  ``step_size``
    defaults to ``2.5 * epsilon / steps`` so the ball's boundary stays
    reachable despite the semantic projection pulling iterates inward.
    """

    epsilon: float = 1.5
    steps: int = 10
    step_size: Optional[float] = None
    random_start: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epsilon <= 0.0:
            raise ConfigurationError(
                f"attack epsilon must be > 0, got {self.epsilon}"
            )
        if self.steps < 1:
            raise ConfigurationError(
                f"attack steps must be >= 1, got {self.steps}"
            )
        if self.step_size is not None and self.step_size <= 0.0:
            raise ConfigurationError(
                f"attack step_size must be > 0, got {self.step_size}"
            )

    @property
    def resolved_step_size(self) -> float:
        if self.step_size is not None:
            return self.step_size
        return 2.5 * self.epsilon / self.steps


@dataclasses.dataclass
class AttackRecord:
    """Per-sample outcome of one feature-space attack."""

    name: str
    label: int
    clean_label: int
    adversarial_label: int
    #: Signed true-class score margin ``p[label] - max(p[other])``;
    #: negative means the sample is (already) misclassified.
    clean_margin: float
    adversarial_margin: float
    #: The adversarial example is predicted as a different family than
    #: the true label.
    flipped: bool
    #: L-infinity size of the final perturbation in scaled feature space.
    perturbation_linf: float


@dataclasses.dataclass
class AttackOutcome:
    """Everything one attack run produced, input-order aligned."""

    records: List[AttackRecord]
    #: Adversarial examples in raw count space; every one satisfies the
    #: ACFG semantic invariants (the projector ran after the last step).
    adversarial_acfgs: List[ACFG]
    clean_probabilities: np.ndarray
    adversarial_probabilities: np.ndarray

    @property
    def success_rate(self) -> float:
        """Flip rate over samples the clean model classified correctly."""
        eligible = [r for r in self.records if r.clean_label == r.label]
        if not eligible:
            return 0.0
        return sum(1 for r in eligible if r.flipped) / len(eligible)


def _mutable_mask(num_channels: int) -> np.ndarray:
    names = attribute_names()
    if num_channels != len(names):
        raise ConfigurationError(
            f"attack saw {num_channels} attribute channels but the "
            f"registry defines {len(names)}"
        )
    return np.array(
        [name in MUTABLE_CHANNELS for name in names], dtype=np.float64
    )


def _with_attributes(
    acfg: ACFG, attributes: np.ndarray, label: Optional[int] = None
) -> ACFG:
    """A copy of ``acfg`` with new attributes, sharing cached operators.

    The adjacency is identical, so the cached CSR propagation operators
    are shared instead of being re-factorized on every PGD step.
    """
    clone = ACFG(
        adjacency=acfg.adjacency,
        attributes=attributes,
        label=acfg.label if label is None else label,
        name=acfg.name,
    )
    clone._propagation_sparse = acfg.propagation_operator_sparse()
    clone._augmented_sparse = acfg.augmented_adjacency_sparse()
    return clone


def input_gradients(
    model: Module,
    acfgs: Sequence[ACFG],
    labels: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, float, np.ndarray]:
    """One eager forward/backward with the batch attributes as a leaf.

    Returns ``(gradients, boundaries, loss, probabilities)`` where
    ``gradients`` is the stacked ``dL/dX`` matrix (rows per vertex, split
    by ``boundaries`` per graph) of the mean true-label NLL.  Model
    parameters also accumulate gradients as a side effect; callers on a
    training path must ``zero_grad`` before their real optimizer step.
    """
    batch = GraphBatch(
        acfgs,
        normalize_propagation=getattr(model, "normalize_propagation", True),
    )
    leaf = batch.require_input_grad()
    was_training = model.training
    model.train(False)
    try:
        log_probs = model(batch)
        loss = nll_loss(log_probs, labels)
        loss.backward()
    finally:
        model.train(was_training)
    assert leaf.grad is not None  # the leaf requires grad by construction
    return (
        leaf.grad,
        batch.boundaries,
        float(loss.item()),
        np.exp(log_probs.data),
    )


def _margins(probabilities: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Signed true-class margin ``p[label] - max(p[other])`` per row."""
    picked = probabilities[np.arange(len(labels)), labels]
    masked = probabilities.copy()
    masked[np.arange(len(labels)), labels] = -np.inf
    return picked - masked.max(axis=1)


class FeatureSpaceAttack:
    """PGD over ACFG attributes with per-step semantic projection.

    Parameters
    ----------
    model:
        A trained DGCNN (or any GraphBatch-capable module) emitting
        log-probabilities.
    scaler:
        The *training-time* :class:`AttributeScaler`; attack steps move
        in its scaled space and the semantic projection round-trips
        through its raw count space.
    config:
        PGD radius/steps/seed.
    """

    def __init__(
        self,
        model: Module,
        scaler: AttributeScaler,
        config: Optional[AttackConfig] = None,
    ) -> None:
        if not scaler.is_fitted:
            raise ConfigurationError(
                "FeatureSpaceAttack needs a fitted AttributeScaler"
            )
        self.model = model
        self.scaler = scaler
        self.config = config if config is not None else AttackConfig()

    def attack(self, acfgs: Sequence[ACFG]) -> AttackOutcome:
        """Attack raw labelled ACFGs; returns validator-clean examples."""
        if not acfgs:
            raise ConfigurationError("cannot attack an empty batch")
        if any(acfg.label is None for acfg in acfgs):
            raise ConfigurationError(
                "feature-space attack needs labelled ACFGs (the loss "
                "ascends the true label's NLL)"
            )
        config = self.config
        labels = np.array([acfg.label for acfg in acfgs], dtype=np.int64)
        scaled = self.scaler.transform(acfgs)
        mask = _mutable_mask(scaled[0].num_attributes)
        origin = [graph.attributes.copy() for graph in scaled]
        # Raw-count image of each sample's scaled epsilon ball: the
        # scaler's per-element transform is monotone, so the box bounds
        # are just the transformed ball corners.  The projector clamps
        # its integers into this box, keeping adversarial counts inside
        # the scaled ball instead of letting quantization inflate the
        # perturbation past epsilon.
        raw_bounds = [
            (
                self.scaler.inverse_transform_matrix(start - config.epsilon),
                self.scaler.inverse_transform_matrix(start + config.epsilon),
            )
            for start in origin
        ]

        rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, len(acfgs)])
        )
        current: List[np.ndarray] = []
        for start in origin:
            x = start.copy()
            if config.random_start:
                x = x + rng.uniform(-config.epsilon, config.epsilon, x.shape) * mask
            current.append(x)
        current = self._project_all(current, scaled, origin, mask, raw_bounds)

        clean_probs = self.model.predict_proba(
            GraphBatch(
                scaled,
                normalize_propagation=getattr(
                    self.model, "normalize_propagation", True
                ),
            )
        )
        flipped_at: List[Optional[np.ndarray]] = [None] * len(acfgs)
        step_size = config.resolved_step_size
        for _ in range(config.steps):
            adversarial = [
                _with_attributes(graph, x)
                for graph, x in zip(scaled, current)
            ]
            gradients, boundaries, _, probs = input_gradients(
                self.model, adversarial, labels
            )
            self._note_flips(probs, labels, current, flipped_at)
            if not np.isfinite(gradients).all():
                break  # diverged gradients cannot guide further steps
            for index in range(len(acfgs)):
                rows = slice(int(boundaries[index]), int(boundaries[index + 1]))
                ascent = step_size * np.sign(gradients[rows]) * mask
                moved = current[index] + ascent
                current[index] = np.clip(
                    moved,
                    origin[index] - config.epsilon,
                    origin[index] + config.epsilon,
                )
            current = self._project_all(current, scaled, origin, mask, raw_bounds)

        # Last-iterate check, then settle each sample on its first
        # label-flipping iterate (or the final one if it never flipped).
        final_eval = [
            _with_attributes(graph, x) for graph, x in zip(scaled, current)
        ]
        final_probs = self.model.predict_proba(
            GraphBatch(
                final_eval,
                normalize_propagation=getattr(
                    self.model, "normalize_propagation", True
                ),
            )
        )
        self._note_flips(final_probs, labels, current, flipped_at)
        chosen = [
            kept if kept is not None else x
            for kept, x in zip(flipped_at, current)
        ]

        adversarial_acfgs = [
            _with_attributes(
                acfg,
                project_attributes(
                    self.scaler.inverse_transform_matrix(x),
                    acfg.adjacency,
                    lower=bounds[0],
                    upper=bounds[1],
                ),
            )
            for acfg, x, bounds in zip(acfgs, chosen, raw_bounds)
        ]
        adv_scaled = self.scaler.transform(adversarial_acfgs)
        adv_probs = self.model.predict_proba(
            GraphBatch(
                adv_scaled,
                normalize_propagation=getattr(
                    self.model, "normalize_propagation", True
                ),
            )
        )

        clean_margins = _margins(clean_probs, labels)
        adv_margins = _margins(adv_probs, labels)
        records = []
        for index, acfg in enumerate(acfgs):
            perturbation = float(
                np.abs(adv_scaled[index].attributes - origin[index]).max()
            )
            adv_label = int(adv_probs[index].argmax())
            records.append(AttackRecord(
                name=acfg.name,
                label=int(labels[index]),
                clean_label=int(clean_probs[index].argmax()),
                adversarial_label=adv_label,
                clean_margin=float(clean_margins[index]),
                adversarial_margin=float(adv_margins[index]),
                flipped=adv_label != int(labels[index]),
                perturbation_linf=perturbation,
            ))
        return AttackOutcome(
            records=records,
            adversarial_acfgs=adversarial_acfgs,
            clean_probabilities=clean_probs,
            adversarial_probabilities=adv_probs,
        )

    # ------------------------------------------------------------------

    def _project_all(
        self,
        current: List[np.ndarray],
        scaled: Sequence[ACFG],
        origin: List[np.ndarray],
        mask: np.ndarray,
        raw_bounds: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> List[np.ndarray]:
        """Semantic projection of every iterate, in scaled space.

        Round-trips through raw count space: inverse-scale, project onto
        the ACFG invariants clamped to the epsilon ball's raw-count box,
        re-scale.  Frozen channels are restored from the origin
        afterwards so numeric round-trip noise cannot leak into channels
        the attack must not move.
        """
        projected = []
        for graph, x, start, bounds in zip(scaled, current, origin, raw_bounds):
            raw = self.scaler.inverse_transform_matrix(x)
            raw = project_attributes(
                raw, graph.adjacency, lower=bounds[0], upper=bounds[1]
            )
            back = self.scaler.transform_matrix(raw)
            projected.append(back * mask + start * (1.0 - mask))
        return projected

    @staticmethod
    def _note_flips(
        probabilities: np.ndarray,
        labels: np.ndarray,
        current: List[np.ndarray],
        flipped_at: List[Optional[np.ndarray]],
    ) -> None:
        predictions = probabilities.argmax(axis=1)
        for index, (predicted, label) in enumerate(zip(predictions, labels)):
            if flipped_at[index] is None and int(predicted) != int(label):
                flipped_at[index] = current[index].copy()


def perturb_batch_scaled(
    model: Module,
    acfgs: Sequence[ACFG],
    labels: np.ndarray,
    *,
    epsilon: float,
    steps: int,
    step_size: float,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[List[ACFG], float]:
    """Inner attack for adversarial training: PGD in scaled space.

    Operates directly on already-scaled ACFGs (the trainer's working
    representation) and skips the integer projection — the relaxed
    threat model keeps the inner maximization smooth, and the resulting
    robustness transfers to the projected evaluation attack it
    upper-bounds.  Pass ``rng`` for a random start inside the epsilon
    ball; ``None`` starts from the clean sample.

    Returns ``(attacked_acfgs, last_attack_loss)``.  The loss of the
    final inner step is surfaced so the trainer's divergence guard can
    halt on a non-finite inner maximization instead of silently training
    on garbage; if gradients go non-finite mid-loop the last finite
    iterate is returned alongside the offending loss.
    """
    mask = _mutable_mask(acfgs[0].num_attributes)
    origin = [graph.attributes.copy() for graph in acfgs]
    current = []
    for start in origin:
        x = start.copy()
        if rng is not None:
            x = x + rng.uniform(-epsilon, epsilon, x.shape) * mask
        current.append(x)

    attack_loss = float("nan")
    for _ in range(steps):
        adversarial = [
            _with_attributes(graph, x) for graph, x in zip(acfgs, current)
        ]
        gradients, boundaries, attack_loss, _ = input_gradients(
            model, adversarial, labels
        )
        if not np.isfinite(attack_loss) or not np.isfinite(gradients).all():
            return adversarial, attack_loss
        for index in range(len(acfgs)):
            rows = slice(int(boundaries[index]), int(boundaries[index + 1]))
            moved = current[index] + step_size * np.sign(gradients[rows]) * mask
            current[index] = np.clip(
                moved,
                origin[index] - epsilon,
                origin[index] + epsilon,
            )
    attacked = [
        _with_attributes(graph, x) for graph, x in zip(acfgs, current)
    ]
    return attacked, attack_loss
