"""Problem-space attack: re-obfuscate listings and re-extract ACFGs.

The feature-space attack (:mod:`repro.adv.attack`) edits extracted
attribute matrices directly — an upper bound no real adversary can reach,
because they control the *binary*, not the features.  This module plays
the realistic adversary: regenerate a corpus sample with different
obfuscation knob settings (:class:`~repro.datasets.synthetic_asm.ObfuscationKnobs`
— junk-code insertion, dispatch-table padding), push each variant through
the normal parse → CFG → ACFG front end, and search the knob grid for a
variant the trained classifier mislabels.

Every adversarial example produced here is a *valid program listing* by
construction, so problem-space success rates are comparable to (and
bounded by) the feature-space ones in the robustness report.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.mskcfg import generate_mskcfg_sample
from repro.datasets.synthetic_asm import ObfuscationKnobs
from repro.exceptions import ConfigurationError, MagicError

if TYPE_CHECKING:  # circular at runtime: magic -> trainer -> adv
    from repro.core.magic import Magic


def default_knob_grid() -> List[ObfuscationKnobs]:
    """Candidate re-obfuscations, ordered cheapest-first.

    Junk-only settings come first (they keep the program's control-flow
    skeleton bit-identical and only pad block bodies), then dispatch
    padding, then combinations.  The greedy search returns the first
    flip, so ordering by aggressiveness keeps perturbations minimal.
    """
    grid: List[ObfuscationKnobs] = [
        ObfuscationKnobs(junk_probability=p) for p in (0.2, 0.4, 0.6, 0.8, 1.0)
    ]
    grid.extend(
        ObfuscationKnobs(dispatch_probability=p, dispatch_fanout=(4, 8))
        for p in (0.3, 0.6)
    )
    grid.extend(
        ObfuscationKnobs(
            junk_probability=1.0, dispatch_probability=p, dispatch_fanout=(4, 8)
        )
        for p in (0.3, 0.6)
    )
    return grid


@dataclasses.dataclass
class AsmAttackResult:
    """Outcome of the knob search for one sample."""

    name: str
    family: str
    label: int
    clean_label: int
    adversarial_label: int
    #: Signed true-class margin ``p[label] - max(p[other])`` on the
    #: clean sample and on the strongest variant found.
    clean_margin: float
    adversarial_margin: float
    flipped: bool
    #: The knob settings of the returned variant (``None`` when every
    #: variant failed extraction, leaving only the clean sample).
    knobs: Optional[ObfuscationKnobs]
    #: Number of variants actually classified during the search.
    attempts: int

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["knobs"] = self.knobs.to_dict() if self.knobs else None
        return payload


def _margin(probabilities: np.ndarray, label: int) -> float:
    masked = probabilities.copy()
    masked[label] = -np.inf
    return float(probabilities[label] - masked.max())


def asm_knob_attack(
    magic: "Magic",
    family: str,
    index: int,
    seed: int = 0,
    grid: Optional[Sequence[ObfuscationKnobs]] = None,
) -> AsmAttackResult:
    """Greedy knob search over one corpus sample.

    Regenerates sample ``(family, index)`` of the synthetic MSKCFG corpus
    (bit-identical to the training corpus for the same ``seed``), then
    walks ``grid`` in order re-obfuscating and re-classifying; the first
    variant predicted as a different family wins.  If nothing flips, the
    variant with the lowest true-class margin is reported — the most
    damage this adversary could do.
    """
    candidates = list(grid) if grid is not None else default_knob_grid()
    if not candidates:
        raise ConfigurationError("asm_knob_attack needs a non-empty knob grid")

    name, listing, label = generate_mskcfg_sample(family, index, seed=seed)
    _, clean_probs = magic.classify_asm(listing, name=name)
    clean_label = int(clean_probs.argmax())
    clean_margin = _margin(clean_probs, label)

    best_margin = clean_margin
    best_label = clean_label
    best_knobs: Optional[ObfuscationKnobs] = None
    attempts = 0
    for knobs in candidates:
        _, variant, _ = generate_mskcfg_sample(
            family, index, seed=seed, knobs=knobs
        )
        try:
            _, adv_probs = magic.classify_asm(variant, name=name)
        except MagicError:
            # A knob setting can degenerate the listing past the front
            # end (e.g. dispatch fanout exceeding the span); such
            # variants simply are not viable adversarial examples.
            continue
        attempts += 1
        adv_label = int(adv_probs.argmax())
        adv_margin = _margin(adv_probs, label)
        if adv_margin < best_margin:
            best_margin = adv_margin
            best_label = adv_label
            best_knobs = knobs
        if adv_label != label:
            break
    return AsmAttackResult(
        name=name,
        family=family,
        label=label,
        clean_label=clean_label,
        adversarial_label=best_label,
        clean_margin=clean_margin,
        adversarial_margin=best_margin,
        flipped=best_label != label,
        knobs=best_knobs,
        attempts=attempts,
    )


def asm_attack_corpus(
    magic: "Magic",
    coordinates: Sequence[Tuple[str, int]],
    seed: int = 0,
    grid: Optional[Sequence[ObfuscationKnobs]] = None,
) -> List[AsmAttackResult]:
    """Run :func:`asm_knob_attack` over ``(family, index)`` coordinates."""
    return [
        asm_knob_attack(magic, family, index, seed=seed, grid=grid)
        for family, index in coordinates
    ]
