"""Per-family robustness reporting.

Aggregates clean-vs-attacked predictions into the robustness report the
``repro.cli attack`` command prints and ``benchmarks/bench_robustness.py``
persists: accuracy and mean true-class score margin per family on both
sides of the attack, the attack success rate (flips among clean-correct
samples), and the mean perturbation size.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclasses.dataclass
class FamilyRobustness:
    """Clean-vs-attacked aggregate for one malware family."""

    family: str
    num_samples: int
    clean_accuracy: float
    adversarial_accuracy: float
    #: Mean signed true-class margin ``p[label] - max(p[other])``.
    clean_margin: float
    adversarial_margin: float
    #: Fraction of clean-correct samples the attack flipped.
    attack_success_rate: float
    #: Mean L-infinity perturbation (scaled feature space) of the
    #: attacked samples; 0.0 when perturbation sizes were not tracked.
    mean_perturbation: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RobustnessReport:
    """Whole-corpus robustness summary plus the per-family breakdown."""

    families: List[FamilyRobustness]
    clean_accuracy: float
    adversarial_accuracy: float
    attack_success_rate: float
    mean_perturbation: float

    @property
    def accuracy_drop(self) -> float:
        """Accuracy lost to the attack, in points of [0, 1] accuracy."""
        return self.clean_accuracy - self.adversarial_accuracy

    def to_dict(self) -> Dict[str, object]:
        return {
            "clean_accuracy": self.clean_accuracy,
            "adversarial_accuracy": self.adversarial_accuracy,
            "accuracy_drop": self.accuracy_drop,
            "attack_success_rate": self.attack_success_rate,
            "mean_perturbation": self.mean_perturbation,
            "families": [family.to_dict() for family in self.families],
        }

    def format_table(self) -> str:
        """Fixed-width table, one row per family plus an overall row."""
        header = (
            f"{'family':<16} {'n':>4} {'clean':>7} {'adv':>7} "
            f"{'margin':>8} {'adv-mrg':>8} {'success':>8} {'pert':>6}"
        )
        lines = [header, "-" * len(header)]
        for row in self.families:
            lines.append(
                f"{row.family:<16} {row.num_samples:>4} "
                f"{row.clean_accuracy:>7.3f} {row.adversarial_accuracy:>7.3f} "
                f"{row.clean_margin:>8.3f} {row.adversarial_margin:>8.3f} "
                f"{row.attack_success_rate:>8.3f} {row.mean_perturbation:>6.2f}"
            )
        lines.append("-" * len(header))
        total = sum(row.num_samples for row in self.families)
        lines.append(
            f"{'overall':<16} {total:>4} "
            f"{self.clean_accuracy:>7.3f} {self.adversarial_accuracy:>7.3f} "
            f"{'':>8} {'':>8} "
            f"{self.attack_success_rate:>8.3f} {self.mean_perturbation:>6.2f}"
        )
        return "\n".join(lines)


def _margins(probabilities: np.ndarray, labels: np.ndarray) -> np.ndarray:
    picked = probabilities[np.arange(len(labels)), labels]
    masked = probabilities.copy()
    masked[np.arange(len(labels)), labels] = -np.inf
    return picked - masked.max(axis=1)


def build_robustness_report(
    family_names: Sequence[str],
    labels: np.ndarray,
    clean_probabilities: np.ndarray,
    adversarial_probabilities: np.ndarray,
    perturbations: Optional[Sequence[float]] = None,
) -> RobustnessReport:
    """Aggregate aligned clean/attacked probability matrices.

    ``labels`` are true family indices into ``family_names``; the two
    probability matrices must be row-aligned with them.  Families with no
    samples in ``labels`` are omitted from the per-family table.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if clean_probabilities.shape != adversarial_probabilities.shape:
        raise ConfigurationError(
            "clean and adversarial probability matrices must align, got "
            f"{clean_probabilities.shape} vs {adversarial_probabilities.shape}"
        )
    if len(labels) != clean_probabilities.shape[0]:
        raise ConfigurationError(
            f"{len(labels)} labels for {clean_probabilities.shape[0]} rows"
        )
    perturbation_array = (
        np.asarray(perturbations, dtype=np.float64)
        if perturbations is not None
        else np.zeros(len(labels))
    )
    if len(perturbation_array) != len(labels):
        raise ConfigurationError(
            f"{len(perturbation_array)} perturbation sizes for "
            f"{len(labels)} labels"
        )

    clean_predictions = clean_probabilities.argmax(axis=1)
    adv_predictions = adversarial_probabilities.argmax(axis=1)
    clean_margins = _margins(clean_probabilities, labels)
    adv_margins = _margins(adversarial_probabilities, labels)
    clean_correct = clean_predictions == labels
    flipped = adv_predictions != labels

    families: List[FamilyRobustness] = []
    for label, family in enumerate(family_names):
        members = labels == label
        count = int(members.sum())
        if count == 0:
            continue
        eligible = members & clean_correct
        success = (
            float(flipped[eligible].mean()) if eligible.any() else 0.0
        )
        families.append(FamilyRobustness(
            family=family,
            num_samples=count,
            clean_accuracy=float(clean_correct[members].mean()),
            adversarial_accuracy=float((~flipped[members]).mean()),
            clean_margin=float(clean_margins[members].mean()),
            adversarial_margin=float(adv_margins[members].mean()),
            attack_success_rate=success,
            mean_perturbation=float(perturbation_array[members].mean()),
        ))

    overall_success = (
        float(flipped[clean_correct].mean()) if clean_correct.any() else 0.0
    )
    return RobustnessReport(
        families=families,
        clean_accuracy=float(clean_correct.mean()),
        adversarial_accuracy=float((adv_predictions == labels).mean()),
        attack_success_rate=overall_success,
        mean_perturbation=float(perturbation_array.mean()),
    )
