"""Adversarial robustness workload for the MAGIC pipeline.

Three coordinated pieces:

* :mod:`repro.adv.attack` — gradient-guided *feature-space* PGD over
  ACFG attributes, with every step projected back onto the ACFG semantic
  invariants (:mod:`repro.features.validator`).
* :mod:`repro.adv.asmattack` — *problem-space* attack that re-obfuscates
  assembly listings through the synthetic generator's knobs and re-runs
  the full extraction pipeline.
* :mod:`repro.adv.report` — the per-family robustness report both
  attacks (and ``benchmarks/bench_robustness.py``) aggregate into.

Adversarial *training* lives in the trainer
(:class:`repro.train.trainer.AdversarialConfig`), which reuses this
package's inner attack.
"""

from repro.adv.asmattack import (
    AsmAttackResult,
    asm_attack_corpus,
    asm_knob_attack,
    default_knob_grid,
)
from repro.adv.attack import (
    AttackConfig,
    AttackOutcome,
    AttackRecord,
    FeatureSpaceAttack,
    input_gradients,
    perturb_batch_scaled,
)
from repro.adv.report import (
    FamilyRobustness,
    RobustnessReport,
    build_robustness_report,
)

__all__ = [
    "AsmAttackResult",
    "AttackConfig",
    "AttackOutcome",
    "AttackRecord",
    "FamilyRobustness",
    "FeatureSpaceAttack",
    "RobustnessReport",
    "asm_attack_corpus",
    "asm_knob_attack",
    "build_robustness_report",
    "default_knob_grid",
    "input_gradients",
    "perturb_batch_scaled",
]
