"""CFG serialization.

The YANCFG dataset ships *pre-extracted* control flow graphs rather than
assembly, so MAGIC must be able to load graphs directly.  We support two
formats:

* **JSON** — a complete round-trip format preserving instructions, used
  for caching extracted CFGs (the paper caches 17 hours of extraction).
* **Edge-list with attributes** — a compact text format carrying only the
  graph structure and pre-computed block attribute vectors, mirroring the
  shape of the YANCFG distribution where raw code is unavailable.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

import numpy as np

from repro.asm.instruction import Instruction
from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.exceptions import SerializationError

_FORMAT_VERSION = 1


def cfg_to_dict(cfg: ControlFlowGraph) -> dict:
    """Serialize a CFG (with instructions) to a JSON-compatible dict."""
    blocks = []
    for block in cfg.blocks():
        blocks.append({
            "start": block.start_address,
            "instructions": [
                {
                    "addr": inst.address,
                    "mnemonic": inst.mnemonic,
                    "operands": inst.operands,
                    "size": inst.size,
                }
                for inst in block.instructions
            ],
        })
    return {
        "version": _FORMAT_VERSION,
        "name": cfg.name,
        "blocks": blocks,
        "edges": [[src, dst] for src, dst in cfg.edges()],
    }


def cfg_from_dict(data: dict) -> ControlFlowGraph:
    """Inverse of :func:`cfg_to_dict`."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported CFG format version: {version!r}")
    cfg = ControlFlowGraph(name=data.get("name", ""))
    try:
        for block_data in data["blocks"]:
            block = BasicBlock(start_address=int(block_data["start"]))
            for inst_data in block_data["instructions"]:
                block.append(
                    Instruction(
                        address=int(inst_data["addr"]),
                        mnemonic=inst_data["mnemonic"],
                        operands=list(inst_data["operands"]),
                        size=int(inst_data["size"]),
                    )
                )
            cfg.add_block(block)
        for src, dst in data["edges"]:
            src_block = cfg.get_block(int(src))
            dst_block = cfg.get_block(int(dst))
            if src_block is None or dst_block is None:
                raise SerializationError(
                    f"edge ({src:#x}, {dst:#x}) references a missing block"
                )
            cfg.add_edge(src_block, dst_block)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed CFG record: {exc}") from exc
    return cfg


def save_cfg(cfg: ControlFlowGraph, path: str) -> None:
    """Write a CFG to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(cfg_to_dict(cfg), handle)


def load_cfg(path: str) -> ControlFlowGraph:
    """Read a CFG from a JSON file written by :func:`save_cfg`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return cfg_from_dict(data)


# ----------------------------------------------------------------------
# YANCFG-style pre-attributed graphs (structure + attribute vectors only)


def acfg_to_text(
    adjacency: np.ndarray,
    attributes: np.ndarray,
    label: Optional[str] = None,
) -> str:
    """Serialize a pre-attributed graph to the compact text format.

    Line 1: ``n c [label]``; next ``n`` lines: attribute vectors; then one
    line per edge: ``src dst`` (dense vertex indices).
    """
    n, c = attributes.shape
    if adjacency.shape != (n, n):
        raise SerializationError(
            f"adjacency {adjacency.shape} does not match {n} attribute rows"
        )
    lines = [f"{n} {c}" + (f" {label}" if label else "")]
    for row in attributes:
        lines.append(" ".join(repr(float(v)) for v in row))
    sources, destinations = np.nonzero(adjacency)
    for src, dst in zip(sources.tolist(), destinations.tolist()):
        lines.append(f"{src} {dst}")
    return "\n".join(lines) + "\n"


def acfg_from_text(text: str) -> Tuple[np.ndarray, np.ndarray, Optional[str]]:
    """Inverse of :func:`acfg_to_text`.

    Returns ``(adjacency, attributes, label)``.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise SerializationError("empty ACFG record")
    header = lines[0].split()
    if len(header) < 2:
        raise SerializationError(f"malformed ACFG header: {lines[0]!r}")
    try:
        n, c = int(header[0]), int(header[1])
    except ValueError as exc:
        raise SerializationError(f"malformed ACFG header: {lines[0]!r}") from exc
    label = header[2] if len(header) > 2 else None
    if len(lines) < 1 + n:
        raise SerializationError(
            f"ACFG record truncated: expected {n} attribute rows"
        )
    attributes = np.zeros((n, c), dtype=np.float64)
    for i in range(n):
        values = lines[1 + i].split()
        if len(values) != c:
            raise SerializationError(
                f"attribute row {i} has {len(values)} values, expected {c}"
            )
        attributes[i] = [float(v) for v in values]
    adjacency = np.zeros((n, n), dtype=np.float64)
    for line in lines[1 + n:]:
        parts = line.split()
        if len(parts) != 2:
            raise SerializationError(f"malformed edge line: {line!r}")
        src, dst = int(parts[0]), int(parts[1])
        if not (0 <= src < n and 0 <= dst < n):
            raise SerializationError(f"edge ({src}, {dst}) out of range for n={n}")
        adjacency[src, dst] = 1.0
    return adjacency, attributes, label
