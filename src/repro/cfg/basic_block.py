"""Basic block: a vertex of the control flow graph.

A basic block is a straight-line sequence of instructions with a single
entry (its first instruction) and control-flow transfer only at its exit
(Section II-A of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.asm.instruction import Instruction


@dataclass
class BasicBlock:
    """A straight-line instruction sequence starting at ``start_address``.

    Blocks are identified by their start address, which is unique within
    one control flow graph.
    """

    start_address: int
    instructions: List[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> None:
        """Add an instruction to the end of the block."""
        self.instructions.append(instruction)

    @property
    def is_empty(self) -> bool:
        return not self.instructions

    @property
    def last_instruction(self) -> Instruction:
        """The exit instruction of the block.

        Raises
        ------
        IndexError
            If the block is empty (possible transiently during
            construction, never in a finished CFG).
        """
        return self.instructions[-1]

    @property
    def end_address(self) -> int:
        """One past the last instruction's address span."""
        if self.is_empty:
            return self.start_address
        return self.last_instruction.next_address

    def __len__(self) -> int:
        return len(self.instructions)

    def __hash__(self) -> int:
        return hash(self.start_address)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        header = f"block@{self.start_address:#x} ({len(self)} insts)"
        body = "\n  ".join(str(inst) for inst in self.instructions)
        return f"{header}\n  {body}" if body else header
