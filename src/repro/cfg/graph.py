"""Control flow graph: directed graph of basic blocks.

The CFG is the central data structure of MAGIC.  A vertex is a
:class:`BasicBlock`; a directed edge ``u -> v`` exists when the last
instruction of ``u`` falls through to the first instruction of ``v`` or
branches to some instruction in ``v`` (Section II-A).

The graph exposes the matrices DGCNN consumes (adjacency ``A``, augmented
adjacency ``Â = A + I``, augmented degree ``D̂``) and a
:meth:`to_networkx` bridge for analysis and visualisation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.cfg.basic_block import BasicBlock
from repro.exceptions import CfgConstructionError


class ControlFlowGraph:
    """A directed graph of basic blocks, ordered by start address."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._blocks: Dict[int, BasicBlock] = {}
        self._successors: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # construction

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Insert ``block``; duplicate start addresses are rejected."""
        if block.start_address in self._blocks:
            raise CfgConstructionError(
                f"duplicate block at {block.start_address:#x}"
            )
        self._blocks[block.start_address] = block
        self._successors.setdefault(block.start_address, set())
        return block

    def get_block(self, start_address: int) -> Optional[BasicBlock]:
        return self._blocks.get(start_address)

    def add_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        """Add the directed edge ``src -> dst``; both must be in the graph."""
        if src.start_address not in self._blocks:
            raise CfgConstructionError(
                f"edge source {src.start_address:#x} not in graph"
            )
        if dst.start_address not in self._blocks:
            raise CfgConstructionError(
                f"edge target {dst.start_address:#x} not in graph"
            )
        self._successors[src.start_address].add(dst.start_address)

    def remove_empty_blocks(self) -> None:
        """Drop blocks that ended up with no instructions.

        Dangling jump targets into data can create empty placeholder
        blocks during construction; a finished CFG has none.
        """
        empty = [addr for addr, b in self._blocks.items() if b.is_empty]
        for addr in empty:
            del self._blocks[addr]
            del self._successors[addr]
        for succ in self._successors.values():
            succ.difference_update(empty)

    # ------------------------------------------------------------------
    # queries

    @property
    def num_vertices(self) -> int:
        return len(self._blocks)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._successors.values())

    def __len__(self) -> int:
        return self.num_vertices

    def blocks(self) -> List[BasicBlock]:
        """All blocks in ascending start-address order."""
        return [self._blocks[a] for a in sorted(self._blocks)]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks())

    def successors(self, block: BasicBlock) -> List[BasicBlock]:
        """Successor blocks of ``block`` in ascending address order."""
        return [
            self._blocks[a]
            for a in sorted(self._successors.get(block.start_address, ()))
        ]

    def out_degree(self, block: BasicBlock) -> int:
        """Number of offspring of ``block`` (a Table I attribute)."""
        return len(self._successors.get(block.start_address, ()))

    def in_degree(self, block: BasicBlock) -> int:
        """Number of predecessors of ``block``."""
        address = block.start_address
        return sum(
            1 for successors in self._successors.values() if address in successors
        )

    def edges(self) -> List[Tuple[int, int]]:
        """All edges as ``(src_start, dst_start)`` address pairs, sorted."""
        result = []
        for src in sorted(self._successors):
            for dst in sorted(self._successors[src]):
                result.append((src, dst))
        return result

    def entry_block(self) -> Optional[BasicBlock]:
        """The block with the lowest start address, or ``None`` if empty."""
        if not self._blocks:
            return None
        return self._blocks[min(self._blocks)]

    def total_instructions(self) -> int:
        return sum(len(block) for block in self._blocks.values())

    # ------------------------------------------------------------------
    # matrix views (Section III-A notation)

    def vertex_index(self) -> Dict[int, int]:
        """Map block start address -> dense vertex index (address order)."""
        return {addr: i for i, addr in enumerate(sorted(self._blocks))}

    def adjacency_matrix(self) -> np.ndarray:
        """The (dense) adjacency matrix ``A`` in address order.

        ``A[i, j] == 1`` iff there is an edge from vertex ``i`` to vertex
        ``j``.  ``A`` is generally *not* symmetric: the CFG is directed.
        """
        index = self.vertex_index()
        n = len(index)
        matrix = np.zeros((n, n), dtype=np.float64)
        for src, dst in self.edges():
            matrix[index[src], index[dst]] = 1.0
        return matrix

    def augmented_adjacency_matrix(self) -> np.ndarray:
        """``Â = A + I``: self-loops let attributes propagate to self."""
        matrix = self.adjacency_matrix()
        np.fill_diagonal(matrix, matrix.diagonal() + 1.0)
        return matrix

    def augmented_degree_matrix(self) -> np.ndarray:
        """Diagonal ``D̂`` with ``D̂[i, i] = sum_j Â[i, j]``."""
        augmented = self.augmented_adjacency_matrix()
        return np.diag(augmented.sum(axis=1))

    # ------------------------------------------------------------------
    # interop

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with block metadata."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for block in self.blocks():
            graph.add_node(
                block.start_address,
                num_instructions=len(block),
            )
        graph.add_edges_from(self.edges())
        return graph

    def __repr__(self) -> str:
        return (
            f"ControlFlowGraph(name={self.name!r}, "
            f"vertices={self.num_vertices}, edges={self.num_edges})"
        )
