"""Second pass of CFG construction: block creation and connection.

This is Algorithm 2 of the paper (``CfgBuilder::connectBlocks``).  It
iterates the tagged program once, creating blocks on the fly at every
instruction whose ``start`` tag is set, wiring fall-through edges when the
current instruction falls through into a block start, and wiring branch
edges for every instruction with a resolved ``branch_to`` address.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.asm.parser import AsmParser
from repro.asm.program import Program
from repro.asm.visitor import InstructionTagger
from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.exceptions import CfgConstructionError


class CfgBuilder:
    """Builds a :class:`ControlFlowGraph` from a tagged program.

    The two-pass structure of Section IV-A is preserved exactly:
    :meth:`build` first runs the :class:`InstructionTagger` (pass 1,
    Algorithm 1) and then :meth:`connect_blocks` (pass 2, Algorithm 2).
    """

    def __init__(
        self,
        resolve_target: Optional[Callable[[str], Optional[int]]] = None,
        follow_calls: bool = True,
    ) -> None:
        self._resolve_target = resolve_target
        self.follow_calls = follow_calls

    def build(self, program: Program, name: str = "") -> ControlFlowGraph:
        """Tag ``program`` and assemble its control flow graph."""
        if len(program) == 0:
            raise CfgConstructionError("cannot build a CFG from an empty program")
        resolver = self._resolve_target or (lambda operand: None)
        tagger = InstructionTagger(resolver, follow_calls=self.follow_calls)
        tagger.tag(program)
        return self.connect_blocks(program, name=name)

    def build_from_text(self, text: str, name: str = "") -> ControlFlowGraph:
        """Parse listing text and build its CFG in one call."""
        parser = AsmParser()
        program = parser.parse(text)
        builder = CfgBuilder(
            resolve_target=parser.resolve_target,
            follow_calls=self.follow_calls,
        )
        return builder.build(program, name=name)

    def connect_blocks(self, program: Program, name: str = "") -> ControlFlowGraph:
        """Algorithm 2: create vertices and edges over a tagged program."""
        graph = ControlFlowGraph(name=name)
        blocks_by_address: Dict[int, BasicBlock] = {}

        def get_block_at_addr(address: int) -> BasicBlock:
            """``getBlockAtAddr`` helper: fetch or create the block."""
            block = blocks_by_address.get(address)
            if block is None:
                block = BasicBlock(start_address=address)
                blocks_by_address[address] = block
                graph.add_block(block)
            return block

        curr_block: Optional[BasicBlock] = None
        for inst in program:
            if inst.start:
                curr_block = get_block_at_addr(inst.address)
            if curr_block is None:
                # Defensive: the tagger always marks the first instruction
                # as a start, so this only fires on inconsistent tags.
                curr_block = get_block_at_addr(inst.address)
            next_block = curr_block

            next_inst = program.next_instruction(inst)
            if next_inst is not None:
                if inst.fall_through and next_inst.start:
                    next_block = get_block_at_addr(next_inst.address)
                    graph.add_edge(curr_block, next_block)

            if inst.branch_to is not None:
                target = program.nearest_at_or_after(inst.branch_to)
                if target is not None:
                    block = get_block_at_addr(target.address)
                    graph.add_edge(curr_block, block)

            curr_block.append(inst)
            curr_block = next_block

        graph.remove_empty_blocks()
        return graph


def build_cfg_from_text(text: str, name: str = "") -> ControlFlowGraph:
    """Convenience wrapper: listing text -> :class:`ControlFlowGraph`."""
    return CfgBuilder().build_from_text(text, name=name)


def build_cfg_from_file(path: str, name: str = "") -> ControlFlowGraph:
    """Convenience wrapper: ``.asm`` file -> :class:`ControlFlowGraph`."""
    parser = AsmParser()
    program = parser.parse_file(path)
    builder = CfgBuilder(resolve_target=parser.resolve_target)
    return builder.build(program, name=name or path)
