"""Control flow graph substrate.

Implements the two-pass CFG construction of Section IV-A (Algorithms 1
and 2) and the graph data structure (Section II-A), plus serialization
for caching and for YANCFG-style pre-extracted graphs.
"""

from repro.cfg.basic_block import BasicBlock
from repro.cfg.builder import CfgBuilder, build_cfg_from_file, build_cfg_from_text
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.metrics import CfgMetrics, compute_cfg_metrics, to_dot
from repro.cfg.serialization import (
    acfg_from_text,
    acfg_to_text,
    cfg_from_dict,
    cfg_to_dict,
    load_cfg,
    save_cfg,
)

__all__ = [
    "BasicBlock",
    "CfgBuilder",
    "CfgMetrics",
    "compute_cfg_metrics",
    "to_dot",
    "ControlFlowGraph",
    "acfg_from_text",
    "acfg_to_text",
    "build_cfg_from_file",
    "build_cfg_from_text",
    "cfg_from_dict",
    "cfg_to_dict",
    "load_cfg",
    "save_cfg",
]
