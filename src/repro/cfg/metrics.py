"""Graph-level metrics over control flow graphs.

Summary statistics used by the analysis examples and by downstream
feature engineering: cyclomatic complexity, strongly-connected
components (loop structure), depth, and degree statistics.  These are
*not* part of the paper's Table I block attributes; they are the kind of
whole-graph descriptors the handcrafted-feature baselines consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import networkx as nx

from repro.cfg.graph import ControlFlowGraph


@dataclasses.dataclass(frozen=True)
class CfgMetrics:
    """Whole-graph structural summary of one CFG."""

    num_vertices: int
    num_edges: int
    num_instructions: int
    cyclomatic_complexity: int
    num_components: int
    num_nontrivial_sccs: int
    num_back_edges: int
    max_out_degree: int
    density: float
    depth: int

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def compute_cfg_metrics(cfg: ControlFlowGraph) -> CfgMetrics:
    """Compute :class:`CfgMetrics` for ``cfg``.

    Cyclomatic complexity uses McCabe's ``E - N + 2P`` with ``P`` the
    number of weakly connected components.  "Back edges" are edges whose
    target address does not exceed the source (loops in layout order);
    non-trivial SCCs are cycles in the exact graph-theoretic sense.
    """
    graph = cfg.to_networkx()
    n = graph.number_of_nodes()
    e = graph.number_of_edges()
    components = (
        nx.number_weakly_connected_components(graph) if n else 0
    )
    nontrivial_sccs = sum(
        1
        for scc in nx.strongly_connected_components(graph)
        if len(scc) > 1 or any(graph.has_edge(v, v) for v in scc)
    )
    back_edges = sum(1 for src, dst in cfg.edges() if dst <= src)
    out_degrees = [graph.out_degree(v) for v in graph.nodes] or [0]

    depth = 0
    entry = cfg.entry_block()
    if entry is not None:
        lengths = nx.single_source_shortest_path_length(
            graph, entry.start_address
        )
        depth = max(lengths.values())

    return CfgMetrics(
        num_vertices=n,
        num_edges=e,
        num_instructions=cfg.total_instructions(),
        cyclomatic_complexity=e - n + 2 * components,
        num_components=components,
        num_nontrivial_sccs=nontrivial_sccs,
        num_back_edges=back_edges,
        max_out_degree=max(out_degrees),
        density=e / (n * n) if n else 0.0,
        depth=depth,
    )


def to_dot(cfg: ControlFlowGraph, include_instructions: bool = False) -> str:
    """Render a CFG as Graphviz DOT text.

    Block labels carry the start address and instruction count; with
    ``include_instructions`` the disassembly is embedded (escaped) for
    small graphs meant for visual inspection.
    """
    lines = [f'digraph "{cfg.name or "cfg"}" {{', "  node [shape=box];"]
    for block in cfg.blocks():
        label = f"{block.start_address:#x}\\n{len(block)} insts"
        if include_instructions:
            body = "\\l".join(
                f"{inst.mnemonic} {inst.operand_text()}".strip()
                for inst in block.instructions
            )
            label = f"{block.start_address:#x}\\l{body}\\l"
        lines.append(f'  "{block.start_address:#x}" [label="{label}"];')
    for src, dst in cfg.edges():
        lines.append(f'  "{src:#x}" -> "{dst:#x}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
