"""Block-diagonal graph batching for the graph convolution stack.

Processing a batch of graphs one by one costs ``B x h`` Python-level
matrix products per forward pass.  Because graph convolution is purely
local, a batch can instead be treated as one large disconnected graph:
stack the attribute matrices, assemble the propagation operators into a
block-diagonal sparse matrix, and run each layer once over the whole
batch.  Results are *exactly* equal to the per-graph path (verified by
``tests/core/test_batched.py``); only the constant factors change.

This is the same trick the reference DGCNN implementation (and every
modern GNN library) uses for mini-batching.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse

from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class GraphBatch:
    """A batch of ACFGs merged into one block-diagonal graph.

    Attributes
    ----------
    propagation:
        Sparse ``(N, N)`` block-diagonal propagation operator, where
        ``N`` is the total vertex count of the batch.
    attributes:
        Dense ``(N, c)`` stacked attribute matrix.
    boundaries:
        Length ``B+1`` prefix offsets: graph ``i`` owns rows
        ``boundaries[i]:boundaries[i+1]``.
    """

    def __init__(
        self, acfgs: Sequence[ACFG], normalize_propagation: bool = True
    ) -> None:
        if not acfgs:
            raise ConfigurationError("cannot batch zero graphs")
        blocks = [
            acfg.propagation_operator()
            if normalize_propagation
            else acfg.augmented_adjacency()
            for acfg in acfgs
        ]
        self.propagation = scipy.sparse.block_diag(blocks, format="csr")
        self.attributes = np.concatenate([a.attributes for a in acfgs], axis=0)
        sizes = [a.num_vertices for a in acfgs]
        self.boundaries = np.concatenate([[0], np.cumsum(sizes)])
        self.num_graphs = len(acfgs)

    @property
    def total_vertices(self) -> int:
        return int(self.boundaries[-1])

    def split(self, stacked: Tensor) -> List[Tensor]:
        """Slice a ``(N, C)`` batch-level tensor back into per-graph rows."""
        pieces = []
        for index in range(self.num_graphs):
            start = int(self.boundaries[index])
            end = int(self.boundaries[index + 1])
            pieces.append(stacked[start:end])
        return pieces


def propagate(batch: GraphBatch, z: Tensor) -> Tensor:
    """One propagation step over the whole batch: ``P_blockdiag @ z``."""
    return F.sparse_matmul(batch.propagation, z)
