"""Block-diagonal graph batching: the canonical forward-pass unit.

Processing a batch of graphs one by one costs ``B x h`` Python-level
matrix products per forward pass.  Because graph convolution is purely
local, a batch can instead be treated as one large disconnected graph:
stack the attribute matrices, assemble the per-graph CSR propagation
operators into a block-diagonal sparse matrix, and run each layer once
over the whole batch.  Results are *exactly* equal to the per-graph
reference path (verified by ``tests/core/test_batched.py``); only the
constant factors change.

This is the same trick the reference DGCNN implementation (and every
modern GNN library) uses for mini-batching.  A :class:`GraphBatch` is
what the DGCNN variants consume (`repro.core.dgcnn`), what the training
collate layer produces and memoizes (`repro.train.batching`), and what
flows through ``Trainer``/cross-validation/CLI.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse

from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def _block_diag_csr(
    blocks: Sequence[scipy.sparse.csr_matrix],
) -> scipy.sparse.csr_matrix:
    """Block-diagonal merge of square CSR blocks, directly in CSR form.

    For a block-diagonal layout the merged CSR arrays are plain
    concatenations — data verbatim, column indices shifted by each
    block's row offset, indptr chained by running nnz — so this skips
    ``scipy.sparse.block_diag``'s generic COO round-trip, which costs
    more than the downstream matmul for small-graph batches.
    """
    sizes = np.array([b.shape[0] for b in blocks])
    row_offsets = np.concatenate([[0], np.cumsum(sizes)])
    total = int(row_offsets[-1])
    data = np.concatenate([b.data for b in blocks])
    indices = np.concatenate([
        b.indices + offset for b, offset in zip(blocks, row_offsets[:-1])
    ])
    nnz_offsets = np.concatenate([[0], np.cumsum([b.nnz for b in blocks])])
    indptr = np.concatenate(
        [[0]] + [
            b.indptr[1:] + nnz_offset
            for b, nnz_offset in zip(blocks, nnz_offsets[:-1])
        ]
    )
    return scipy.sparse.csr_matrix(
        (data, indices, indptr), shape=(total, total)
    )


class GraphBatch:
    """A batch of ACFGs merged into one block-diagonal graph.

    Attributes
    ----------
    propagation:
        Sparse CSR ``(N, N)`` block-diagonal propagation operator, where
        ``N`` is the total vertex count of the batch.  Assembled from the
        per-graph cached CSR operators, so only the ``n + |E|`` true
        non-zeros of each graph are stored.
    attributes:
        Dense ``(N, c)`` stacked attribute matrix.
    boundaries:
        Length ``B+1`` prefix offsets: graph ``i`` owns rows
        ``boundaries[i]:boundaries[i+1]``.
    normalized:
        Whether the operator is Equation 1's ``D̂^-1 Â`` (``True``) or the
        raw ``Â`` (``False``); models check this against their own
        ``normalize_propagation`` setting.
    labels:
        ``(B,)`` int64 label vector when every graph carries a label,
        else ``None``.
    """

    def __init__(
        self, acfgs: Sequence[ACFG], normalize_propagation: bool = True
    ) -> None:
        if not acfgs:
            raise ConfigurationError("cannot batch zero graphs")
        blocks = [
            acfg.propagation_operator_sparse()
            if normalize_propagation
            else acfg.augmented_adjacency_sparse()
            for acfg in acfgs
        ]
        self.propagation = _block_diag_csr(blocks)
        self.attributes = np.concatenate([a.attributes for a in acfgs], axis=0)
        sizes = [a.num_vertices for a in acfgs]
        self.boundaries = np.concatenate([[0], np.cumsum(sizes)])
        self.num_graphs = len(acfgs)
        self.normalized = normalize_propagation
        if all(a.label is not None for a in acfgs):
            self.labels: Optional[np.ndarray] = np.array(
                [a.label for a in acfgs], dtype=np.int64
            )
        else:
            self.labels = None
        self._propagation_t: Optional[scipy.sparse.csr_matrix] = None
        #: Optional ``requires_grad`` leaf over :attr:`attributes`; set by
        #: :meth:`require_input_grad` for gradient-guided input attacks.
        self.attributes_tensor: Optional[Tensor] = None

    def require_input_grad(self) -> Tensor:
        """Expose the stacked attribute matrix as a ``requires_grad`` leaf.

        The returned tensor wraps :attr:`attributes` (same storage) with
        ``requires_grad=True``; :meth:`GraphConvolutionStack.forward_batch
        <repro.core.graph_conv.GraphConvolutionStack.forward_batch>` uses
        it as the layer-0 input when present, so a subsequent
        ``backward()`` accumulates ``dL/dX`` into ``tensor.grad``.  This
        is the eager-path hook the feature-space adversarial attack
        (:mod:`repro.adv.attack`) is built on; compiled tape replay never
        sees such batches (attack steps always run eagerly).

        Per-graph gradient rows are recovered with :attr:`boundaries`,
        exactly like :meth:`split` slices forward activations.
        """
        if self.attributes_tensor is None:
            self.attributes_tensor = Tensor(self.attributes, requires_grad=True)
        return self.attributes_tensor

    @property
    def total_vertices(self) -> int:
        return int(self.boundaries[-1])

    def propagation_transpose(self) -> scipy.sparse.csr_matrix:
        """Cached CSR transpose of the operator, for the backward pass.

        Computed once per batch and reused by every layer (and, via the
        collate memoization, every epoch that revisits this batch).
        """
        if self._propagation_t is None:
            self._propagation_t = self.propagation.T.tocsr()
        return self._propagation_t

    def split(self, stacked: Tensor) -> List[Tensor]:
        """Slice a ``(N, C)`` batch-level tensor back into per-graph rows."""
        pieces = []
        for index in range(self.num_graphs):
            start = int(self.boundaries[index])
            end = int(self.boundaries[index + 1])
            pieces.append(stacked[start:end])
        return pieces


def propagate(batch: GraphBatch, z: Tensor) -> Tensor:
    """One propagation step over the whole batch: ``P_blockdiag @ z``."""
    return F.sparse_matmul(
        batch.propagation, z, matrix_t=batch.propagation_transpose()
    )
