"""WeightedVertices layer (Section III-B, the paper's first extension).

The original DGCNN follows SortPooling with a Conv1D of kernel and stride
``sum(c_t)``.  The paper observes that a *single-channel* Conv1D of
kernel/stride ``k`` applied to the transposed sort-pooling output is
equivalent to

    E = f(W × Z^sp)            (Equation 3)

with ``W ∈ R^{1×k}``: a weighted sum of the k retained vertex embeddings,
i.e. a learned graph embedding in the style of Xu et al.'s structure2vec
aggregation.  That is what this layer computes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.init import xavier_uniform
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor


class WeightedVertices(Module):
    """Aggregate ``(k, C)`` vertex embeddings into a ``(C,)`` graph embedding.

    Parameters
    ----------
    k:
        Number of vertices kept by the preceding SortPooling layer.
    activation:
        Element-wise nonlinearity ``f`` of Equation (3); ReLU by default,
        matching the worked example in Figure 5.
    """

    def __init__(
        self,
        k: int,
        activation: str = "relu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        if activation not in ("relu", "tanh"):
            raise ConfigurationError(
                f"activation must be 'relu' or 'tanh', got {activation!r}"
            )
        generator = rng if rng is not None else np.random.default_rng()
        self.k = k
        self.activation = activation
        self.weight = Parameter(
            xavier_uniform((1, k), generator), name="weighted_vertices.weight"
        )

    def forward(self, z_sp: Tensor) -> Tensor:
        """``(k, C) -> (C,)`` graph embedding via Equation (3)."""
        if z_sp.ndim != 2 or z_sp.shape[0] != self.k:
            raise ShapeError(
                f"WeightedVertices expects ({self.k}, C) input, got {z_sp.shape}"
            )
        embedding = (self.weight @ z_sp).reshape(z_sp.shape[1])
        if self.activation == "relu":
            return embedding.relu()
        return embedding.tanh()
