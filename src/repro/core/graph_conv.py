"""Graph convolution layers (Section III-A-2, Equation 1).

One layer computes ``Z_{t+1} = f(D̂^-1 Â Z_t W_t)``: a linear map of the
channels followed by propagation of every vertex's features to itself and
its out-neighbours (breadth-first-search fashion), row-normalized by the
augmented degree.  Stacking ``h`` layers aggregates multi-scale
substructural attributes; the concatenation ``Z^{1:h} = [Z_1, ..., Z_h]``
is what the pooling stage consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batched import GraphBatch, propagate
from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn import concatenate
from repro.nn.init import xavier_uniform
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor

#: Supported element-wise nonlinearities ``f`` in Equation (1).
_ACTIVATIONS = ("tanh", "relu")


class GraphConvolution(Module):
    """A single ``Z' = f(P Z W)`` layer, where ``P = D̂^-1 Â`` is fixed per graph."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        activation: str = "tanh",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if activation not in _ACTIVATIONS:
            raise ConfigurationError(
                f"activation must be one of {_ACTIVATIONS}, got {activation!r}"
            )
        generator = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.activation = activation
        self.weight = Parameter(
            xavier_uniform((in_channels, out_channels), generator),
            name="graph_conv.weight",
        )

    def forward(self, propagation: np.ndarray, z: Tensor) -> Tensor:
        """Apply the layer for one graph.

        Parameters
        ----------
        propagation:
            The constant ``(n, n)`` operator ``D̂^-1 Â`` of the graph.
        z:
            Current vertex features, shape ``(n, in_channels)``.
        """
        mixed = z @ self.weight              # F = Z W        (n, out)
        propagated = Tensor(propagation) @ mixed  # O = Â F, normalized
        if self.activation == "tanh":
            return propagated.tanh()
        return propagated.relu()


class GraphConvolutionStack(Module):
    """``h`` stacked graph convolutions producing ``Z^{1:h}``.

    Parameters
    ----------
    in_channels:
        Number of input attribute channels ``c`` (11 for Table I).
    layer_sizes:
        Output width of each layer, e.g. ``(32, 32, 32, 32)`` or
        ``(128, 64, 32, 32)`` from Table II.
    activation:
        Nonlinearity ``f``; the original DGCNN uses ``tanh``.
    normalize_propagation:
        When ``True`` (Equation 1) propagation uses ``D̂^-1 Â``; when
        ``False`` the raw ``Â`` is used instead — the ablation target of
        DESIGN.md §5 (unnormalized aggregation lets high-degree dispatch
        blocks dominate and saturates tanh).
    """

    def __init__(
        self,
        in_channels: int,
        layer_sizes: Sequence[int],
        activation: str = "tanh",
        rng: Optional[np.random.Generator] = None,
        normalize_propagation: bool = True,
    ) -> None:
        super().__init__()
        self.normalize_propagation = normalize_propagation
        if not layer_sizes:
            raise ConfigurationError("layer_sizes must contain at least one layer")
        if any(size < 1 for size in layer_sizes):
            raise ConfigurationError(f"layer sizes must be positive: {layer_sizes}")
        self.in_channels = in_channels
        self.layer_sizes: Tuple[int, ...] = tuple(layer_sizes)
        widths = [in_channels, *layer_sizes]
        for index in range(len(layer_sizes)):
            setattr(
                self,
                f"conv{index}",
                GraphConvolution(
                    widths[index], widths[index + 1], activation=activation, rng=rng
                ),
            )
        self.num_layers = len(layer_sizes)

    @property
    def total_channels(self) -> int:
        """Width of ``Z^{1:h}``: the sum of all layer output widths."""
        return sum(self.layer_sizes)

    def layer(self, index: int) -> GraphConvolution:
        return getattr(self, f"conv{index}")

    def forward(self, acfg: ACFG) -> Tensor:
        """Compute ``Z^{1:h}`` for one graph: shape ``(n, sum(layer_sizes))``.

        This dense per-graph path is the *reference implementation*; the
        production path is :meth:`forward_batch`, which runs each layer
        once over a whole :class:`~repro.core.batched.GraphBatch`.  The
        two are numerically equivalent (``tests/core/test_batched.py``).
        """
        if self.normalize_propagation:
            propagation = acfg.propagation_operator()
        else:
            propagation = acfg.augmented_adjacency()
        z = Tensor(acfg.attributes)
        outputs: List[Tensor] = []
        for index in range(self.num_layers):
            z = self.layer(index)(propagation, z)
            outputs.append(z)
        return concatenate(outputs, axis=1)

    def forward_batch(self, batch: GraphBatch) -> Tensor:
        """Compute ``Z^{1:h}`` for a merged batch: ``(N, sum(layer_sizes))``.

        One sparse matmul per layer over the block-diagonal operator
        replaces ``B`` dense matmuls per layer; rows stay grouped by
        graph, so ``batch.split`` recovers the per-graph ``Z^{1:h}``.
        """
        if batch.normalized != self.normalize_propagation:
            raise ConfigurationError(
                f"GraphBatch built with normalize_propagation="
                f"{batch.normalized}, but this stack expects "
                f"{self.normalize_propagation}"
            )
        # Batches prepared with require_input_grad() supply the attribute
        # matrix as a requires_grad leaf so backward() can deliver input
        # gradients (the adversarial-attack path); plain batches keep the
        # constant wrapper.
        z = (
            batch.attributes_tensor
            if batch.attributes_tensor is not None
            else Tensor(batch.attributes)
        )
        outputs: List[Tensor] = []
        for index in range(self.num_layers):
            layer = self.layer(index)
            mixed = z @ layer.weight
            propagated = propagate(batch, mixed)
            z = propagated.tanh() if layer.activation == "tanh" else propagated.relu()
            outputs.append(z)
        return concatenate(outputs, axis=1)
