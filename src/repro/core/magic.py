"""MAGIC: the end-to-end malware classification system (Figure 1).

Ties the whole pipeline together: assembly (or pre-built CFG) ingestion,
ACFG extraction, attribute scaling, DGCNN training, and prediction.
"For malware classification tasks, MAGIC runs either in the training
mode or in the prediction mode" (Section IV-C); :meth:`Magic.fit` is the
former and :meth:`Magic.predict` / :meth:`Magic.predict_family` the
latter.  Trained systems persist to a directory and reload with
:meth:`Magic.load`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cfg.builder import build_cfg_from_text
from repro.cfg.graph import ControlFlowGraph
from repro.core.dgcnn import DgcnnBase, ModelConfig, build_model
from repro.exceptions import ConfigurationError, MagicError
from repro.features.acfg import ACFG
from repro.features.scaling import AttributeScaler
from repro.train.metrics import ClassificationReport
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory

_STATE_FILE = "parameters.npz"
_META_FILE = "magic.json"


@dataclasses.dataclass
class PredictionTiming:
    """Execution-overhead measurements (Section V-E)."""

    feature_seconds_per_sample: float = 0.0
    predict_seconds_per_sample: float = 0.0


class Magic:
    """The MAGIC malware classifier.

    Parameters
    ----------
    model_config:
        Architecture and hyper-parameters of the underlying DGCNN.
    family_names:
        Family label table; ``predict`` returns indices into it and
        ``predict_family`` returns the names.
    """

    def __init__(
        self,
        model_config: ModelConfig,
        family_names: Sequence[str],
    ) -> None:
        if len(family_names) != model_config.num_classes:
            raise ConfigurationError(
                f"{len(family_names)} family names for "
                f"{model_config.num_classes} classes"
            )
        self.model_config = model_config
        self.family_names: List[str] = list(family_names)
        self.model: DgcnnBase = build_model(model_config)
        self.scaler = AttributeScaler()
        self.history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    # ingestion

    def acfg_from_asm(self, asm_text: str, name: str = "") -> ACFG:
        """Run the full front end on one assembly listing."""
        cfg = build_cfg_from_text(asm_text, name=name)
        return ACFG.from_cfg(cfg)

    def acfg_from_cfg(self, cfg: ControlFlowGraph) -> ACFG:
        """Extract attributes from a pre-built CFG (YANCFG path)."""
        return ACFG.from_cfg(cfg)

    # ------------------------------------------------------------------
    # training mode

    def fit(
        self,
        train_acfgs: Sequence[ACFG],
        validation_acfgs: Optional[Sequence[ACFG]] = None,
        training_config: Optional[TrainingConfig] = None,
    ) -> TrainingHistory:
        """Train the DGCNN on labelled ACFGs (training mode).

        The attribute scaler is fitted on the training set here and
        reused verbatim at prediction time.
        """
        config = training_config or TrainingConfig()
        scaled_train = self.scaler.fit_transform(train_acfgs)
        scaled_val = (
            self.scaler.transform(validation_acfgs) if validation_acfgs else None
        )
        trainer = Trainer(config)
        self.history = trainer.train(self.model, scaled_train, scaled_val)
        return self.history

    # ------------------------------------------------------------------
    # prediction mode

    def _require_fitted(self) -> None:
        if not self.scaler.is_fitted:
            raise MagicError("MAGIC instance used for prediction before fit()/load()")

    def predict_proba(self, acfgs: Sequence[ACFG]) -> np.ndarray:
        """Per-family probabilities for unlabelled ACFGs."""
        self._require_fitted()
        scaled = self.scaler.transform(acfgs)
        return Trainer.predict_proba(self.model, scaled)

    def predict(self, acfgs: Sequence[ACFG]) -> np.ndarray:
        """Family indices for unlabelled ACFGs."""
        return self.predict_proba(acfgs).argmax(axis=1)

    def predict_family(self, acfgs: Sequence[ACFG]) -> List[str]:
        """Family names for unlabelled ACFGs."""
        return [self.family_names[i] for i in self.predict(acfgs)]

    def classify_asm(self, asm_text: str, name: str = "") -> Tuple[str, np.ndarray]:
        """One-call prediction path: listing text -> (family, probabilities)."""
        acfg = self.acfg_from_asm(asm_text, name=name)
        probabilities = self.predict_proba([acfg])[0]
        return self.family_names[int(probabilities.argmax())], probabilities

    def evaluate(self, acfgs: Sequence[ACFG]) -> ClassificationReport:
        """Full report against the labels carried by ``acfgs``."""
        self._require_fitted()
        scaled = self.scaler.transform(acfgs)
        return Trainer.evaluate(self.model, scaled, family_names=self.family_names)

    def measure_timing(
        self, asm_texts: Sequence[str], repeats: int = 1
    ) -> PredictionTiming:
        """Measure feature-extraction and prediction latency (Section V-E)."""
        if not asm_texts:
            raise MagicError("measure_timing needs at least one sample")
        started = time.perf_counter()
        acfgs = [self.acfg_from_asm(text, name=f"t{i}") for i, text in enumerate(asm_texts)]
        feature_seconds = (time.perf_counter() - started) / len(asm_texts)

        self._require_fitted()
        started = time.perf_counter()
        for _ in range(repeats):
            self.predict_proba(acfgs)
        predict_seconds = (time.perf_counter() - started) / (len(acfgs) * repeats)
        return PredictionTiming(
            feature_seconds_per_sample=feature_seconds,
            predict_seconds_per_sample=predict_seconds,
        )

    # ------------------------------------------------------------------
    # persistence

    def save(self, directory: str) -> None:
        """Persist model parameters, scaler, and metadata to a directory."""
        self._require_fitted()
        os.makedirs(directory, exist_ok=True)
        state = self.model.state_dict()
        np.savez(
            os.path.join(directory, _STATE_FILE),
            **state,
            __scaler_mean=self.scaler.mean_,
            __scaler_std=self.scaler.std_,
        )
        meta = {
            "family_names": self.family_names,
            "scaler_use_log": self.scaler.use_log,
            "model_config": {
                **dataclasses.asdict(self.model_config),
                "graph_conv_sizes": list(self.model_config.graph_conv_sizes),
                "amp_grid": list(self.model_config.amp_grid),
                "conv1d_channels": list(self.model_config.conv1d_channels),
            },
        }
        with open(os.path.join(directory, _META_FILE), "w", encoding="utf-8") as fh:
            json.dump(meta, fh, indent=2)

    @classmethod
    def load(cls, directory: str) -> "Magic":
        """Reload a system persisted by :meth:`save`."""
        meta_path = os.path.join(directory, _META_FILE)
        state_path = os.path.join(directory, _STATE_FILE)
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise MagicError(f"cannot load MAGIC metadata from {meta_path}: {exc}") from exc
        raw_config = meta["model_config"]
        raw_config["graph_conv_sizes"] = tuple(raw_config["graph_conv_sizes"])
        raw_config["amp_grid"] = tuple(raw_config["amp_grid"])
        raw_config["conv1d_channels"] = tuple(raw_config["conv1d_channels"])
        # Models persisted before the batch-first refactor recorded the
        # retired use_batched_propagation flag; drop it silently — the
        # batched path is now the only one and parameters are unaffected.
        raw_config.pop("use_batched_propagation", None)
        config = ModelConfig(**raw_config)
        system = cls(config, meta["family_names"])

        with np.load(state_path) as archive:
            arrays: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
        system.scaler.use_log = bool(meta["scaler_use_log"])
        system.scaler.mean_ = arrays.pop("__scaler_mean")
        system.scaler.std_ = arrays.pop("__scaler_std")
        system.model.load_state_dict(arrays)
        return system
