"""Adaptive max pooling head (Section III-C, the paper's second extension).

Instead of SortPooling, the concatenated graph-convolution output
``Z^{1:h}`` (an ``n × sum(c_t)`` "image" whose height varies per graph) is

1. passed through a Conv2D layer "with an arbitrary number of filters"
   (Table II sweeps 16 or 32 channels) so that features can mix across
   both the vertex and channel dimensions,
2. adaptively max-pooled to a fixed ``H × W`` grid (Figure 6), making the
   representation size graph-independent,

after which a VGG-inspired multi-Conv2D head (see
:class:`repro.core.dgcnn.DgcnnAdaptivePooling`) predicts the family
distribution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Module
from repro.nn.tensor import Tensor


class AdaptivePoolingHead(Module):
    """Conv2D + adaptive max pooling: ``(n, C) -> (channels, H, W)``.

    Parameters
    ----------
    channels:
        Filters in the pre-AMP Conv2D ("2D Convolution Channels" in
        Table II: 16 or 32).
    output_grid:
        The fixed ``(H, W)`` AMP output grid (Figure 6 uses 3x3).
    """

    def __init__(
        self,
        channels: int,
        output_grid: Tuple[int, int] = (3, 3),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {channels}")
        grid_h, grid_w = output_grid
        if grid_h < 1 or grid_w < 1:
            raise ConfigurationError(f"output grid must be positive, got {output_grid}")
        self.channels = channels
        self.output_grid = (grid_h, grid_w)
        self.conv = Conv2d(1, channels, kernel_size=3, stride=1, padding=1, rng=rng)

    def forward(self, z_concat: Tensor) -> Tensor:
        """Pool one graph's ``Z^{1:h}`` to a fixed-size feature volume."""
        if z_concat.ndim != 2:
            raise ShapeError(
                f"AdaptivePoolingHead expects (n, C) input, got {z_concat.shape}"
            )
        n, c = z_concat.shape
        image = z_concat.reshape(1, 1, n, c)
        convolved = self.conv(image).relu()
        pooled = F.adaptive_max_pool2d(convolved, self.output_grid)
        return pooled.reshape(self.channels, *self.output_grid)
