"""SortPooling layer (Section III-A-3).

Sorts the vertices of ``Z^{1:h}`` by their feature descriptors — primary
key the *last* channel of the last graph-convolution layer (the most
refined Weisfeiler-Lehman "color"), ties broken by progressively earlier
channels — then truncates or zero-pads to exactly ``k`` rows, producing a
fixed-size ``(k, sum(c_t))`` tensor for any input graph.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


def sort_vertex_order(features: np.ndarray) -> np.ndarray:
    """Row order after SortPooling's lexicographic descending sort.

    The primary sort key is the last column, then the second-to-last, and
    so on — ``np.lexsort`` takes keys last-key-primary, so passing columns
    in natural order gives exactly the paper's tie-breaking rule.  The
    sort is descending ("decreasing order" in the paper); negating the
    keys keeps ``lexsort``'s ascending machinery while preserving
    stability.
    """
    if features.ndim != 2:
        raise ConfigurationError(
            f"sort_vertex_order expects a 2-D array, got shape {features.shape}"
        )
    keys = tuple(-features[:, column] for column in range(features.shape[1]))
    return np.lexsort(keys)


def resolve_sort_pooling_k(graph_sizes: Sequence[int], ratio: float, minimum: int = 2) -> int:
    """Choose ``k`` so that roughly ``ratio`` of graphs have ≥ ``k`` vertices.

    This is the rule used by the reference DGCNN implementation the paper
    builds on: ``k`` is the ``ratio``-quantile of the training-set graph
    sizes (so with ratio 0.64, 64% of graphs are truncated rather than
    padded), floored at ``minimum``.
    """
    if not graph_sizes:
        raise ConfigurationError("cannot resolve k from an empty size list")
    if not 0.0 < ratio <= 1.0:
        raise ConfigurationError(f"pooling ratio must be in (0, 1], got {ratio}")
    ordered = sorted(graph_sizes)
    index = min(len(ordered) - 1, max(0, math.ceil(ratio * len(ordered)) - 1))
    return max(minimum, ordered[index])


def sort_pool(z_concat: Tensor, k: int) -> Tensor:
    """``(n, C) -> (k, C)``: sort rows, truncate or zero-pad to ``k``.

    A single composite autograd node (rather than gather + pad chained)
    so the tape replays it as one kernel that recomputes the
    data-dependent permutation per batch.  The permutation is computed
    from forward values and treated as a constant in backprop;
    gradients flow through the row selection.
    """
    z_concat = Tensor._coerce(z_concat)
    order = sort_vertex_order(z_concat.data)
    n, channels = z_concat.shape
    m = min(n, k)
    out_data = np.zeros((k, channels), dtype=np.float64)
    out_data[:m] = z_concat.data[order[:m]]

    def grad_fn(grad: np.ndarray):
        grad_in = np.zeros_like(z_concat.data)
        np.add.at(grad_in, order[:m], grad[:m])
        return (grad_in,)

    return Tensor._make(
        out_data,
        (z_concat,),
        grad_fn,
        op="sort_pool",
        meta={"k": k, "order_fn": sort_vertex_order},
    )


class SortPooling(Module):
    """Truncate/pad sorted vertex descriptors to ``k`` rows."""

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise ConfigurationError(f"sort pooling k must be >= 1, got {k}")
        self.k = k

    def forward(self, z_concat: Tensor) -> Tensor:
        """``(n, C) -> (k, C)`` for any ``n``; see :func:`sort_pool`."""
        return sort_pool(z_concat, self.k)
