"""The paper's primary contribution: DGCNN variants and the MAGIC system."""

from repro.core.adaptive_pooling import AdaptivePoolingHead
from repro.core.batched import GraphBatch, propagate
from repro.core.dgcnn import (
    POOLING_ADAPTIVE,
    POOLING_SORT_CONV1D,
    POOLING_SORT_WEIGHTED,
    POOLING_TYPES,
    DgcnnAdaptivePooling,
    DgcnnBase,
    DgcnnSortPoolingConv1d,
    DgcnnSortPoolingWeightedVertices,
    ModelConfig,
    build_model,
)
from repro.core.graph_conv import GraphConvolution, GraphConvolutionStack
from repro.core.magic import Magic, PredictionTiming
from repro.core.sort_pooling import (
    SortPooling,
    resolve_sort_pooling_k,
    sort_vertex_order,
)
from repro.core.weighted_vertices import WeightedVertices

__all__ = [
    "AdaptivePoolingHead",
    "DgcnnAdaptivePooling",
    "DgcnnBase",
    "DgcnnSortPoolingConv1d",
    "DgcnnSortPoolingWeightedVertices",
    "GraphBatch",
    "GraphConvolution",
    "GraphConvolutionStack",
    "Magic",
    "ModelConfig",
    "POOLING_ADAPTIVE",
    "POOLING_SORT_CONV1D",
    "POOLING_SORT_WEIGHTED",
    "POOLING_TYPES",
    "PredictionTiming",
    "SortPooling",
    "WeightedVertices",
    "build_model",
    "propagate",
    "resolve_sort_pooling_k",
    "sort_vertex_order",
]
