"""DGCNN model variants for CFG classification (Section III).

Three end-to-end architectures share the graph-convolution stack and
differ in how they reduce the variable-size ``Z^{1:h}`` to a fixed-size
representation:

* :class:`DgcnnSortPoolingConv1d` — SortPooling + the original remaining
  Conv1D layers of Zhang et al. (Section III-A-4).
* :class:`DgcnnSortPoolingWeightedVertices` — SortPooling + the paper's
  WeightedVertices graph-embedding layer (Section III-B).
* :class:`DgcnnAdaptivePooling` — Conv2D + adaptive max pooling + a
  VGG-inspired Conv2D head (Section III-C); the architecture Table II
  selects as best on both datasets.

All variants share one forward contract: they consume a
:class:`~repro.core.batched.GraphBatch` (a list of
:class:`~repro.features.acfg.ACFG` is collated on the fly) and emit
``(batch, num_classes)`` log-probabilities, so the training loop, loss
(Equation 5), and evaluation code are architecture-agnostic —
"regardless of how we change the layer configurations ... the model's
output is always the prediction of the observed input" (Section IV-B).

Graph convolutions always run over the block-diagonal sparse merge of
the batch (one sparse matmul per layer).  The dense per-graph loop
survives only as :meth:`DgcnnBase.forward_reference`, the reference
implementation that the equivalence tests compare against; the old
``ModelConfig.use_batched_propagation`` opt-in flag is retired (a
deprecation shim still accepts — and ignores — it).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn import functional as F
from repro.nn import stack
from repro.nn.layers import Conv1d, Conv2d, Dropout, Linear, Module
from repro.nn.tensor import Tensor
from repro.core.adaptive_pooling import AdaptivePoolingHead
from repro.core.batched import GraphBatch
from repro.core.graph_conv import GraphConvolutionStack
from repro.core.sort_pooling import SortPooling
from repro.core.weighted_vertices import WeightedVertices

#: Pooling architecture names accepted by :func:`build_model` (Table II).
POOLING_ADAPTIVE = "adaptive"
POOLING_SORT_CONV1D = "sort_conv1d"
POOLING_SORT_WEIGHTED = "sort_weighted"
POOLING_TYPES = (POOLING_ADAPTIVE, POOLING_SORT_CONV1D, POOLING_SORT_WEIGHTED)


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of one DGCNN instance (the rows of Table II).

    Attributes
    ----------
    num_attributes:
        Input channels ``c`` (11 for the Table I attribute set).
    num_classes:
        Number of malware families.
    pooling:
        One of ``"adaptive"``, ``"sort_conv1d"``, ``"sort_weighted"``.
    graph_conv_sizes:
        Widths of the graph convolution layers.
    sort_k:
        ``k`` for SortPooling variants (resolved from the training set via
        :func:`repro.core.sort_pooling.resolve_sort_pooling_k`).
    amp_grid:
        Adaptive pooling output grid (adaptive variant only).
    conv2d_channels:
        Filters in the pre-AMP Conv2D (adaptive variant only).
    conv1d_channels:
        Channel pair of the two remaining Conv1D layers (sort_conv1d only).
    conv1d_kernel:
        Kernel size of the second Conv1D layer (sort_conv1d only).
    hidden_size:
        Width of the fully connected layer before the output.
    dropout:
        Dropout rate applied before the output layer.
    activation:
        Graph-convolution nonlinearity ``f``.
    normalize_propagation:
        ``True`` for Equation 1's ``D̂^-1 Â`` propagation (the paper);
        ``False`` for raw ``Â`` (ablation, DESIGN.md §5).
    seed:
        Seed for parameter initialization and dropout.
    use_batched_propagation:
        Retired.  Batched sparse propagation is the only production
        path; the keyword is still accepted (and ignored, with a
        :class:`DeprecationWarning`) so configs persisted before the
        batch-first refactor keep loading.
    """

    num_attributes: int
    num_classes: int
    pooling: str = POOLING_ADAPTIVE
    graph_conv_sizes: Tuple[int, ...] = (32, 32, 32, 32)
    sort_k: int = 10
    amp_grid: Tuple[int, int] = (3, 3)
    conv2d_channels: int = 16
    conv1d_channels: Tuple[int, int] = (16, 32)
    conv1d_kernel: int = 5
    hidden_size: int = 128
    dropout: float = 0.1
    activation: str = "tanh"
    normalize_propagation: bool = True
    seed: int = 0
    use_batched_propagation: dataclasses.InitVar[Optional[bool]] = None

    def __post_init__(self, use_batched_propagation: Optional[bool]) -> None:
        if use_batched_propagation is not None:
            warnings.warn(
                "ModelConfig.use_batched_propagation is retired: batched "
                "sparse propagation is the only production path (the "
                "per-graph loop survives as DgcnnBase.forward_reference "
                "for equivalence testing); the flag is ignored",
                DeprecationWarning,
                stacklevel=2,
            )
        if self.pooling not in POOLING_TYPES:
            raise ConfigurationError(
                f"pooling must be one of {POOLING_TYPES}, got {self.pooling!r}"
            )
        if self.num_classes < 2:
            raise ConfigurationError(
                f"num_classes must be >= 2, got {self.num_classes}"
            )
        if self.num_attributes < 1:
            raise ConfigurationError(
                f"num_attributes must be >= 1, got {self.num_attributes}"
            )


#: What the models' forward pass accepts: a pre-collated batch or raw ACFGs.
ModelInput = Union[GraphBatch, Sequence[ACFG]]


class DgcnnBase(Module):
    """Shared scaffolding: graph conv stack + classifier plumbing.

    The forward contract is batch-first: ``forward`` consumes one
    :class:`~repro.core.batched.GraphBatch` (raw ACFG sequences are
    collated on the fly) and runs the graph convolutions once over the
    merged batch.  :meth:`forward_reference` keeps the dense per-graph
    loop alive purely as the ground truth for equivalence tests.
    """

    #: Collate layers (e.g. ``Trainer``) check this to know they may hand
    #: the model a pre-built ``GraphBatch`` instead of a list of ACFGs.
    accepts_graph_batch = True

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self.graph_convs = GraphConvolutionStack(
            config.num_attributes,
            config.graph_conv_sizes,
            activation=config.activation,
            rng=self._rng,
            normalize_propagation=config.normalize_propagation,
        )

    @property
    def normalize_propagation(self) -> bool:
        """The propagation normalization a collated batch must match."""
        return self.config.normalize_propagation

    def collate(self, acfgs: Sequence[ACFG]) -> GraphBatch:
        """Merge raw ACFGs into a :class:`GraphBatch` this model accepts."""
        return GraphBatch(
            acfgs, normalize_propagation=self.config.normalize_propagation
        )

    def _coerce(self, batch: ModelInput) -> GraphBatch:
        if isinstance(batch, GraphBatch):
            if batch.normalized != self.config.normalize_propagation:
                raise ConfigurationError(
                    f"GraphBatch built with normalize_propagation="
                    f"{batch.normalized}, but the model expects "
                    f"{self.config.normalize_propagation}"
                )
            return batch
        if not batch:
            raise ConfigurationError("forward() on an empty batch")
        return self.collate(batch)

    # -- per-graph fixed-size representation (architecture-specific) ----

    def embed_from_zconcat(self, z_concat: Tensor) -> Tensor:
        """Pool one graph's ``Z^{1:h}`` to its flat fixed-size embedding."""
        raise NotImplementedError

    def embed_graph(self, acfg: ACFG) -> Tensor:
        """Fixed-size representation of one graph (flattened to 1-D)."""
        return self.embed_from_zconcat(self.graph_convs(acfg))

    def forward(self, batch: ModelInput) -> Tensor:
        """Log-probabilities for a batch of graphs: ``(B, num_classes)``.

        The graph convolutions run once over the whole batch via the
        block-diagonal sparse propagation operator
        (:mod:`repro.core.batched`); raw ACFG sequences are collated
        first.  Numerically equivalent to :meth:`forward_reference`
        (``tests/core/test_batched.py``).
        """
        graph_batch = self._coerce(batch)
        z_all = self.graph_convs.forward_batch(graph_batch)
        embeddings = [
            self.embed_from_zconcat(z_slice)
            for z_slice in graph_batch.split(z_all)
        ]
        return self.classify(stack(embeddings, axis=0))

    def forward_reference(self, batch: Sequence[ACFG]) -> Tensor:
        """Per-graph dense reference path (equivalence testing only).

        Kept so the batched production path has a simple, obviously
        correct implementation to be checked against; not used by the
        trainer, cross-validation, grid search, or the CLI.
        """
        if isinstance(batch, GraphBatch):
            raise ConfigurationError(
                "forward_reference() takes raw ACFGs, not a GraphBatch"
            )
        if not batch:
            raise ConfigurationError("forward_reference() on an empty batch")
        embeddings = [self.embed_graph(acfg) for acfg in batch]
        return self.classify(stack(embeddings, axis=0))

    def classify(self, embeddings: Tensor) -> Tensor:
        """Map stacked graph embeddings ``(B, D)`` to log-probabilities."""
        raise NotImplementedError

    def predict_proba(self, batch: ModelInput) -> np.ndarray:
        """Class probabilities without tracking gradients."""
        was_training = self.training
        self.eval()
        try:
            log_probs = self.forward(batch)
        finally:
            self.train(was_training)
        return np.exp(log_probs.data)

    def predict(self, batch: ModelInput) -> np.ndarray:
        """Hard class predictions for a batch of graphs."""
        return self.predict_proba(batch).argmax(axis=1)


class _MlpHead(Module):
    """Dense -> ReLU -> Dropout -> Dense -> log-softmax classifier tail."""

    def __init__(
        self,
        in_features: int,
        hidden_size: int,
        num_classes: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(in_features, hidden_size, rng=rng)
        self.drop = Dropout(dropout, rng=rng)
        self.fc2 = Linear(hidden_size, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.drop(self.fc1(x).relu())
        return F.log_softmax(self.fc2(hidden), axis=-1)


class DgcnnSortPoolingConv1d(DgcnnBase):
    """SortPooling + the original DGCNN remaining layers (Section III-A-4).

    The sort-pooled ``(k, C)`` tensor is flattened to a length ``k*C``
    signal; a Conv1D with kernel and stride ``C`` produces one descriptor
    per retained vertex, followed by max pooling, a second Conv1D, and a
    dense head.
    """

    def __init__(self, config: ModelConfig) -> None:
        super().__init__(config)
        total_channels = self.graph_convs.total_channels
        ch1, ch2 = config.conv1d_channels
        self.sort_pool = SortPooling(config.sort_k)
        self.conv1 = Conv1d(
            1, ch1, kernel_size=total_channels, stride=total_channels, rng=self._rng
        )
        length_after_conv1 = config.sort_k
        length_after_pool = max(1, (length_after_conv1 - 2) // 2 + 1)
        kernel2 = min(config.conv1d_kernel, length_after_pool)
        self.conv2 = Conv1d(ch1, ch2, kernel_size=kernel2, stride=1, rng=self._rng)
        length_after_conv2 = length_after_pool - kernel2 + 1
        self._flat_size = ch2 * length_after_conv2
        self.head = _MlpHead(
            self._flat_size,
            config.hidden_size,
            config.num_classes,
            config.dropout,
            self._rng,
        )

    def embed_from_zconcat(self, z_concat: Tensor) -> Tensor:
        z_sp = self.sort_pool(z_concat)          # (k, C)
        k, c = z_sp.shape
        signal = z_sp.reshape(1, 1, k * c)
        out = self.conv1(signal).relu()          # (1, ch1, k)
        if out.shape[-1] >= 2:
            out = F.max_pool1d(out, 2, 2)
        out = self.conv2(out).relu()             # (1, ch2, L)
        return out.reshape(self._flat_size)

    def classify(self, embeddings: Tensor) -> Tensor:
        return self.head(embeddings)


class DgcnnSortPoolingWeightedVertices(DgcnnBase):
    """SortPooling + WeightedVertices graph embedding (Section III-B)."""

    def __init__(self, config: ModelConfig) -> None:
        super().__init__(config)
        total_channels = self.graph_convs.total_channels
        self.sort_pool = SortPooling(config.sort_k)
        self.weighted = WeightedVertices(config.sort_k, rng=self._rng)
        self.head = _MlpHead(
            total_channels,
            config.hidden_size,
            config.num_classes,
            config.dropout,
            self._rng,
        )

    def embed_from_zconcat(self, z_concat: Tensor) -> Tensor:
        z_sp = self.sort_pool(z_concat)          # (k, C)
        return self.weighted(z_sp)               # (C,)

    def classify(self, embeddings: Tensor) -> Tensor:
        return self.head(embeddings)


class DgcnnAdaptivePooling(DgcnnBase):
    """Conv2D + AMP + VGG-inspired Conv2D head (Section III-C).

    After the per-graph adaptive pooling produces a fixed
    ``(channels, H, W)`` volume, two 3x3 Conv2D layers (channel-doubling,
    in the VGG spirit) refine it before the dense classifier.
    """

    def __init__(self, config: ModelConfig) -> None:
        super().__init__(config)
        channels = config.conv2d_channels
        self.amp_head = AdaptivePoolingHead(
            channels, output_grid=config.amp_grid, rng=self._rng
        )
        self.vgg1 = Conv2d(channels, 2 * channels, 3, stride=1, padding=1, rng=self._rng)
        self.vgg2 = Conv2d(2 * channels, 2 * channels, 3, stride=1, padding=1, rng=self._rng)
        grid_h, grid_w = config.amp_grid
        self._flat_size = 2 * channels * grid_h * grid_w
        self.head = _MlpHead(
            self._flat_size,
            config.hidden_size,
            config.num_classes,
            config.dropout,
            self._rng,
        )

    def embed_from_zconcat(self, z_concat: Tensor) -> Tensor:
        return self.amp_head(z_concat).reshape(-1)

    def classify(self, embeddings: Tensor) -> Tensor:
        channels = self.amp_head.channels
        grid_h, grid_w = self.config.amp_grid
        volume = embeddings.reshape(embeddings.shape[0], channels, grid_h, grid_w)
        out = self.vgg1(volume).relu()
        out = self.vgg2(out).relu()
        flat = out.reshape(out.shape[0], self._flat_size)
        return self.head(flat)


def build_model(config: ModelConfig) -> DgcnnBase:
    """Instantiate the architecture selected by ``config.pooling``."""
    if config.pooling == POOLING_ADAPTIVE:
        return DgcnnAdaptivePooling(config)
    if config.pooling == POOLING_SORT_CONV1D:
        return DgcnnSortPoolingConv1d(config)
    return DgcnnSortPoolingWeightedVertices(config)
