"""Handcrafted aggregate feature vectors from ACFGs.

The comparison methods of Table IV operate on engineered feature vectors
rather than graphs.  This module reduces an ACFG to the aggregate
statistics such systems typically use: per-channel sums/means/maxima of
the block attributes plus graph-level structure statistics (vertex and
edge counts, density, degree moments).  This is exactly the kind of
"reducing CFGs to vectors that contain simple aggregate features" whose
limitations motivate the paper (Section I).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import FeatureExtractionError
from repro.features.acfg import ACFG


def acfg_feature_names(num_attributes: int) -> List[str]:
    """Names of the aggregate features, aligned with the vector layout."""
    names: List[str] = []
    for statistic in ("sum", "mean", "max", "std"):
        names.extend(f"attr{i}_{statistic}" for i in range(num_attributes))
    names.extend(
        [
            "num_vertices",
            "num_edges",
            "density",
            "mean_out_degree",
            "max_out_degree",
            "std_out_degree",
            "num_leaves",
            "num_branching",
            "log_num_vertices",
        ]
    )
    return names


def acfg_to_feature_vector(acfg: ACFG) -> np.ndarray:
    """Aggregate one ACFG into a fixed-size feature vector."""
    attributes = acfg.attributes
    if attributes.size == 0:
        raise FeatureExtractionError(f"{acfg.name!r}: no attributes to aggregate")
    n = acfg.num_vertices
    out_degrees = acfg.adjacency.sum(axis=1)
    num_edges = float(acfg.adjacency.sum())
    density = num_edges / (n * n) if n else 0.0
    parts = [
        attributes.sum(axis=0),
        attributes.mean(axis=0),
        attributes.max(axis=0),
        attributes.std(axis=0),
        np.array(
            [
                float(n),
                num_edges,
                density,
                float(out_degrees.mean()),
                float(out_degrees.max()),
                float(out_degrees.std()),
                float((out_degrees == 0).sum()),
                float((out_degrees >= 2).sum()),
                float(np.log1p(n)),
            ]
        ),
    ]
    return np.concatenate(parts)


def dataset_to_matrix(acfgs: Sequence[ACFG]) -> Tuple[np.ndarray, np.ndarray]:
    """``(X, y)`` design matrix and labels for a list of labelled ACFGs."""
    features = np.stack([acfg_to_feature_vector(a) for a in acfgs])
    labels = np.array(
        [-1 if a.label is None else a.label for a in acfgs], dtype=np.int64
    )
    return features, labels


def standardize(
    train: np.ndarray, *others: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Z-score features using train statistics; returns all matrices scaled."""
    mean = train.mean(axis=0)
    std = train.std(axis=0)
    std[std < 1e-12] = 1.0
    scaled = [(train - mean) / std]
    scaled.extend((other - mean) / std for other in others)
    return tuple(scaled)
