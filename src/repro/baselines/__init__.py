"""Comparator classifiers for Table IV and Figure 11.

Each class reproduces the *method family* of one comparison row; all are
implemented from scratch (no sklearn/xgboost offline) and consume the
handcrafted aggregate features of
:mod:`repro.baselines.feature_vectors` (or raw ACFGs, for Strand).
"""

from repro.baselines.autoencoder import AutoencoderGbtClassifier, DenseAutoencoder
from repro.baselines.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
)
from repro.baselines.esvc import EsvcClassifier
from repro.baselines.feature_vectors import (
    acfg_feature_names,
    acfg_to_feature_vector,
    dataset_to_matrix,
    standardize,
)
from repro.baselines.gradient_boosting import GradientBoostingClassifier
from repro.baselines.random_forest import RandomForestClassifier
from repro.baselines.strand import StrandClassifier, sequence_ngrams, tokenize_acfg
from repro.baselines.svm import LinearSVM, OneVsRestSVM

__all__ = [
    "AutoencoderGbtClassifier",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "DenseAutoencoder",
    "EsvcClassifier",
    "GradientBoostingClassifier",
    "LinearSVM",
    "OneVsRestSVM",
    "RandomForestClassifier",
    "StrandClassifier",
    "acfg_feature_names",
    "acfg_to_feature_vector",
    "dataset_to_matrix",
    "sequence_ngrams",
    "standardize",
    "tokenize_acfg",
]
