"""Random forest classifier.

Comparator class for Table IV rows [11] ("Ensemble Multiple Random
Forest Classifiers") and [14] ("Random Forest with Feature Engineering"):
bagged gini CART trees with per-node feature subsampling, probabilities
averaged across trees.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.baselines.decision_tree import DecisionTreeClassifier
from repro.exceptions import TrainingError


class RandomForestClassifier:
    """Bagging ensemble of decision trees."""

    def __init__(
        self,
        num_classes: int,
        n_estimators: int = 50,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise TrainingError(f"n_estimators must be >= 1, got {n_estimators}")
        self.num_classes = num_classes
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeClassifier] = []

    def _resolve_max_features(self, num_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(math.sqrt(num_features)))
        if self.max_features == "log2":
            return max(1, int(math.log2(num_features)))
        raise TrainingError(f"unknown max_features rule {self.max_features!r}")

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        n = len(features)
        if n == 0:
            raise TrainingError("cannot fit a forest on zero samples")
        max_features = self._resolve_max_features(features.shape[1])
        self._trees = []
        root_rng = np.random.default_rng(self.seed)
        for _ in range(self.n_estimators):
            tree_rng = np.random.default_rng(root_rng.integers(0, 2 ** 63))
            bootstrap = tree_rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                num_classes=self.num_classes,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=tree_rng,
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self._trees.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise TrainingError("forest used before fit()")
        stacked = np.stack([tree.predict_proba(features) for tree in self._trees])
        return stacked.mean(axis=0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)
