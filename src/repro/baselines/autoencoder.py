"""Autoencoder feature learning + gradient boosting (Table IV row [9]).

Yousefi-Azar et al. learn features with a deep autoencoder and classify
with a gradient-boosted model.  We reproduce the pipeline with our own
NN engine: a symmetric dense autoencoder compresses the handcrafted
aggregate vectors, and :class:`GradientBoostingClassifier` is trained on
the bottleneck codes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.gradient_boosting import GradientBoostingClassifier
from repro.exceptions import TrainingError
from repro.nn.layers import Linear, Module, Sequential, Tanh
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class DenseAutoencoder(Module):
    """Symmetric tanh autoencoder with a low-dimensional bottleneck."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Sequence[int] = (32, 16),
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not hidden_sizes:
            raise TrainingError("autoencoder needs at least one hidden layer")
        rng = np.random.default_rng(seed)
        sizes = [input_size, *hidden_sizes]
        encoder_layers: List[Module] = []
        for a, b in zip(sizes, sizes[1:]):
            encoder_layers.extend([Linear(a, b, rng=rng), Tanh()])
        decoder_layers: List[Module] = []
        reversed_sizes = list(reversed(sizes))
        for index, (a, b) in enumerate(zip(reversed_sizes, reversed_sizes[1:])):
            decoder_layers.append(Linear(a, b, rng=rng))
            if index < len(reversed_sizes) - 2:
                decoder_layers.append(Tanh())
        self.encoder = Sequential(*encoder_layers)
        self.decoder = Sequential(*decoder_layers)
        self.code_size = sizes[-1]

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    def encode(self, features: np.ndarray) -> np.ndarray:
        self.eval()
        return self.encoder(Tensor(features)).data


class AutoencoderGbtClassifier:
    """Unsupervised encoding followed by supervised boosting."""

    def __init__(
        self,
        num_classes: int,
        hidden_sizes: Sequence[int] = (32, 16),
        ae_epochs: int = 80,
        ae_learning_rate: float = 1e-2,
        gbt_rounds: int = 40,
        seed: int = 0,
    ) -> None:
        self.num_classes = num_classes
        self.hidden_sizes = tuple(hidden_sizes)
        self.ae_epochs = ae_epochs
        self.ae_learning_rate = ae_learning_rate
        self.gbt_rounds = gbt_rounds
        self.seed = seed
        self._autoencoder: Optional[DenseAutoencoder] = None
        self._booster: Optional[GradientBoostingClassifier] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "AutoencoderGbtClassifier":
        features = np.asarray(features, dtype=np.float64)
        self._autoencoder = DenseAutoencoder(
            features.shape[1], self.hidden_sizes, seed=self.seed
        )
        optimizer = Adam(self._autoencoder.parameters(), lr=self.ae_learning_rate)
        self._autoencoder.train(True)
        x = Tensor(features)
        for _ in range(self.ae_epochs):
            optimizer.zero_grad()
            reconstruction = self._autoencoder(x)
            loss = ((reconstruction - x) ** 2).mean()
            loss.backward()
            optimizer.step()

        codes = self._autoencoder.encode(features)
        self._booster = GradientBoostingClassifier(
            num_classes=self.num_classes,
            n_rounds=self.gbt_rounds,
            seed=self.seed,
        )
        self._booster.fit(codes, labels)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._autoencoder is None or self._booster is None:
            raise TrainingError("classifier used before fit()")
        codes = self._autoencoder.encode(np.asarray(features, dtype=np.float64))
        return self._booster.predict_proba(codes)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)
