"""Linear support vector machines trained by SGD on the hinge loss.

The building block of the ESVC comparator (Figure 11 / [8]).  A binary
:class:`LinearSVM` optimizes the L2-regularized hinge loss with
mini-batch SGD; :class:`OneVsRestSVM` composes one per class and converts
margins to probabilities with a softmax over scores.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import TrainingError


class LinearSVM:
    """Binary linear SVM: ``min λ/2 ||w||² + mean(hinge(y (wx + b)))``.

    Labels are ±1.  Training uses decaying-step SGD (Pegasos-style).
    """

    def __init__(
        self,
        regularization: float = 1e-3,
        epochs: int = 60,
        batch_size: int = 16,
        seed: int = 0,
    ) -> None:
        if regularization <= 0:
            raise TrainingError(
                f"regularization must be positive, got {regularization}"
            )
        self.regularization = regularization
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    def fit(self, features: np.ndarray, labels_pm1: np.ndarray) -> "LinearSVM":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels_pm1, dtype=np.float64)
        if set(np.unique(labels)) - {-1.0, 1.0}:
            raise TrainingError("LinearSVM labels must be in {-1, +1}")
        n, d = features.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(d)
        bias = 0.0
        step_count = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                step_count += 1
                lr = 1.0 / (self.regularization * step_count)
                batch = order[start : start + self.batch_size]
                x, y = features[batch], labels[batch]
                margins = y * (x @ weights + bias)
                active = margins < 1.0
                grad_w = self.regularization * weights
                grad_b = 0.0
                if active.any():
                    grad_w = grad_w - (y[active, None] * x[active]).mean(axis=0)
                    grad_b = -y[active].mean()
                weights = weights - lr * grad_w
                bias = bias - lr * grad_b
        self.weights = weights
        self.bias = bias
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise TrainingError("SVM used before fit()")
        return np.asarray(features, dtype=np.float64) @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(features) >= 0.0, 1, -1)


class OneVsRestSVM:
    """Multiclass SVM: one binary SVM per class, softmax over margins."""

    def __init__(
        self,
        num_classes: int,
        regularization: float = 1e-3,
        epochs: int = 60,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise TrainingError(f"num_classes must be >= 2, got {num_classes}")
        self.num_classes = num_classes
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self._machines: List[LinearSVM] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "OneVsRestSVM":
        labels = np.asarray(labels, dtype=np.int64)
        self._machines = []
        for class_index in range(self.num_classes):
            machine = LinearSVM(
                regularization=self.regularization,
                epochs=self.epochs,
                seed=self.seed + class_index,
            )
            machine.fit(features, np.where(labels == class_index, 1.0, -1.0))
            self._machines.append(machine)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if not self._machines:
            raise TrainingError("SVM used before fit()")
        return np.stack(
            [machine.decision_function(features) for machine in self._machines],
            axis=1,
        )

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_function(features)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.decision_function(features).argmax(axis=1)
