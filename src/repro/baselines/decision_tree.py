"""CART decision trees: classification (gini) and regression (MSE).

The regression tree is the weak learner of the gradient-boosting
comparator (Table IV's "XGBoost" class of methods); the classification
tree is the unit of the random-forest comparators.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError


@dataclasses.dataclass
class _Node:
    """A tree node; leaves carry ``value``, internal nodes a split."""

    value: Optional[np.ndarray] = None
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


class _TreeBase:
    """Shared recursive splitter for both tree flavours."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_depth < 1:
            raise TrainingError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng()
        self._root: Optional[_Node] = None
        self.num_features_: int = 0

    # subclass hooks ----------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _impurity_gain(
        self, y_sorted: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-split-position left/right impurity*count arrays."""
        raise NotImplementedError

    # fitting -----------------------------------------------------------

    def fit(self, features: np.ndarray, y: np.ndarray) -> "_TreeBase":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise TrainingError(f"features must be 2-D, got {features.shape}")
        if len(features) != len(y):
            raise TrainingError(
                f"{len(features)} rows vs {len(y)} labels"
            )
        if len(features) == 0:
            raise TrainingError("cannot fit a tree on zero samples")
        self.num_features_ = features.shape[1]
        self._root = self._grow(features, np.asarray(y), depth=0)
        return self

    def _grow(self, features: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n = len(y)
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or self._is_pure(y)
        ):
            return _Node(value=self._leaf_value(y))

        split = self._best_split(features, y)
        if split is None:
            return _Node(value=self._leaf_value(y))
        feature, threshold = split
        mask = features[:, feature] <= threshold
        left = self._grow(features[mask], y[mask], depth + 1)
        right = self._grow(features[~mask], y[~mask], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _is_pure(self, y: np.ndarray) -> bool:
        if y.ndim == 1:
            return bool((y == y[0]).all())
        return bool(np.allclose(y, y[0]))

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self.num_features_:
            return np.arange(self.num_features_)
        return self._rng.choice(
            self.num_features_, size=self.max_features, replace=False
        )

    def _best_split(
        self, features: np.ndarray, y: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        n = len(y)
        best_score = np.inf
        best: Optional[Tuple[int, float]] = None
        for feature in self._candidate_features():
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_column = column[order]
            y_sorted = y[order]
            left_cost, right_cost = self._impurity_gain(y_sorted)
            # Valid split positions: between i and i+1 where the feature
            # value actually changes and both sides satisfy the leaf min.
            positions = np.arange(1, n)
            valid = sorted_column[1:] > sorted_column[:-1]
            valid &= positions >= self.min_samples_leaf
            valid &= (n - positions) >= self.min_samples_leaf
            if not valid.any():
                continue
            scores = left_cost + right_cost
            scores = np.where(valid, scores, np.inf)
            index = int(scores.argmin())
            if scores[index] < best_score:
                best_score = scores[index]
                threshold = 0.5 * (sorted_column[index] + sorted_column[index + 1])
                best = (int(feature), float(threshold))
        return best

    # prediction ----------------------------------------------------------

    def _predict_row(self, row: np.ndarray) -> np.ndarray:
        node = self._root
        if node is None:
            raise TrainingError("tree used before fit()")
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value


class DecisionTreeClassifier(_TreeBase):
    """Gini-impurity CART classifier; leaves hold class distributions."""

    def __init__(self, num_classes: int, **kwargs) -> None:
        super().__init__(**kwargs)
        if num_classes < 2:
            raise TrainingError(f"num_classes must be >= 2, got {num_classes}")
        self.num_classes = num_classes

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y.astype(np.int64), minlength=self.num_classes)
        return counts / counts.sum()

    def _impurity_gain(self, y_sorted: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        n = len(y_sorted)
        onehot = np.zeros((n, self.num_classes))
        onehot[np.arange(n), y_sorted.astype(np.int64)] = 1.0
        left_counts = np.cumsum(onehot, axis=0)[:-1]         # counts left of split
        total = left_counts[-1] + onehot[-1]
        right_counts = total[None, :] - left_counts
        left_n = np.arange(1, n)[:, None].astype(np.float64)
        right_n = (n - np.arange(1, n))[:, None].astype(np.float64)
        # weighted gini: n_side * (1 - sum p^2) = n_side - sum counts^2 / n_side
        left_cost = left_n[:, 0] - (left_counts ** 2).sum(axis=1) / left_n[:, 0]
        right_cost = right_n[:, 0] - (right_counts ** 2).sum(axis=1) / right_n[:, 0]
        return left_cost, right_cost

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        return np.stack([self._predict_row(row) for row in features])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)


class DecisionTreeRegressor(_TreeBase):
    """MSE CART regressor; leaves hold means.  Supports vector targets."""

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.atleast_1d(y.mean(axis=0))

    def _impurity_gain(self, y_sorted: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        y2d = y_sorted if y_sorted.ndim == 2 else y_sorted[:, None]
        n = len(y2d)
        prefix_sum = np.cumsum(y2d, axis=0)[:-1]
        prefix_sq = np.cumsum(y2d ** 2, axis=0)[:-1]
        total_sum = prefix_sum[-1] + y2d[-1]
        total_sq = prefix_sq[-1] + y2d[-1] ** 2
        left_n = np.arange(1, n)[:, None].astype(np.float64)
        right_n = n - left_n
        # SSE = sum(y^2) - (sum y)^2 / n, summed over target dims
        left_cost = (prefix_sq - prefix_sum ** 2 / left_n).sum(axis=1)
        right_sum = total_sum[None, :] - prefix_sum
        right_sq = total_sq[None, :] - prefix_sq
        right_cost = (right_sq - right_sum ** 2 / right_n).sum(axis=1)
        return left_cost, right_cost

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        values = np.stack([self._predict_row(row) for row in features])
        return values[:, 0] if values.shape[1] == 1 else values
