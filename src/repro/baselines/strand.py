"""Strand-style gene-sequence classifier (Table IV row [15]).

Drew et al. classify malware by treating programs as "gene sequences"
and comparing n-gram profiles with minhash-style similarity.  Our
reproduction serializes each ACFG into a discrete token sequence (blocks
in address order, each tokenized by quantizing its attribute vector),
builds per-family n-gram profile sets from training data, and classifies
by maximum Jaccard similarity against the family profiles.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import TrainingError
from repro.features.acfg import ACFG


def tokenize_acfg(acfg: ACFG, num_bins: int = 4) -> List[int]:
    """Serialize an ACFG into a token sequence.

    Each block becomes one token: its attribute vector is quantized per
    channel into ``num_bins`` levels (log-scaled, since attributes are
    counts) and hashed.  Blocks are taken in vertex (address) order, so
    the sequence reflects program layout like Strand's byte "genes".
    """
    attributes = np.log1p(np.maximum(acfg.attributes, 0.0))
    max_per_channel = attributes.max(axis=0)
    max_per_channel[max_per_channel < 1e-12] = 1.0
    quantized = np.minimum(
        (attributes / max_per_channel * num_bins).astype(np.int64), num_bins - 1
    )
    return [hash(tuple(row.tolist())) for row in quantized]


def sequence_ngrams(tokens: Sequence[int], n: int) -> Set[Tuple[int, ...]]:
    """The set of n-grams of a token sequence."""
    if len(tokens) < n:
        return {tuple(tokens)} if tokens else set()
    return {tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)}


class StrandClassifier:
    """Nearest-family-profile classifier over n-gram Jaccard similarity."""

    def __init__(self, num_classes: int, ngram: int = 3, num_bins: int = 4) -> None:
        if ngram < 1:
            raise TrainingError(f"ngram must be >= 1, got {ngram}")
        self.num_classes = num_classes
        self.ngram = ngram
        self.num_bins = num_bins
        self._profiles: List[FrozenSet[Tuple[int, ...]]] = []

    def fit(self, acfgs: Sequence[ACFG], labels: Sequence[int]) -> "StrandClassifier":
        if len(acfgs) != len(labels):
            raise TrainingError(
                f"{len(acfgs)} samples vs {len(labels)} labels"
            )
        profiles: List[Set[Tuple[int, ...]]] = [set() for _ in range(self.num_classes)]
        for acfg, label in zip(acfgs, labels):
            tokens = tokenize_acfg(acfg, num_bins=self.num_bins)
            profiles[int(label)] |= sequence_ngrams(tokens, self.ngram)
        self._profiles = [frozenset(p) for p in profiles]
        return self

    def _similarities(self, acfg: ACFG) -> np.ndarray:
        grams = sequence_ngrams(
            tokenize_acfg(acfg, num_bins=self.num_bins), self.ngram
        )
        scores = np.zeros(self.num_classes)
        for index, profile in enumerate(self._profiles):
            if not profile and not grams:
                continue
            union = len(grams | profile)
            if union:
                scores[index] = len(grams & profile) / union
        return scores

    def predict_proba(self, acfgs: Sequence[ACFG]) -> np.ndarray:
        if not self._profiles:
            raise TrainingError("classifier used before fit()")
        rows = []
        for acfg in acfgs:
            scores = self._similarities(acfg)
            total = scores.sum()
            if total <= 0:
                rows.append(np.full(self.num_classes, 1.0 / self.num_classes))
            else:
                rows.append(scores / total)
        return np.stack(rows)

    def predict(self, acfgs: Sequence[ACFG]) -> np.ndarray:
        return self.predict_proba(acfgs).argmax(axis=1)
