"""Gradient-boosted decision trees with multiclass log-loss.

Comparator for Table IV's best method, "XGBoost with Heavy Feature
Engineering" [13]: per-round, one MSE regression tree per class is fit to
the softmax-cross-entropy residual ``y_onehot - p`` and added with
shrinkage, optionally on a row subsample.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.decision_tree import DecisionTreeRegressor
from repro.exceptions import TrainingError


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GradientBoostingClassifier:
    """Multiclass gradient boosting over regression trees."""

    def __init__(
        self,
        num_classes: int,
        n_rounds: int = 60,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise TrainingError(f"num_classes must be >= 2, got {num_classes}")
        if not 0.0 < subsample <= 1.0:
            raise TrainingError(f"subsample must be in (0, 1], got {subsample}")
        self.num_classes = num_classes
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self._rounds: List[List[DecisionTreeRegressor]] = []
        self._base_score: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GradientBoostingClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        n = len(features)
        if n == 0:
            raise TrainingError("cannot fit boosting on zero samples")
        rng = np.random.default_rng(self.seed)
        onehot = np.zeros((n, self.num_classes))
        onehot[np.arange(n), labels] = 1.0
        # Base score: log class priors, matching standard GBT initialisation.
        priors = np.clip(onehot.mean(axis=0), 1e-12, 1.0)
        self._base_score = np.log(priors)
        scores = np.tile(self._base_score, (n, 1))
        self._rounds = []

        for _ in range(self.n_rounds):
            probabilities = _softmax(scores)
            residual = onehot - probabilities
            if self.subsample < 1.0:
                subset = rng.choice(n, size=max(2, int(self.subsample * n)), replace=False)
            else:
                subset = np.arange(n)
            round_trees: List[DecisionTreeRegressor] = []
            for class_index in range(self.num_classes):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    rng=np.random.default_rng(rng.integers(0, 2 ** 63)),
                )
                tree.fit(features[subset], residual[subset, class_index])
                round_trees.append(tree)
                scores[:, class_index] += self.learning_rate * tree.predict(features)
            self._rounds.append(round_trees)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self._base_score is None:
            raise TrainingError("booster used before fit()")
        features = np.asarray(features, dtype=np.float64)
        scores = np.tile(self._base_score, (len(features), 1))
        for round_trees in self._rounds:
            for class_index, tree in enumerate(round_trees):
                scores[:, class_index] += self.learning_rate * tree.predict(features)
        return scores

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)
