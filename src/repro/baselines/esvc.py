"""ESVC: chained one-vs-rest SVM ensemble (Yan, ASIA CCS 2015).

The comparator of Figure 11.  The original work "sequentially integrates
SVM-based malware classifiers" by chaining Neyman-Pearson-criterion
binary deciders: classifiers are ordered, each decides "family f vs
rest" with a false-positive-bounded threshold, and a sample is assigned
by the *first* classifier in the chain that fires; samples nothing fires
on fall through to the final classifier's best guess.

We reproduce that decision structure: per-family binary SVMs ordered by
training-set family size (largest first — the order that bounds the
chain's error best in the original), thresholds calibrated per family on
the training margins to cap the false-positive rate, softmax-over-margin
probabilities for log-loss computation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.svm import LinearSVM
from repro.exceptions import TrainingError


class EsvcClassifier:
    """Chained Neyman-Pearson SVM ensemble."""

    def __init__(
        self,
        num_classes: int,
        max_false_positive_rate: float = 0.01,
        regularization: float = 1e-3,
        epochs: int = 60,
        seed: int = 0,
    ) -> None:
        if not 0.0 < max_false_positive_rate < 1.0:
            raise TrainingError(
                "max_false_positive_rate must be in (0, 1), got "
                f"{max_false_positive_rate}"
            )
        self.num_classes = num_classes
        self.max_false_positive_rate = max_false_positive_rate
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self._machines: List[LinearSVM] = []
        self._thresholds: List[float] = []
        self._chain_order: List[int] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "EsvcClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        counts = np.bincount(labels, minlength=self.num_classes)
        # Chain order: largest family first.
        self._chain_order = list(np.argsort(-counts))
        self._machines = [None] * self.num_classes  # type: ignore[list-item]
        self._thresholds = [0.0] * self.num_classes

        for class_index in range(self.num_classes):
            machine = LinearSVM(
                regularization=self.regularization,
                epochs=self.epochs,
                seed=self.seed + class_index,
            )
            target = np.where(labels == class_index, 1.0, -1.0)
            machine.fit(features, target)
            self._machines[class_index] = machine
            self._thresholds[class_index] = self._calibrate_threshold(
                machine, features, labels, class_index
            )
        return self

    def _calibrate_threshold(
        self,
        machine: LinearSVM,
        features: np.ndarray,
        labels: np.ndarray,
        class_index: int,
    ) -> float:
        """Smallest threshold keeping the training FPR under the bound.

        The Neyman-Pearson criterion of the original ESVC: among
        thresholds bounding the false-positive rate, pick the one
        maximizing detection (i.e. the smallest admissible one).
        """
        scores = machine.decision_function(features)
        negative_scores = np.sort(scores[labels != class_index])
        if len(negative_scores) == 0:
            return 0.0
        allowed = int(np.floor(self.max_false_positive_rate * len(negative_scores)))
        # Threshold just above the (allowed+1)-th largest negative score.
        cutoff_index = len(negative_scores) - allowed - 1
        cutoff_index = max(0, min(cutoff_index, len(negative_scores) - 1))
        return float(negative_scores[cutoff_index] + 1e-9)

    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._machines or self._machines[0] is None:
            raise TrainingError("ESVC used before fit()")

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.stack(
            [machine.decision_function(features) for machine in self._machines],
            axis=1,
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Chain decision: first classifier whose margin clears its threshold."""
        scores = self.decision_function(features)
        n = len(scores)
        predictions = np.full(n, -1, dtype=np.int64)
        for class_index in self._chain_order:
            undecided = predictions == -1
            fired = scores[:, class_index] > self._thresholds[class_index]
            predictions[undecided & fired] = class_index
        # Fall-through: maximum margin among all classifiers.
        undecided = predictions == -1
        if undecided.any():
            predictions[undecided] = scores[undecided].argmax(axis=1)
        return predictions

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmax over margins, sharpened toward the chain decision.

        ESVC is a hard-decision chain; for log-loss comparison we expose
        a probability surface that honours the chain's argmax.
        """
        scores = self.decision_function(features)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probabilities = exp / exp.sum(axis=1, keepdims=True)
        # Blend toward the hard chain decision so argmax(proba) == predict().
        hard = np.zeros_like(probabilities)
        hard[np.arange(len(scores)), self.predict(features)] = 1.0
        return 0.5 * probabilities + 0.5 * hard
