"""Batch-mode supervised process pool (moved from ``repro.features.pool``).

This module implements the small supervised pool the extraction service
requires:

* one pipe-connected worker process per slot, each running units pulled
  from the parent (work units are pickled across the pipe, results come
  back the same way);
* a per-sample wall-clock deadline enforced by the parent — a worker
  that blows its deadline is SIGKILLed, the sample is reported as a
  structured timeout, and a fresh worker takes the slot;
* crash detection — a worker that dies without reporting (segfault,
  ``os._exit``, OOM kill) costs exactly its in-flight sample, reported
  with the observed exit code.

The parent applies outcomes through callbacks, so the policy layer
(journaling, quarantine, report assembly) lives entirely in
:mod:`repro.features.pipeline`.  The process-lifecycle helpers
(:func:`pool_context`, :func:`terminate_process`) are shared with the
long-lived request mode in :mod:`repro.workers.request`.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing import connection as mp_connection
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    #: Parent/child pipe end; payloads are heterogeneous tuples.
    PipeConn = Connection[Any, Any]

#: Seconds between deadline sweeps while waiting on worker pipes.
_TICK_SECONDS = 0.05

#: Grace period for joining a worker that closed its pipe or was killed.
_JOIN_SECONDS = 5.0


def pool_context() -> BaseContext:
    """The multiprocessing context every supervised worker spawns under.

    ``fork`` when the platform offers it (workers inherit the parent's
    imports, so a respawn costs milliseconds, which matters when a
    serving fleet replaces a crashed replica under traffic); the
    platform default otherwise.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def terminate_process(
    process: BaseProcess, conn: "PipeConn", kill: bool
) -> Optional[int]:
    """Stop a worker process and close its pipe; returns its exit code."""
    try:
        if kill and process.is_alive():
            process.kill()
        process.join(timeout=_JOIN_SECONDS)
        if process.is_alive():  # pragma: no cover - last resort
            process.kill()
            process.join(timeout=_JOIN_SECONDS)
        return process.exitcode
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _worker_main(conn: "PipeConn", worker_name: str, worker_ctx: Any) -> None:
    """Worker process body: recv unit, execute, send outcome, repeat.

    Outcomes are produced by :func:`repro.features.pipeline.execute_unit`,
    which never raises — every exception is already classified into the
    failure taxonomy inside the worker, so the only unreported deaths are
    real crashes (which the parent detects via the closed pipe).
    """
    from repro.features import pipeline  # deferred: parent imports us

    worker_fn = pipeline.resolve_worker(worker_name).fn  # repro: allow[fault-contract] — a misconfigured worker name is fatal; the parent reports the closed pipe as a crash
    while True:
        try:
            message = conn.recv()  # repro: allow[fault-contract] — non-EOF recv failure means a torn protocol; dying lets the parent classify the crash
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        index, item = message
        outcome = pipeline.execute_unit(worker_fn, item, index, worker_ctx)
        try:
            conn.send((index,) + outcome)
        except Exception as exc:  # repro: allow[broad-except] — unpicklable result; report, don't die
            conn.send(  # repro: allow[fault-contract] — last-resort report; a broken pipe here is a crash the parent detects
                (index, "fail", "unexpected",
                 f"worker result not transferable: {type(exc).__name__}: {exc}")
            )


class _Slot:
    """One worker process plus its pipe and in-flight unit, if any."""

    __slots__ = ("process", "conn", "index", "item", "deadline")

    def __init__(self, process: BaseProcess, conn: "PipeConn") -> None:
        self.process = process
        self.conn = conn
        self.index: Optional[int] = None
        self.item: Any = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.index is not None

    def clear(self) -> None:
        self.index = None
        self.item = None
        self.deadline = None


class ProcessWorkerPool:
    """Fan extraction units over killable, respawnable worker processes.

    Parameters
    ----------
    worker_name:
        Registry key resolved inside each worker (the callable itself is
        never pickled, so the pool works under both fork and spawn).
    worker_ctx:
        Picklable :class:`~repro.features.pipeline.WorkerContext` shipped
        to every worker (size guard, fault plan).
    max_workers:
        Number of concurrent worker processes.
    timeout:
        Optional per-sample wall-clock limit in seconds; a unit still
        running at its deadline is killed and reported as a timeout.
    """

    def __init__(
        self,
        worker_name: str,
        worker_ctx: Any,
        max_workers: int,
        timeout: Optional[float] = None,
    ) -> None:
        self.worker_name = worker_name
        self.worker_ctx = worker_ctx
        self.max_workers = max_workers
        self.timeout = timeout
        self._mp = pool_context()

    # -- lifecycle ----------------------------------------------------

    def _spawn(self) -> _Slot:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main,
            args=(child_conn, self.worker_name, self.worker_ctx),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end
        return _Slot(process, parent_conn)

    @staticmethod
    def _terminate(slot: _Slot, kill: bool) -> Optional[int]:
        """Stop a slot's process; returns its exit code when known."""
        return terminate_process(slot.process, slot.conn, kill)

    # -- execution ----------------------------------------------------

    def run(
        self,
        units: Sequence[Tuple[int, Any]],
        on_ok: Callable[[int, Any], None],
        on_fail: Callable[[int, str, str], None],
    ) -> None:
        """Execute every ``(index, item)`` unit, reporting via callbacks.

        Callbacks run in the parent (this) thread, in completion order;
        the caller re-establishes input order from the indices.
        """
        pending: Deque[Tuple[int, Any]] = deque(units)
        if not pending:
            return
        slots: List[_Slot] = [
            self._spawn() for _ in range(min(self.max_workers, len(pending)))
        ]
        try:
            while pending or any(slot.busy for slot in slots):
                self._dispatch(slots, pending, on_fail)
                self._collect(slots, pending, on_fail, on_ok)
                self._enforce_deadlines(slots, pending, on_fail)
        finally:
            for slot in slots:
                if slot.process.is_alive():
                    try:
                        slot.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
                self._terminate(slot, kill=False)

    def _dispatch(
        self,
        slots: List[_Slot],
        pending: "Deque[Tuple[int, Any]]",
        on_fail: Callable[[int, str, str], None],
    ) -> None:
        for position, slot in enumerate(slots):
            if slot.busy or not pending:
                continue
            index, item = pending.popleft()
            slot.index, slot.item = index, item
            if self.timeout is not None:
                slot.deadline = time.monotonic() + self.timeout
            try:
                slot.conn.send((index, item))
            except (BrokenPipeError, OSError):
                # Worker died between units; its replacement gets the unit.
                pending.appendleft((index, item))
                slot.clear()
                self._terminate(slot, kill=True)
                slots[position] = self._spawn()

    def _collect(
        self,
        slots: List[_Slot],
        pending: "Deque[Tuple[int, Any]]",
        on_fail: Callable[[int, str, str], None],
        on_ok: Callable[[int, Any], None],
    ) -> None:
        busy: "Dict[PipeConn, _Slot]" = {
            slot.conn: slot for slot in slots if slot.busy
        }
        if not busy:
            return
        for conn in mp_connection.wait(list(busy), timeout=_TICK_SECONDS):
            slot = busy[cast("PipeConn", conn)]
            try:
                message = slot.conn.recv()
            except (EOFError, OSError):
                self._replace_crashed(slots, slot, pending, on_fail)
                continue
            index, status, *payload = message
            if status == "ok":
                on_ok(index, payload[0])
            else:
                on_fail(index, payload[0], payload[1])
            slot.clear()

    def _enforce_deadlines(
        self,
        slots: List[_Slot],
        pending: "Deque[Tuple[int, Any]]",
        on_fail: Callable[[int, str, str], None],
    ) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for position, slot in enumerate(slots):
            index = slot.index
            if index is None or slot.deadline is None or now < slot.deadline:
                continue
            slot.clear()
            self._terminate(slot, kill=True)
            on_fail(
                index,
                "timeout",
                f"killed after exceeding the {self.timeout}s "
                "per-sample wall-clock limit",
            )
            if pending or any(s.busy for s in slots):
                slots[position] = self._spawn()

    def _replace_crashed(
        self,
        slots: List[_Slot],
        slot: _Slot,
        pending: "Deque[Tuple[int, Any]]",
        on_fail: Callable[[int, str, str], None],
    ) -> None:
        """A worker died without reporting: charge its in-flight unit."""
        index = slot.index
        assert index is not None  # only busy slots are collected
        slot.clear()
        exitcode = self._terminate(slot, kill=True)
        on_fail(
            index,
            "crash",
            f"worker process died without reporting (exit code {exitcode})",
        )
        position = slots.index(slot)
        if pending or any(s.busy for s in slots):
            slots[position] = self._spawn()
