"""Long-lived request workers: the serving half of ``repro.workers``.

Where :class:`~repro.workers.pool.ProcessWorkerPool` runs a finite batch
of units and exits, a :class:`RequestWorker` is a persistent replica: it
initializes once (typically loading a model from the registry), tells
the parent it is ready, then answers ``(request_id, payload)`` messages
until stopped.  The fleet dispatcher (:mod:`repro.serve.fleet`) owns a
set of these and multiplexes traffic over their pipes.

Wire protocol (parent's view):

* child → parent, once: ``("__ready__", None)`` after successful init,
  or ``("__init_error__", detail)`` if the factory raised;
* parent → child: ``(request_id, payload)``; ``None`` asks the child to
  exit cleanly;
* child → parent: ``(request_id, "ok", result)`` or
  ``(request_id, "fail", detail)`` — handler exceptions are reported,
  never fatal, so one poisonous request cannot take a replica down.

Worker code is resolved by *name* inside the child: the parent ships a
``"module.path:function"`` entrypoint string plus picklable keyword
arguments, and the child imports and calls the factory itself.  No
callable ever crosses the pipe (the pool-safety invariant), so request
workers behave identically under fork and spawn start methods.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.exceptions import WorkerError, WorkerStartupError
from repro.workers.pool import _TICK_SECONDS, pool_context, terminate_process

if TYPE_CHECKING:
    from multiprocessing.process import BaseProcess

    from repro.workers.pool import PipeConn

#: request_id of the readiness announcement (never a real request id).
READY = "__ready__"

#: request_id of an initialization-failure report.
INIT_ERROR = "__init_error__"

#: Default seconds a worker gets to initialize before start() gives up.
DEFAULT_START_TIMEOUT = 60.0


def resolve_entrypoint(entrypoint: str) -> Callable[..., Any]:
    """Import and return the factory named by ``"module.path:function"``.

    Runs inside the child (and in tests); the returned factory is called
    with the worker's init kwargs and must return the request handler —
    a callable taking one payload and returning a picklable result.
    """
    module_name, _, attr = entrypoint.partition(":")
    if not module_name or not attr:
        raise WorkerError(
            f"entrypoint {entrypoint!r} is not of the form 'module:function'"
        )
    module = importlib.import_module(module_name)
    try:
        factory = getattr(module, attr)
    except AttributeError:
        raise WorkerError(
            f"entrypoint {entrypoint!r}: module {module_name!r} has no "
            f"attribute {attr!r}"
        ) from None
    if not callable(factory):
        raise WorkerError(f"entrypoint {entrypoint!r} is not callable")
    return factory


@dataclass(frozen=True)
class WorkerReply:
    """One parsed child → parent message."""

    request_id: Any
    ok: bool
    value: Any

    @classmethod
    def from_message(cls, message: Tuple[Any, ...]) -> "WorkerReply":
        request_id, status, value = message
        return cls(request_id=request_id, ok=(status == "ok"), value=value)


def _request_worker_main(
    conn: "PipeConn", entrypoint: str, init_kwargs: Dict[str, Any]
) -> None:
    """Child process body: init once, announce, then serve requests."""
    try:
        handler = resolve_entrypoint(entrypoint)(**init_kwargs)
    except BaseException as exc:  # repro: allow[broad-except] — init failure must reach the parent
        try:
            conn.send((INIT_ERROR, "fail", f"{type(exc).__name__}: {exc}"))  # repro: allow[fault-contract] — the INIT_ERROR report itself; OSError guarded, anything else is unreportable
        except OSError:
            pass
        return
    try:
        conn.send((READY, "ok", None))  # repro: allow[fault-contract] — constant payload; only OSError can occur and it is caught
    except OSError:  # parent died between spawn and ready; exit quietly
        return
    while True:
        try:
            message = conn.recv()  # repro: allow[fault-contract] — non-EOF recv failure means a torn protocol; dying lets the parent classify the crash
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        request_id, payload = message
        try:
            result = handler(payload)
            reply = (request_id, "ok", result)
        except Exception as exc:  # repro: allow[broad-except] — handler faults are per-request data
            reply = (request_id, "fail", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except Exception as exc:  # repro: allow[broad-except] — unpicklable result; report, don't die
            conn.send(  # repro: allow[fault-contract] — last-resort report; a broken pipe here is a crash the parent detects
                (request_id, "fail",
                 f"worker result not transferable: {type(exc).__name__}: {exc}")
            )


class RequestWorker:
    """Parent-side handle on one persistent worker process.

    The handle is deliberately thin: it owns process lifecycle (spawn,
    readiness, SIGKILL, respawn-with-counter) and exposes the raw pipe
    via :attr:`conn` so a dispatcher can multiplex many workers with
    ``multiprocessing.connection.wait``.  Routing policy, deadlines and
    retries live in the dispatcher, not here.
    """

    def __init__(
        self,
        name: str,
        entrypoint: str,
        init_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.entrypoint = entrypoint
        self.init_kwargs = dict(init_kwargs or {})
        self.respawns = 0
        self._mp = pool_context()
        self._process: Optional["BaseProcess"] = None
        self._conn: Optional["PipeConn"] = None
        self._ready = False

    # -- introspection ------------------------------------------------

    @property
    def conn(self) -> Optional["PipeConn"]:
        """The parent end of the pipe (``None`` before :meth:`start`)."""
        return self._conn

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    @property
    def ready(self) -> bool:
        """True once the child announced successful initialization."""
        return self._ready

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    # -- lifecycle ----------------------------------------------------

    def start(self, wait_ready: Optional[float] = DEFAULT_START_TIMEOUT) -> None:
        """Spawn the child; optionally block until it announces ready.

        With ``wait_ready=None`` the call returns immediately and the
        caller collects the readiness message from :attr:`conn` itself
        (how the fleet respawns replicas without stalling the dispatch
        loop).  A child that reports an init error — or misses the
        deadline — raises :class:`WorkerStartupError`.
        """
        if self._process is not None:
            raise WorkerError(f"worker {self.name!r} is already started")
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_request_worker_main,
            args=(child_conn, self.entrypoint, self.init_kwargs),
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its end
        self._process = process
        self._conn = parent_conn
        self._ready = False
        if wait_ready is not None:
            self.wait_ready(wait_ready)

    def wait_ready(self, timeout: float) -> None:
        """Block until the readiness announcement (or fail loudly)."""
        if self._ready:
            return
        conn = self._conn
        if conn is None:
            raise WorkerError(f"worker {self.name!r} is not started")
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.stop(kill=True)
                raise WorkerStartupError(
                    self.name, f"not ready within {timeout}s"
                )
            if conn.poll(min(remaining, _TICK_SECONDS)):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    exitcode = self.stop(kill=True)
                    raise WorkerStartupError(
                        self.name,
                        f"process died during init (exit code {exitcode})",
                    ) from None
                self.observe_ready(message)
                if self._ready:
                    return

    def observe_ready(self, message: Tuple[Any, ...]) -> None:
        """Apply a readiness/init-error message read off :attr:`conn`.

        Split out from :meth:`wait_ready` so a dispatcher that already
        multiplexes the pipe can feed the message through here instead.
        """
        request_id = message[0]
        if request_id == READY:
            self._ready = True
        elif request_id == INIT_ERROR:
            self.stop(kill=True)
            raise WorkerStartupError(self.name, str(message[2]))
        else:
            raise WorkerError(
                f"worker {self.name!r} sent {request_id!r} before ready"
            )

    def send(self, request_id: Any, payload: Any) -> None:
        """Ship one request down the pipe (raises if the worker is down)."""
        if self._conn is None:
            raise WorkerError(f"worker {self.name!r} is not started")
        self._conn.send((request_id, payload))

    def stop(self, kill: bool = False) -> Optional[int]:
        """Stop the child (politely unless ``kill``); returns exit code."""
        process, conn = self._process, self._conn
        if process is None or conn is None:
            return None
        if not kill and process.is_alive():
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        exitcode = terminate_process(process, conn, kill=kill)
        self._process = None
        self._conn = None
        self._ready = False
        return exitcode

    def respawn(self, kill: bool = True,
                wait_ready: Optional[float] = None) -> None:
        """Replace the child in place, bumping the respawn counter."""
        self.stop(kill=kill)
        self.respawns += 1
        self.start(wait_ready=wait_ready)
