"""Supervised worker processes: the shared fault-model for parallel work.

``concurrent.futures`` pools cannot express the fault model this project
needs: a thread cannot be cancelled at all, and ``ProcessPoolExecutor``
cannot kill *one* hung worker without tearing down the whole executor.
This package owns the supervised-process machinery both halves of the
system run on:

* :mod:`repro.workers.pool` — the batch-mode
  :class:`~repro.workers.pool.ProcessWorkerPool` (pipe transport,
  per-unit wall-clock deadline with SIGKILL+respawn, crash detection
  via pipe EOF).  The extraction service
  (:mod:`repro.features.pipeline`) runs on it unchanged.
* :mod:`repro.workers.request` — the long-lived
  :class:`~repro.workers.request.RequestWorker` mode: a persistent
  worker that initializes once (e.g. loads a model replica from the
  registry), announces readiness, then answers
  ``(request_id, payload) -> result`` messages until told to stop.
  The serving fleet (:mod:`repro.serve.fleet`) routes traffic over a
  set of these.

Both modes resolve worker code by *name* inside the child (a registry
key for the pool, a ``module:function`` entrypoint for request
workers), so no callable ever crosses a pipe — the pool-safety
invariant that keeps fork and spawn platforms equivalent.
"""

from repro.workers.pool import ProcessWorkerPool
from repro.workers.request import (
    RequestWorker,
    WorkerReply,
    resolve_entrypoint,
)

__all__ = [
    "ProcessWorkerPool",
    "RequestWorker",
    "WorkerReply",
    "resolve_entrypoint",
]
