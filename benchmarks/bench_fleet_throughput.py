"""Serving fleet: multi-process throughput vs the single-process service.

Engineering benchmark behind the fleet dispatcher (``repro.serve.fleet``).
A single-process service is bounded by one interpreter no matter how
well it batches; the fleet fans concurrent requests over N long-lived
model-replica workers (least-loaded routing, per-worker batching).  This
bench pushes one corpus through three paths —

1. **direct** — ``InferenceEngine.classify_text`` in-process, no service
   machinery at all (the floor any service overhead is measured against);
2. **single** — the ``--workers 0`` service: one engine behind one
   coalescing ``MicroBatcher``, driven at the same concurrency;
3. **fleet**  — a ``FleetDispatcher`` over N worker processes, same
   concurrency, same corpus;

— *verifies all three produce identical labels*, and persists the
measurement to ``output/BENCH_fleet.json``.

The fleet's win is real parallelism across cores, so it only shows on a
multi-core machine; the artifact records ``cpu_count`` and the honest
``fleet_faster`` verdict for the machine that ran it.  On a single core
the IPC tax makes the fleet *slower* — recorded just as honestly.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_fleet_throughput.py \
        --corpus 48 --workers 2 --concurrency 8

or via pytest (reduced scale): ``pytest benchmarks/bench_fleet_throughput.py``.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import threading
import time
from typing import List, Tuple

from repro.serve import FleetDispatcher, MicroBatcher

from benchmarks.bench_common import save_result
from benchmarks.bench_serve_throughput import _smoke_corpus, _train_engine_pair


def _drain_concurrently(submit, samples: List[Tuple[str, str]],
                        concurrency: int) -> List:
    """``concurrency`` threads drain a shared work list through ``submit``."""
    results = [None] * len(samples)
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(samples):
                    return
                cursor["next"] = index + 1
            name, text = samples[index]
            results[index] = submit(text, name=name, timeout=120.0)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def run_bench(
    corpus: int = 48,
    workers: int = 2,
    concurrency: int = 8,
    max_batch_size: int = 8,
    repeats: int = 3,
    seed: int = 3,
) -> dict:
    samples = _smoke_corpus(corpus, seed + 1)

    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp_root:
        direct_engine, service_engine = _train_engine_pair(tmp_root, seed)

        # Floor: the engine alone, no service machinery.
        direct = [
            direct_engine.classify_text(text, name=name)
            for name, text in samples
        ]

        # Single-process service at its best: coalescing enabled, same
        # offered concurrency as the fleet.  Best of ``repeats`` runs.
        single_seconds = float("inf")
        with MicroBatcher(service_engine, max_batch_size=max_batch_size,
                          max_wait_ms=20.0) as batcher:
            for _ in range(repeats):
                started = time.perf_counter()
                single = _drain_concurrently(
                    batcher.submit, samples, concurrency
                )
                single_seconds = min(
                    single_seconds, time.perf_counter() - started
                )

        # The fleet: worker start-up (model loads) happens before the
        # clock starts — steady-state throughput is the claim.
        fleet_seconds = float("inf")
        dispatcher = FleetDispatcher(
            tmp_root, "bench", num_workers=workers,
            max_batch_size=max_batch_size, cache_size=0,
        )
        with dispatcher:
            for _ in range(repeats):
                started = time.perf_counter()
                fleet = _drain_concurrently(
                    dispatcher.submit, samples, concurrency
                )
                fleet_seconds = min(
                    fleet_seconds, time.perf_counter() - started
                )
            worker_stats = dispatcher.fleet_snapshot()["workers"]

    # Equivalence before timing claims: identical labels on all three
    # paths (the fleet replicas load the same archive the in-process
    # engines do, and a label is an argmax — nothing to round).
    assert all(r is not None and r.ok for r in direct)
    assert all(r is not None and r.ok for r in single)
    assert all(r is not None and r.ok for r in fleet)
    labels = [r.label for r in direct]
    assert [r.label for r in single] == labels
    assert [r.label for r in fleet] == labels
    assert [r.family for r in fleet] == [r.family for r in direct]

    payload = {
        "corpus_size": len(samples),
        "workers": workers,
        "concurrency": concurrency,
        "max_batch_size": max_batch_size,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "single_seconds": round(single_seconds, 3),
        "fleet_seconds": round(fleet_seconds, 3),
        "single_rps": round(len(samples) / single_seconds, 2),
        "fleet_rps": round(len(samples) / fleet_seconds, 2),
        "speedup": round(single_seconds / fleet_seconds, 3),
        "fleet_faster": fleet_seconds < single_seconds,
        "labels_equal": True,
        "per_worker_served": [w["served"] for w in worker_stats],
    }
    path = save_result("BENCH_fleet", payload)
    print(f"single-process {single_seconds:7.2f}s "
          f"({payload['single_rps']} req/s)")
    print(f"fleet ({workers} workers) {fleet_seconds:7.2f}s "
          f"({payload['fleet_rps']} req/s, concurrency={concurrency})")
    print(f"speedup {payload['speedup']}x on {payload['cpu_count']} cores "
          f"— labels identical; per-worker served "
          f"{payload['per_worker_served']}")
    print(f"written to {path}")
    return payload


def test_fleet_matches_single_process_labels():
    """CI smoke: fleet serving is label-equivalent; timings recorded.

    The throughput claim is only asserted on a multi-core machine — on
    one core the fleet pays the IPC tax with nothing to parallelize
    over, and pretending otherwise would bake a flake into CI.
    """
    payload = run_bench(corpus=24, workers=2, concurrency=6,
                        max_batch_size=6, repeats=2)
    assert payload["labels_equal"]
    assert sum(payload["per_worker_served"]) >= payload["corpus_size"]
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        assert payload["fleet_faster"], (
            f"fleet slower than single-process on {cpus} cores: "
            f"{payload['fleet_seconds']}s vs {payload['single_seconds']}s"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus", type=int, default=48)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--max-batch-size", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()
    run_bench(
        corpus=args.corpus,
        workers=args.workers,
        concurrency=args.concurrency,
        max_batch_size=args.max_batch_size,
        repeats=args.repeats,
        seed=args.seed,
    )


if __name__ == "__main__":
    main()
