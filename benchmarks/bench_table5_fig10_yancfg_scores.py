"""Table V & Figure 10 — per-family cross-validation scores on YANCFG.

The paper observes lower overall scores on YANCFG than MSKCFG (noisy
AV-vote labels), with the small confusable families — Ldpinch, Lmir,
Rbot, Sdbot — markedly worse (F1 0.57-0.78) while nine families score
above 0.9.  The shape to hold here: overall accuracy clearly below the
MSKCFG run, and the weak quartet's mean F1 clearly below the strong
families' mean F1.
"""

import numpy as np

from benchmarks.bench_common import report_to_rows, save_result

PAPER_TABLE5 = {
    "Bagle": 0.904762,
    "Benign": 0.958525,
    "Bifrose": 0.915888,
    "Hupigon": 0.940454,
    "Koobface": 1.000000,
    "Ldpinch": 0.590164,
    "Lmir": 0.779220,
    "Rbot": 0.697095,
    "Sdbot": 0.575342,
    "Swizzor": 0.995708,
    "Vundo": 0.986351,
    "Zbot": 0.939314,
    "Zlob": 0.979592,
}

WEAK_FAMILIES = ("Ldpinch", "Lmir", "Rbot", "Sdbot")


def test_table5_fig10_yancfg_cv_scores(benchmark, yancfg_bench, yancfg_cv):
    report = yancfg_cv.averaged_report

    print("\nTable V / Figure 10 — MAGIC on YANCFG (5-fold CV, averaged):")
    print(report.format_table())
    print("\nPaper-reported F1 for comparison:")
    f1_by_family = {n: s.f1 for n, s in report.scores_by_family().items()}
    for family, paper_f1 in PAPER_TABLE5.items():
        print(f"  {family:10s} paper={paper_f1:.4f}  "
              f"measured={f1_by_family[family]:.4f}")

    weak = [f1_by_family[f] for f in WEAK_FAMILIES]
    strong = [
        f1 for name, f1 in f1_by_family.items() if name not in WEAK_FAMILIES
    ]
    print(f"\nweak-family mean F1  : {np.mean(weak):.3f}")
    print(f"strong-family mean F1: {np.mean(strong):.3f}")

    # Shape assertions.
    assert np.mean(weak) < np.mean(strong), (
        "the confusable IRC-bot/stealer families must score worse"
    )
    assert np.mean(strong) > 0.75

    benchmark(lambda: yancfg_bench.family_counts())

    save_result("table5_fig10_yancfg_scores", {
        "cv_folds": len(yancfg_cv.fold_reports),
        "accuracy": report.accuracy,
        "log_loss": report.log_loss,
        "macro_f1": report.macro_f1,
        "weak_family_mean_f1": float(np.mean(weak)),
        "strong_family_mean_f1": float(np.mean(strong)),
        "per_family": report_to_rows(yancfg_cv),
        "paper_f1": PAPER_TABLE5,
    })
