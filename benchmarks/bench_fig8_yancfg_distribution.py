"""Figure 8 — malware family distribution in the YANCFG dataset.

Regenerates the 13-family histogram (Hupigon dominating, Bagle/Ldpinch/
Lmir among the smallest), matching the shape of the paper's Figure 8.
"""

from repro.datasets import YANCFG_FAMILY_COUNTS

from benchmarks.bench_common import save_result


def test_fig8_family_distribution(benchmark, yancfg_bench):
    counts = benchmark(yancfg_bench.family_counts)

    print("\nFigure 8 — YANCFG family distribution (synthetic corpus):")
    for family, count in counts.items():
        print(f"  {family:10s} {count:4d} {'#' * count}")

    real = YANCFG_FAMILY_COUNTS
    assert max(counts, key=counts.get) == "Hupigon"
    # The paper's small families stay small here.
    for small in ("Bagle", "Ldpinch", "Lmir"):
        assert counts[small] <= counts["Hupigon"] / 3

    save_result("fig8_yancfg_distribution", {
        "synthetic_counts": counts,
        "paper_counts": real,
        "total_synthetic": sum(counts.values()),
        "total_paper": sum(real.values()),
    })
