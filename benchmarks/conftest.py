"""Session-scoped fixtures shared by the experiment benchmarks.

The two cross-validation trainings (MSKCFG and YANCFG) are the expensive
parts of the evaluation; they run once per session here and are consumed
by the table/figure benches that report on them.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_mskcfg_dataset, generate_yancfg_dataset

from benchmarks import bench_common


@pytest.fixture(scope="session")
def mskcfg_bench():
    """The benchmark-scale synthetic MSKCFG corpus."""
    return generate_mskcfg_dataset(
        total=bench_common.MSKCFG_TOTAL,
        seed=bench_common.SEED,
        minimum_per_family=bench_common.MIN_PER_FAMILY,
    )


@pytest.fixture(scope="session")
def yancfg_bench():
    """The benchmark-scale synthetic YANCFG corpus."""
    return generate_yancfg_dataset(
        total=bench_common.YANCFG_TOTAL,
        seed=bench_common.SEED,
        minimum_per_family=bench_common.MIN_PER_FAMILY,
    )


@pytest.fixture(scope="session")
def mskcfg_cv(mskcfg_bench):
    """5-fold CV of the best model on MSKCFG (Tables III/IV, Figure 9)."""
    return bench_common.run_magic_cv(mskcfg_bench)


@pytest.fixture(scope="session")
def yancfg_cv(yancfg_bench):
    """5-fold CV of the best model on YANCFG (Table V, Figures 10/11)."""
    return bench_common.run_magic_cv(yancfg_bench)
