"""Ablation A2 — degree-normalized vs raw propagation (DESIGN.md §5).

Equation 1 row-normalizes the augmented adjacency (``D̂^-1 Â``) before
propagating attributes.  Without the normalization, high-out-degree
dispatch blocks inject their attributes at full weight into many
neighbours, activations grow with vertex degree, and tanh saturates.
This ablation trains the best architecture with and without
normalization under identical conditions.
"""

import dataclasses

from repro.core.dgcnn import build_model
from repro.train.cross_validation import cross_validate
from repro.train.trainer import TrainingConfig

from benchmarks.bench_common import best_model_config, save_result


def test_ablation_degree_normalization(benchmark, mskcfg_bench):
    subset = mskcfg_bench.subset(list(range(0, len(mskcfg_bench), 2)))

    def run_both():
        results = {}
        for normalized in (True, False):
            base = dataclasses.replace(
                best_model_config(subset.num_classes),
                normalize_propagation=normalized,
            )

            def factory(fold, config=base):
                return build_model(dataclasses.replace(config, seed=fold))

            key = "normalized" if normalized else "raw_adjacency"
            results[key] = cross_validate(
                factory,
                subset,
                TrainingConfig(epochs=12, batch_size=10,
                               learning_rate=2e-3, seed=3),
                n_splits=3,
                seed=3,
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print("\nAblation — propagation normalization (3-fold CV, 12 epochs):")
    print(f"{'Propagation':18s}{'ValLoss':>9s}{'Accuracy':>10s}{'MacroF1':>9s}")
    for key, result in results.items():
        print(f"{key:18s}{result.score:9.4f}{result.accuracy:10.3f}"
              f"{result.averaged_report.macro_f1:9.3f}")

    # Shape: both learn; normalization is not worse (the paper's design).
    assert results["normalized"].accuracy > 0.5
    assert results["normalized"].score <= results["raw_adjacency"].score * 1.25

    save_result("ablation_normalization", {
        key: {
            "score": result.score,
            "accuracy": result.accuracy,
            "macro_f1": result.averaged_report.macro_f1,
        }
        for key, result in results.items()
    })
