"""Section V-E — execution overhead of MAGIC.

The paper reports (commodity desktop + one GTX 1080 Ti):

    ACFG construction:   ~5.8 s per sample (IDA Pro in the loop)
    classifier training: 29.69 +/- 4.90 ms per instance
    prediction:          11.33 +/- 1.35 ms per instance

and concludes MAGIC "is actionable for online malware classification".
Ours runs on CPU with a from-scratch engine, so absolute numbers differ;
the shape that must hold is feature extraction >> training per instance
> prediction per instance, each bounded enough for online use.
"""

from repro.core.magic import Magic
from repro.datasets import generate_mskcfg_listings
from repro.features.pipeline import AcfgPipeline
from repro.train.trainer import TrainingConfig

from benchmarks.bench_common import best_model_config, save_result


def test_overhead_breakdown(benchmark, mskcfg_bench):
    magic = Magic(best_model_config(mskcfg_bench.num_classes),
                  mskcfg_bench.family_names)

    # Train briefly so prediction runs on a fitted system.
    train, _ = mskcfg_bench.stratified_split(0.5, seed=0)
    history = magic.fit(
        train.acfgs,
        training_config=TrainingConfig(epochs=2, batch_size=10, seed=0),
    )
    train_ms = history.train_seconds_per_instance * 1000

    listings = [text for _, text, _ in generate_mskcfg_listings(total=18, seed=77)]
    timing = magic.measure_timing(listings, repeats=2)
    feature_ms = timing.feature_seconds_per_sample * 1000
    predict_ms = timing.predict_seconds_per_sample * 1000

    print("\nSection V-E — execution overhead per instance:")
    print(f"  ACFG construction : {feature_ms:8.2f} ms  (paper: ~5800 ms w/ IDA)")
    print(f"  training          : {train_ms:8.2f} ms  (paper: 29.69 ms on GPU)")
    print(f"  prediction        : {predict_ms:8.2f} ms  (paper: 11.33 ms on GPU)")

    # Shape: prediction is cheaper than training per instance; everything
    # is fast enough for online classification (well under a second).
    assert predict_ms < train_ms * 3
    assert predict_ms < 1000

    # The benchmarked unit: single-sample prediction latency.
    acfg = magic.acfg_from_asm(listings[0])
    benchmark(lambda: magic.predict_proba([acfg]))

    save_result("overhead", {
        "feature_ms_per_sample": feature_ms,
        "train_ms_per_instance": train_ms,
        "predict_ms_per_instance": predict_ms,
        "paper": {
            "feature_ms_per_sample": 5800,
            "train_ms_per_instance": 29.69,
            "predict_ms_per_instance": 11.33,
        },
    })


def test_journal_overhead(tmp_path):
    """Checkpoint journaling must cost <5% on the clean extraction path.

    The journal exists for 17-hour batch jobs; it earns its keep only if
    the per-sample cost of its JSON line + flush is noise next to the
    CFG construction it checkpoints.  Timed as the best of 3 runs each
    so scheduler hiccups do not dominate.
    """
    samples = list(generate_mskcfg_listings(total=40, seed=11))
    repeats = 3

    def run(journal_path):
        pipeline = AcfgPipeline(journal_path=journal_path)
        report = pipeline.extract_from_texts(samples)
        assert report.num_failed == 0
        return report.elapsed_seconds

    run(None)  # warm caches so neither side pays first-run costs
    plain_times, journaled_times = [], []
    for i in range(repeats):  # interleaved: drift hits both sides alike
        plain_times.append(run(None))
        journaled_times.append(run(str(tmp_path / f"journal-{i}.jsonl")))
    plain = min(plain_times)
    journaled = min(journaled_times)

    overhead = journaled / plain - 1.0
    plain_ms = plain / len(samples) * 1000
    journaled_ms = journaled / len(samples) * 1000
    print("\nJournaling overhead on the clean extraction path:")
    print(f"  without journal : {plain_ms:8.3f} ms/sample")
    print(f"  with journal    : {journaled_ms:8.3f} ms/sample")
    print(f"  overhead        : {overhead * 100:8.2f} %")

    assert overhead < 0.05, (
        f"journaling costs {overhead * 100:.1f}% per sample on the clean "
        "path; the <5% budget is blown"
    )

    save_result("journal_overhead", {
        "plain_ms_per_sample": plain_ms,
        "journaled_ms_per_sample": journaled_ms,
        "overhead_fraction": overhead,
        "budget_fraction": 0.05,
    })
