"""Serving layer: micro-batched throughput vs one-request-at-a-time.

Engineering benchmark behind the online classification service
(``repro.serve``).  The batched forward path (PR 1) makes a 32-graph
``GraphBatch`` barely more expensive than a single graph, but an online
service receives requests one at a time; the ``MicroBatcher`` coalesces
concurrent requests so they share one forward pass.  This bench pushes
the same corpus through the service twice — sequential single-request
submits (every batch has size 1) and concurrent submits under a
coalescing window — *verifies both paths produce identical labels*, and
persists the measurement to ``output/BENCH_serve.json``.

The win comes from amortizing per-forward overhead across the batch, so
it grows with concurrency; the artifact records ``cpu_count`` and the
honest ``batched_faster`` verdict for the machine that ran it.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_serve_throughput.py \
        --corpus 48 --concurrency 8

or via pytest (reduced scale): ``pytest benchmarks/bench_serve_throughput.py``.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from typing import List, Tuple

import dataclasses

from repro.core import Magic, ModelConfig
from repro.datasets import generate_mskcfg_dataset
from repro.datasets.mskcfg import MSKCFG_PROFILES
from repro.datasets.synthetic_asm import generate_family_listing
from repro.serve import InferenceEngine, MicroBatcher, publish
from repro.train import TrainingConfig

from benchmarks.bench_common import save_result


def _smoke_corpus(corpus: int, seed: int) -> List[Tuple[str, str]]:
    """Small listings cycling through the nine family profiles.

    The bench isolates *service* overhead (per-forward fixed cost that
    coalescing amortizes), so the corpus uses shrunken profiles: with
    full-size mskcfg listings, CFG extraction — identical on both paths —
    swamps the measurement.
    """
    profiles = [
        dataclasses.replace(
            profile,
            num_functions=(1, 2),
            blocks_per_function=(2, 4),
            block_length=(2, 4),
            dispatch_probability=0.0,
        )
        for profile in MSKCFG_PROFILES.values()
    ]
    samples = []
    for index in range(corpus):
        profile = profiles[index % len(profiles)]
        samples.append((
            f"{profile.name}_{index:05d}",
            generate_family_listing(profile, seed + index),
        ))
    return samples


def _train_engine_pair(tmp_root: str, seed: int) -> Tuple[InferenceEngine, InferenceEngine]:
    """One published archive, two independent engines (no shared state)."""
    dataset = generate_mskcfg_dataset(total=36, seed=seed, minimum_per_family=4)
    magic = Magic(
        ModelConfig(
            num_attributes=dataset.acfgs[0].num_attributes,
            num_classes=dataset.num_classes,
            pooling="sort_weighted",
            graph_conv_sizes=(32, 32),
            sort_k=10,
            hidden_size=32,
            dropout=0.0,
            seed=seed,
        ),
        dataset.family_names,
    )
    magic.fit(dataset.acfgs,
              training_config=TrainingConfig(epochs=2, batch_size=8, seed=seed))
    publish(magic, tmp_root, "bench")
    # Caches off: every request must pay extraction + forward, so the
    # timing difference is purely the coalescing.
    return (
        InferenceEngine.from_registry(tmp_root, "bench", cache_size=0),
        InferenceEngine.from_registry(tmp_root, "bench", cache_size=0),
    )


def _submit_concurrently(
    batcher: MicroBatcher, samples: List[Tuple[str, str]], concurrency: int
) -> List:
    """``concurrency`` submitter threads drain a shared work list."""
    results = [None] * len(samples)
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(samples):
                    return
                cursor["next"] = index + 1
            name, text = samples[index]
            results[index] = batcher.submit(text, name=name, timeout=120.0)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def run_bench(
    corpus: int = 48,
    concurrency: int = 8,
    max_batch_size: int = 8,
    max_wait_ms: float = 20.0,
    repeats: int = 3,
    seed: int = 3,
) -> dict:
    import tempfile

    samples = _smoke_corpus(corpus, seed + 1)

    with tempfile.TemporaryDirectory(prefix="bench-registry-") as tmp_root:
        single_engine, batched_engine = _train_engine_pair(tmp_root, seed)

        # Baseline: the service with coalescing disabled — sequential
        # submits, every forward carries exactly one graph.  Best of
        # ``repeats`` runs, so scheduler noise cannot flip the verdict.
        singles_seconds = float("inf")
        with MicroBatcher(single_engine, max_batch_size=1,
                          max_wait_ms=0.0) as batcher:
            for _ in range(repeats):
                started = time.perf_counter()
                singles = [
                    batcher.submit(text, name=name, timeout=120.0)
                    for name, text in samples
                ]
                singles_seconds = min(
                    singles_seconds, time.perf_counter() - started
                )

        # Micro-batched: concurrent submitters, coalescing window open.
        batched_seconds = float("inf")
        with MicroBatcher(batched_engine, max_batch_size=max_batch_size,
                          max_wait_ms=max_wait_ms) as batcher:
            for _ in range(repeats):
                started = time.perf_counter()
                batched = _submit_concurrently(batcher, samples, concurrency)
                batched_seconds = min(
                    batched_seconds, time.perf_counter() - started
                )

    # Equivalence before timing claims: identical labels either way.
    assert all(r is not None and r.ok for r in singles)
    assert all(r is not None and r.ok for r in batched)
    assert [r.label for r in singles] == [r.label for r in batched]

    histogram = batched_engine.metrics.snapshot()["batches"]["size_histogram"]
    payload = {
        "corpus_size": len(samples),
        "concurrency": concurrency,
        "max_batch_size": max_batch_size,
        "max_wait_ms": max_wait_ms,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "singles_seconds": round(singles_seconds, 3),
        "batched_seconds": round(batched_seconds, 3),
        "singles_rps": round(len(samples) / singles_seconds, 2),
        "batched_rps": round(len(samples) / batched_seconds, 2),
        "speedup": round(singles_seconds / batched_seconds, 3),
        "batched_faster": batched_seconds < singles_seconds,
        "labels_equal": True,
        "batch_size_histogram": histogram,
    }
    path = save_result("BENCH_serve", payload)
    print(f"single-request {singles_seconds:7.2f}s "
          f"({payload['singles_rps']} req/s)")
    print(f"micro-batched  {batched_seconds:7.2f}s "
          f"({payload['batched_rps']} req/s, concurrency={concurrency})")
    print(f"speedup {payload['speedup']}x — labels identical; "
          f"batch sizes {histogram}")
    print(f"written to {path}")
    return payload


def test_micro_batching_matches_single_requests():
    """CI smoke: coalesced serving is label-equivalent; timings recorded.

    ``max_batch_size`` must not exceed the offered concurrency: the
    collector holds its window open until the batch fills or the
    deadline passes, so a cap the clients can never reach turns
    ``max_wait_ms`` into a pure latency tax on every batch.
    """
    payload = run_bench(corpus=24, concurrency=6, max_batch_size=6,
                        max_wait_ms=20.0)
    assert payload["labels_equal"]
    # Coalescing actually happened (the histogram has a multi-request batch).
    assert max(int(size) for size in payload["batch_size_histogram"]) >= 2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus", type=int, default=48)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--max-batch-size", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=20.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()
    run_bench(
        corpus=args.corpus,
        concurrency=args.concurrency,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        repeats=args.repeats,
        seed=args.seed,
    )


if __name__ == "__main__":
    main()
