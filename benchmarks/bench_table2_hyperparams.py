"""Table II — hyper-parameter grid and best-model selection.

The paper exhaustively 5-fold-cross-validates 208 settings (64 adaptive,
96 sort+Conv1D, 48 sort+WeightedVertices) and selects adaptive pooling
as the best architecture on both datasets.  At benchmark scale we sweep
one representative per (architecture, pooling-ratio) cell — 6 settings —
with the paper's selection criterion (minimum fold-averaged validation
loss), verifying the grid structure matches Table II exactly and
recording the winner.
"""

from repro.train.hyperparameter import GridSearch, reduced_table2_grid, table2_grid

from benchmarks.bench_common import save_result


def test_table2_grid_search(benchmark, mskcfg_bench):
    grid = table2_grid()
    by_arch = {}
    for setting in grid:
        by_arch[setting.pooling] = by_arch.get(setting.pooling, 0) + 1
    assert len(grid) == 208
    assert by_arch == {"adaptive": 64, "sort_conv1d": 96, "sort_weighted": 48}

    # Smaller sub-corpus keeps the 6-setting sweep fast.
    subset_indices = list(range(0, len(mskcfg_bench), 2))
    subset = mskcfg_bench.subset(subset_indices)

    settings = reduced_table2_grid()
    search = GridSearch(subset, epochs=12, n_splits=3, hidden_size=32, seed=3)

    result = benchmark.pedantic(
        lambda: search.run(settings), rounds=1, iterations=1
    )

    print("\nTable II — reduced grid search ranking "
          f"({len(settings)} of 208 settings, 3-fold CV, 12 epochs):")
    for rank, entry in enumerate(result.ranking(), start=1):
        print(f"  {rank}. score={entry.score:.4f} "
              f"accuracy={entry.result.accuracy:.3f}  "
              f"{entry.setting.describe()}")

    best = result.best
    print(f"\nSelected: {best.setting.describe()}")
    print("Paper best models: adaptive pooling on both MSKCFG (ratio 0.64,"
          " conv (128,64,32,32)) and YANCFG (ratio 0.2, conv (32,32,32,32)).")

    save_result("table2_hyperparams", {
        "full_grid_size": len(grid),
        "grid_by_architecture": by_arch,
        "swept_settings": [s.describe() for s in settings],
        "ranking": [
            {
                "setting": e.setting.describe(),
                "score": e.score,
                "accuracy": e.result.accuracy,
            }
            for e in result.ranking()
        ],
        "best": best.setting.describe(),
        "paper_best": {
            "MSKCFG": "adaptive pooling, ratio 0.64, conv (128,64,32,32), "
                      "16 2D channels, dropout 0.1, batch 10, L2 1e-4",
            "YANCFG": "adaptive pooling, ratio 0.2, conv (32,32,32,32), "
                      "16 2D channels, dropout 0.5, batch 40, L2 5e-4",
        },
    })
