"""Table I — block-level attribute extraction.

Table I is the attribute *definition* table; the measurable artifact is
the extraction itself.  This bench verifies the 11 attributes are the
ones the paper lists and measures extraction throughput over the
benchmark corpus (the paper reports 5.8 s/sample with IDA Pro in the
loop; ours is pure parsing + graph work).
"""

from repro.features import ACFG, attribute_names
from repro.datasets import generate_mskcfg_listings
from repro.cfg import build_cfg_from_text

from benchmarks.bench_common import save_result

EXPECTED_ATTRIBUTES = [
    "numeric_constants",
    "transfer_instructions",
    "call_instructions",
    "arithmetic_instructions",
    "compare_instructions",
    "mov_instructions",
    "termination_instructions",
    "data_declaration_instructions",
    "total_instructions",
    "offspring",
    "vertex_instructions",
]


def test_table1_attribute_extraction(benchmark):
    names = attribute_names()
    assert names[:11] == EXPECTED_ATTRIBUTES

    listings = generate_mskcfg_listings(total=27, seed=0, minimum_per_family=3)
    cfgs = [build_cfg_from_text(text, name=name) for name, text, _ in listings]

    def extract_all():
        return [ACFG.from_cfg(cfg) for cfg in cfgs]

    acfgs = benchmark(extract_all)
    per_sample = (
        benchmark.stats.stats.mean / len(cfgs) if benchmark.stats else None
    )
    save_result("table1_attributes", {
        "attributes": names,
        "samples": len(cfgs),
        "mean_vertices": sum(a.num_vertices for a in acfgs) / len(acfgs),
        "extract_seconds_per_sample": per_sample,
        "paper_reference": "Table I lists 11 block attributes; "
                           "extraction averaged 5.8 s/sample with IDA Pro",
    })
    assert all(a.num_attributes == 11 for a in acfgs)
