"""Ablation A1 — the paper's two DGCNN extensions vs the original.

Section III motivates two modifications to standard DGCNN:
WeightedVertices (replacing the remaining Conv1D) and AdaptiveMaxPooling
(replacing SortPooling entirely).  Table II's outcome is that adaptive
pooling wins on both datasets.  This ablation trains all three
architectures under identical conditions on the same folds and compares
validation scores — the design-choice evidence DESIGN.md section 5
calls out.
"""

import dataclasses

from repro.core.dgcnn import ModelConfig, build_model
from repro.core.sort_pooling import resolve_sort_pooling_k
from repro.train.cross_validation import cross_validate
from repro.train.trainer import TrainingConfig

from benchmarks.bench_common import save_result

ARCHITECTURES = ("adaptive", "sort_conv1d", "sort_weighted")


def make_config(pooling, num_classes, sort_k):
    return ModelConfig(
        num_attributes=11,
        num_classes=num_classes,
        pooling=pooling,
        graph_conv_sizes=(32, 32, 32, 32),
        sort_k=sort_k,
        amp_grid=(3, 3),
        conv2d_channels=16,
        conv1d_channels=(16, 32),
        conv1d_kernel=5,
        hidden_size=64,
        dropout=0.1,
        seed=0,
    )


def test_ablation_pooling_architectures(benchmark, mskcfg_bench):
    # Half-size corpus keeps three CV runs affordable.
    subset = mskcfg_bench.subset(list(range(0, len(mskcfg_bench), 2)))
    sort_k = resolve_sort_pooling_k(subset.graph_sizes(), 0.64)

    def run_all():
        results = {}
        for pooling in ARCHITECTURES:
            config = make_config(pooling, subset.num_classes, sort_k)

            def factory(fold, base=config):
                return build_model(dataclasses.replace(base, seed=fold))

            results[pooling] = cross_validate(
                factory,
                subset,
                TrainingConfig(epochs=12, batch_size=10,
                               learning_rate=2e-3, seed=3),
                n_splits=3,
                seed=3,
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nAblation — pooling architecture (3-fold CV, 12 epochs):")
    print(f"{'Architecture':16s}{'ValLoss':>9s}{'Accuracy':>10s}{'MacroF1':>9s}")
    for pooling in ARCHITECTURES:
        result = results[pooling]
        print(f"{pooling:16s}{result.score:9.4f}"
              f"{result.accuracy:10.3f}{result.averaged_report.macro_f1:9.3f}")

    # Shape: every architecture learns (way above the 1/9 chance level).
    for pooling in ARCHITECTURES:
        assert results[pooling].accuracy > 0.5

    save_result("ablation_pooling", {
        pooling: {
            "score": results[pooling].score,
            "accuracy": results[pooling].accuracy,
            "macro_f1": results[pooling].averaged_report.macro_f1,
        }
        for pooling in ARCHITECTURES
    })
