"""Compiled tape execution: forward/backward replay vs the eager engine.

Engineering benchmark behind ``repro.nn.tape``.  The eager ``Tensor``
engine rebuilds the op graph and allocates fresh output/gradient arrays
on every call, even though serving batches and training epochs replay
the exact same topology; the tape captures one eager pass and replays it
with preallocated arena buffers, fused SpMM+ReLU / Linear+ReLU kernels,
and (opt-in) float32 arithmetic.  This bench measures three claims and
persists them to ``output/BENCH_forward.json``:

1. **bit_exact** — float64 replay reproduces the eager forward to the
   bit on all three DGCNN variants (the precondition for every timing
   claim below; a fast wrong answer is worthless);
2. **speedup_f32** — single-graph inference through the compiled
   float32 tape vs the eager float64 path (the serve-path hot loop);
3. **train_speedup** — whole training runs through ``Trainer`` with
   ``compiled=True`` vs ``compiled=False`` on a uniform-size corpus
   (capture on the first epoch, replay on the rest), with identical
   per-epoch losses as the equivalence check.

All timings are min-of-repeats (the standard way to strip scheduler
noise from a single-process measurement), so the asserts hold on the
1-CPU CI box.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_forward.py --vertices 100

or via pytest (same scale): ``pytest benchmarks/bench_forward.py``.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.core.batched import GraphBatch
from repro.core.dgcnn import POOLING_TYPES, ModelConfig, build_model
from repro.features.acfg import ACFG
from repro.nn.tape import CompiledModel
from repro.train.trainer import Trainer, TrainingConfig

from benchmarks.bench_common import save_result


def _random_acfg(rng, n: int, label: int = 0, density: float = 0.15) -> ACFG:
    adjacency = (rng.random((n, n)) < density).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return ACFG(
        adjacency=adjacency,
        attributes=rng.standard_normal((n, 11)),
        label=label,
    )


def _serve_config(pooling: str = "adaptive") -> ModelConfig:
    """The Table II best-model architecture (adjusted per pooling)."""
    return ModelConfig(
        num_attributes=11,
        num_classes=9,
        pooling=pooling,
        graph_conv_sizes=(32, 32, 32, 32),
        amp_grid=(3, 3),
        conv2d_channels=16,
        sort_k=32,
        conv1d_channels=(16, 32),
        conv1d_kernel=5,
        hidden_size=64,
        dropout=0.1,
        seed=0,
    )


def _best_of(fn, repeats: int, iterations: int) -> float:
    """Min-of-repeats mean per-call latency in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - started) / iterations)
    return best


def check_bit_exactness() -> bool:
    """Float64 replay == eager forward, to the bit, on every variant."""
    rng = np.random.default_rng(7)
    for pooling in POOLING_TYPES:
        model = build_model(_serve_config(pooling)).eval()
        compiled = CompiledModel(model)
        batches = [
            GraphBatch([_random_acfg(rng, n) for n in (8, 14, 11)])
            for _ in range(2)
        ]
        for batch in batches:  # first captures, second replays
            if not np.array_equal(compiled.infer(batch), model(batch).data):
                return False
    return True


def bench_inference(vertices: int, repeats: int, iterations: int) -> dict:
    """Single-graph latency: eager f64 vs compiled f64 vs compiled f32."""
    model = build_model(_serve_config("adaptive")).eval()
    rng = np.random.default_rng(0)
    batch = GraphBatch([_random_acfg(rng, vertices)])
    compiled_f64 = CompiledModel(model)
    compiled_f32 = CompiledModel(model, dtype="float32")
    # Warm both tapes (capture is excluded: steady-state is the claim).
    assert np.array_equal(compiled_f64.infer(batch), model(batch).data)
    compiled_f32.infer(batch)

    eager_seconds = _best_of(lambda: model(batch), repeats, iterations)
    f64_seconds = _best_of(lambda: compiled_f64.infer(batch), repeats,
                           iterations)
    f32_seconds = _best_of(lambda: compiled_f32.infer(batch), repeats,
                           iterations)
    return {
        "vertices": vertices,
        "eager_f64_ms": round(eager_seconds * 1e3, 4),
        "compiled_f64_ms": round(f64_seconds * 1e3, 4),
        "compiled_f32_ms": round(f32_seconds * 1e3, 4),
        "speedup_f64": round(eager_seconds / f64_seconds, 3),
        "speedup_f32": round(eager_seconds / f32_seconds, 3),
        "fused_ops": compiled_f64.stats()["fused_ops"],
    }


def bench_training(corpus: int, epochs: int, repeats: int) -> dict:
    """Whole training runs, eager vs compiled, identical losses required.

    Uniform graph sizes keep the number of distinct batch signatures at
    two (full batch + remainder), so replay dominates from epoch two on
    — the serving-retrain shape the tape is built for.
    """
    rng = np.random.default_rng(4)
    data = [_random_acfg(rng, 12, label=i % 4, density=0.2)
            for i in range(corpus)]

    def run(compiled: bool):
        best = float("inf")
        for _ in range(repeats):
            model = build_model(ModelConfig(
                num_attributes=11, num_classes=4, pooling="adaptive",
                graph_conv_sizes=(32, 32, 32, 32), amp_grid=(3, 3),
                conv2d_channels=16, hidden_size=64, dropout=0.1, seed=0,
            ))
            trainer = Trainer(TrainingConfig(
                epochs=epochs, batch_size=10, compiled=compiled, seed=2
            ))
            started = time.perf_counter()
            history = trainer.train(model, data)
            best = min(best, time.perf_counter() - started)
        return best, history

    eager_seconds, eager_history = run(False)
    compiled_seconds, compiled_history = run(True)
    return {
        "corpus_size": corpus,
        "epochs": epochs,
        "eager_seconds": round(eager_seconds, 3),
        "compiled_seconds": round(compiled_seconds, 3),
        "train_speedup": round(eager_seconds / compiled_seconds, 3),
        "losses_equal":
            eager_history.train_losses == compiled_history.train_losses,
    }


def run_bench(
    vertices: int = 100,
    repeats: int = 5,
    iterations: int = 20,
    corpus: int = 80,
    epochs: int = 5,
) -> dict:
    bit_exact = check_bit_exactness()
    inference = bench_inference(vertices, repeats, iterations)
    training = bench_training(corpus, epochs, repeats=2)
    payload = {
        "cpu_count": os.cpu_count(),
        "bit_exact": bit_exact,
        "inference": inference,
        "training": training,
    }
    path = save_result("BENCH_forward", payload)
    print(f"bit-exact on {', '.join(POOLING_TYPES)}: {bit_exact}")
    print(f"single graph ({vertices} vertices): "
          f"eager {inference['eager_f64_ms']:.3f} ms, "
          f"compiled f64 {inference['compiled_f64_ms']:.3f} ms "
          f"({inference['speedup_f64']}x), "
          f"compiled f32 {inference['compiled_f32_ms']:.3f} ms "
          f"({inference['speedup_f32']}x, {inference['fused_ops']} fused ops)")
    print(f"training ({corpus} graphs x {epochs} epochs): "
          f"eager {training['eager_seconds']}s, "
          f"compiled {training['compiled_seconds']}s "
          f"({training['train_speedup']}x, losses equal: "
          f"{training['losses_equal']})")
    print(f"written to {path}")
    return payload


def test_compiled_execution_speedup():
    """CI gate: correctness is absolute, speedups have agreed floors.

    The ISSUE-7 acceptance bar: float64 replay bit-exact everywhere,
    >=2x single-graph compiled-float32 inference vs eager float64, and
    a >1.0x whole-run training speedup.  Min-of-repeats keeps these
    stable on the single-CPU CI runner.
    """
    payload = run_bench()
    assert payload["bit_exact"]
    assert payload["training"]["losses_equal"]
    assert payload["inference"]["fused_ops"] > 0
    assert payload["inference"]["speedup_f32"] >= 2.0, payload["inference"]
    assert payload["training"]["train_speedup"] > 1.0, payload["training"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--corpus", type=int, default=80)
    parser.add_argument("--epochs", type=int, default=5)
    args = parser.parse_args()
    run_bench(
        vertices=args.vertices,
        repeats=args.repeats,
        iterations=args.iterations,
        corpus=args.corpus,
        epochs=args.epochs,
    )


if __name__ == "__main__":
    main()
