"""Adversarial robustness: PGD attack, adversarial training, recovery.

The robustness workload behind ``repro.adv``: train the Table II best
model on the synthetic MSKCFG corpus, attack the held-out test split
with the feature-space PGD attack (every adversarial sample projected
onto the ACFG semantic invariants), then train a defended model with the
inner-PGD adversarial trainer and measure how much of the robustness gap
it closes — per family, persisted to ``output/BENCH_robustness.json``.

The artifact records the workload's acceptance criteria so CI can hold
the line:

* the attack drops undefended test accuracy by >= 20 points,
* every attacked sample passes the semantic validator,
* adversarial training recovers >= 50% of the gap at <= 2 points of
  clean-accuracy cost,
* the attack is bit-reproducible under a fixed seed.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_robustness.py

or via pytest (reduced scale): ``pytest benchmarks/bench_robustness.py``.
"""

from __future__ import annotations

import argparse
import copy

import numpy as np

from repro.adv import (
    AttackConfig,
    AttackOutcome,
    FeatureSpaceAttack,
    build_robustness_report,
)
from repro.core.magic import Magic
from repro.datasets import generate_mskcfg_dataset
from repro.features.validator import is_semantically_valid
from repro.train.trainer import AdversarialConfig, TrainingConfig

from benchmarks.bench_common import best_model_config, save_result


def _fit_undefended(dataset, train, epochs: int, seed: int) -> Magic:
    magic = Magic(
        best_model_config(dataset.num_classes, seed=seed),
        dataset.family_names,
    )
    magic.fit(
        train.acfgs,
        training_config=TrainingConfig(
            epochs=epochs,
            batch_size=10,
            learning_rate=3e-3,
            weight_decay=1e-4,
            seed=seed,
        ),
    )
    return magic


def _fit_defended(undefended: Magic, train, adv_epochs: int, adv_lr: float,
                  seed: int, adversarial: AdversarialConfig) -> Magic:
    """Warm-start adversarial training: clean pretrain -> PGD-AT finetune.

    Training adversarially from a randomly initialized model at this
    corpus scale sacrifices far too much clean accuracy (the mixed loss
    never recovers the clean optimum); finetuning the *already trained*
    clean model instead keeps the clean decision boundary and only
    flattens it locally.  The clean phase is shared with the undefended
    model bit for bit, so the copy starts from identical weights.
    """
    defended = copy.deepcopy(undefended)
    defended.fit(
        train.acfgs,
        training_config=TrainingConfig(
            epochs=adv_epochs,
            batch_size=10,
            learning_rate=adv_lr,
            weight_decay=1e-4,
            seed=seed,
            adversarial=adversarial,
        ),
    )
    return defended


def _attack(magic: Magic, acfgs, epsilon: float, steps: int,
            seed: int) -> AttackOutcome:
    attack = FeatureSpaceAttack(
        magic.model,
        magic.scaler,
        AttackConfig(epsilon=epsilon, steps=steps, seed=seed),
    )
    return attack.attack(acfgs)


def _all_valid(outcome: AttackOutcome) -> bool:
    return all(
        is_semantically_valid(graph.attributes, graph.adjacency)
        for graph in outcome.adversarial_acfgs
    )


def _same_outcome(a: AttackOutcome, b: AttackOutcome) -> bool:
    """Bit-level equality of two attack runs (determinism check)."""
    return (
        np.array_equal(a.adversarial_probabilities, b.adversarial_probabilities)
        and np.array_equal(a.clean_probabilities, b.clean_probabilities)
        and all(
            np.array_equal(x.attributes, y.attributes)
            for x, y in zip(a.adversarial_acfgs, b.adversarial_acfgs)
        )
    )


def run_bench(
    total: int = 200,
    epochs: int = 14,
    seed: int = 3,
    epsilon: float = 0.65,
    steps: int = 10,
    adv_epochs: int = 14,
    adv_lr: float = 1e-3,
    adv_steps: int = 3,
    adv_epsilon: float = 1.0,
    adv_weight: float = 0.6,
    test_fraction: float = 0.3,
) -> dict:
    dataset = generate_mskcfg_dataset(
        total=total, seed=seed, minimum_per_family=8
    )
    train, test = dataset.stratified_split(test_fraction, seed=seed)
    labels = test.labels()

    undefended = _fit_undefended(dataset, train, epochs, seed)
    defended = _fit_defended(
        undefended, train, adv_epochs, adv_lr, seed,
        AdversarialConfig(
            steps=adv_steps, epsilon=adv_epsilon, weight=adv_weight
        ),
    )

    outcome_und = _attack(undefended, test.acfgs, epsilon, steps, seed)
    outcome_und_repeat = _attack(undefended, test.acfgs, epsilon, steps, seed)
    outcome_def = _attack(defended, test.acfgs, epsilon, steps, seed)

    report_und = build_robustness_report(
        dataset.family_names, labels,
        outcome_und.clean_probabilities,
        outcome_und.adversarial_probabilities,
        [r.perturbation_linf for r in outcome_und.records],
    )
    report_def = build_robustness_report(
        dataset.family_names, labels,
        outcome_def.clean_probabilities,
        outcome_def.adversarial_probabilities,
        [r.perturbation_linf for r in outcome_def.records],
    )

    drop_points = report_und.accuracy_drop * 100.0
    recovered = (
        report_def.adversarial_accuracy - report_und.adversarial_accuracy
    )
    recovery_fraction = (
        recovered / report_und.accuracy_drop
        if report_und.accuracy_drop > 0.0
        else 0.0
    )
    clean_cost_points = (
        report_und.clean_accuracy - report_def.clean_accuracy
    ) * 100.0

    payload = {
        "corpus_size": len(dataset),
        "test_size": len(test),
        "epochs": epochs,
        "seed": seed,
        "attack": {"epsilon": epsilon, "steps": steps},
        "adversarial_training": {
            "epochs": adv_epochs,
            "learning_rate": adv_lr,
            "steps": adv_steps,
            "epsilon": adv_epsilon,
            "weight": adv_weight,
        },
        "undefended": report_und.to_dict(),
        "defended": report_def.to_dict(),
        "accuracy_drop_points": round(drop_points, 3),
        "recovery_fraction": round(recovery_fraction, 4),
        "clean_cost_points": round(clean_cost_points, 3),
        "all_semantically_valid": (
            _all_valid(outcome_und) and _all_valid(outcome_def)
        ),
        "attack_deterministic": _same_outcome(
            outcome_und, outcome_und_repeat
        ),
    }
    path = save_result("BENCH_robustness", payload)

    print(f"Undefended model under PGD(eps={epsilon}, steps={steps}):")
    print(report_und.format_table())
    print(f"\nDefended model ({adv_epochs}-epoch PGD-AT finetune: inner "
          f"{adv_steps}-step PGD, eps={adv_epsilon}, weight={adv_weight}):")
    print(report_def.format_table())
    print(f"\naccuracy drop    {drop_points:6.2f} points")
    print(f"recovery         {recovery_fraction * 100:6.2f} % of the gap")
    print(f"clean cost       {clean_cost_points:6.2f} points")
    print(f"semantics valid  {payload['all_semantically_valid']}")
    print(f"deterministic    {payload['attack_deterministic']}")
    print(f"written to {path}")
    return payload


def test_robustness_bench_smoke():
    """CI smoke at reduced scale: structure + hard invariants only.

    Accuracy thresholds (drop/recovery/clean-cost) are asserted at full
    scale by the adv-smoke CI job against ``BENCH_robustness.json``;
    this reduced run only checks the invariants that must hold at *any*
    scale: semantic validity and bit-reproducibility.
    """
    payload = run_bench(
        total=45, epochs=3, steps=3, adv_epochs=2, adv_steps=2, seed=3
    )
    assert payload["all_semantically_valid"]
    assert payload["attack_deterministic"]
    assert 0.0 <= payload["undefended"]["clean_accuracy"] <= 1.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--total", type=int, default=200)
    parser.add_argument("--epochs", type=int, default=14)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--epsilon", type=float, default=0.65)
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument("--adv-epochs", type=int, default=14)
    parser.add_argument("--adv-lr", type=float, default=1e-3)
    parser.add_argument("--adv-steps", type=int, default=3)
    parser.add_argument("--adv-epsilon", type=float, default=1.0)
    parser.add_argument("--adv-weight", type=float, default=0.6)
    args = parser.parse_args()
    run_bench(
        total=args.total,
        epochs=args.epochs,
        seed=args.seed,
        epsilon=args.epsilon,
        steps=args.steps,
        adv_epochs=args.adv_epochs,
        adv_lr=args.adv_lr,
        adv_steps=args.adv_steps,
        adv_epsilon=args.adv_epsilon,
        adv_weight=args.adv_weight,
    )


if __name__ == "__main__":
    main()
