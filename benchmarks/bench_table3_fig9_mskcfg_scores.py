"""Table III & Figure 9 — per-family cross-validation scores on MSKCFG.

The paper's best model (adaptive-pooling DGCNN) reaches per-family
precision/recall/F1 uniformly above 0.96 on MSKCFG after 5-fold CV.
At benchmark scale (220 synthetic samples, 25 epochs) the *shape* to
hold is: accuracy well above 0.9, majority families near-perfect, and
no family collapsing to zero.
"""

from repro.train.trainer import Trainer
from repro.features.scaling import AttributeScaler

from benchmarks.bench_common import report_to_rows, save_result

PAPER_TABLE3 = {
    "Ramnit": 0.976615,
    "Lollipop": 0.996754,
    "Kelihos_ver3": 1.000000,
    "Vundo": 0.990895,
    "Simda": 0.994987,
    "Tracur": 0.993463,
    "Kelihos_ver1": 0.991156,
    "Obfuscator.ACY": 0.978655,
    "Gatak": 0.998304,
}


def test_table3_fig9_mskcfg_cv_scores(benchmark, mskcfg_bench, mskcfg_cv):
    report = mskcfg_cv.averaged_report

    print("\nTable III / Figure 9 — MAGIC on MSKCFG (5-fold CV, averaged):")
    print(report.format_table())
    print("\nPaper-reported F1 for comparison:")
    for family, f1 in PAPER_TABLE3.items():
        measured = report.scores_by_family()[family].f1
        print(f"  {family:16s} paper={f1:.4f}  measured={measured:.4f}")

    # Shape assertions (not absolute-number matching).
    assert report.accuracy > 0.85
    f1_by_family = {
        name: s.f1 for name, s in report.scores_by_family().items()
    }
    # Majority families classify essentially perfectly.
    for big in ("Kelihos_ver3", "Lollipop"):
        assert f1_by_family[big] > 0.9
    # Nothing collapses.
    assert min(f1_by_family.values()) > 0.3

    # Benchmark the prediction path of the trained fold-0 model's protocol:
    # re-evaluating the full corpus through a trained-model equivalent.
    scaler = AttributeScaler().fit(mskcfg_bench.acfgs)
    scaled = scaler.transform(mskcfg_bench.acfgs[:50])
    from benchmarks.bench_common import best_model_config
    from repro.core.dgcnn import build_model

    model = build_model(best_model_config(mskcfg_bench.num_classes))
    benchmark(lambda: Trainer.predict_proba(model, scaled))

    save_result("table3_fig9_mskcfg_scores", {
        "cv_folds": len(mskcfg_cv.fold_reports),
        "accuracy": report.accuracy,
        "log_loss": report.log_loss,
        "macro_f1": report.macro_f1,
        "per_family": report_to_rows(mskcfg_cv),
        "paper_f1": PAPER_TABLE3,
    })
