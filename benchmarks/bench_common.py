"""Shared infrastructure for the experiment benchmarks.

Every table and figure of the paper's evaluation section has a bench
module in this directory; heavyweight training runs are shared through
session-scoped fixtures in ``conftest.py`` so the suite stays runnable on
a laptop.  Results are printed in the paper's layout *and* persisted to
``benchmarks/output/`` so EXPERIMENTS.md can reference actual runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List

from repro.core.dgcnn import ModelConfig, build_model
from repro.datasets.loader import MalwareDataset
from repro.train.cross_validation import CrossValidationResult, cross_validate
from repro.train.trainer import TrainingConfig

#: Where benchmark result artifacts are written.
OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

#: Benchmark-scale defaults (reduced from the paper's 10k+ corpora /
#: 100 epochs to laptop scale; see EXPERIMENTS.md for the mapping).
MSKCFG_TOTAL = 220
YANCFG_TOTAL = 230
MIN_PER_FAMILY = 12
CV_EPOCHS = 30
CV_FOLDS = 5
SEED = 3


def best_model_config(num_classes: int, seed: int = 0) -> ModelConfig:
    """The Table II best-model architecture: adaptive pooling DGCNN."""
    return ModelConfig(
        num_attributes=11,
        num_classes=num_classes,
        pooling="adaptive",
        graph_conv_sizes=(32, 32, 32, 32),
        amp_grid=(3, 3),
        conv2d_channels=16,
        hidden_size=64,
        dropout=0.1,
        seed=seed,
    )


def run_magic_cv(
    dataset: MalwareDataset,
    epochs: int = CV_EPOCHS,
    n_splits: int = CV_FOLDS,
    seed: int = SEED,
) -> CrossValidationResult:
    """The paper's protocol: stratified k-fold CV of the best model."""

    def factory(fold: int):
        return build_model(
            dataclasses.replace(
                best_model_config(dataset.num_classes), seed=seed + 1000 * fold
            )
        )

    return cross_validate(
        factory,
        dataset,
        TrainingConfig(
            epochs=epochs,
            batch_size=10,
            learning_rate=3e-3,
            weight_decay=1e-4,
            seed=seed,
        ),
        n_splits=n_splits,
        seed=seed,
    )


def save_result(name: str, payload: Dict) -> str:
    """Persist a benchmark's result table as JSON under output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path


def report_to_rows(result: CrossValidationResult) -> List[Dict]:
    """Per-family scores of an averaged CV report as JSON-ready rows."""
    report = result.averaged_report
    rows = []
    for name, scores in zip(report.family_names or [], report.per_class):
        rows.append({
            "family": name,
            "precision": round(scores.precision, 6),
            "recall": round(scores.recall, 6),
            "f1": round(scores.f1, 6),
            "support": scores.support,
        })
    return rows
