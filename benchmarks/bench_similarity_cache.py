"""Similarity cache tier: mutated-variant replay, exact-only vs two-tier.

Engineering benchmark behind the near-duplicate serving tier
(``repro.similarity`` + ``InferenceEngine(similar_threshold=...)``).
The exact prediction cache keys on sha256-of-text, so a re-obfuscated
variant of a known sample — the dominant case in real malware traffic —
always misses it and pays the full forward pass.  The similarity tier
fingerprints the extracted CFG (WL relabeling over quantized
attributes), looks the fingerprint up in a minhash-LSH index of served
predictions, and answers near-duplicates without running the model.

This bench replays the same mutated-variant trace through both engine
configurations and records:

* the throughput of each configuration and the honest ``tiered_faster``
  verdict (the tier trades a fingerprint+signature for a forward pass,
  so the win scales with model cost — ``cpu_count`` is recorded),
* the similar-tier hit rate on the variant traffic,
* the flagging contract: every response served from the similarity tier
  carries ``similar=True`` plus its estimated Jaccard, and responses
  *not* flagged are label-identical to full inference (a flagged
  response may substitute the keeper's prediction — that is the tier's
  documented contract, counted separately, never silent),
* fingerprint determinism: the WL fingerprint digest of one sample is
  recomputed in a fresh subprocess and must match bit for bit.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_similarity_cache.py \
        --bases 6 --variants 4

or via pytest (reduced scale): ``pytest benchmarks/bench_similarity_cache.py``.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import subprocess
import sys
import time
from typing import Dict, List, Tuple

from repro.core import Magic
from repro.datasets import generate_mskcfg_dataset
from repro.datasets.mskcfg import MSKCFG_PROFILES, generate_mskcfg_sample
from repro.datasets.synthetic_asm import generate_family_listing
from repro.serve import InferenceEngine, publish
from repro.similarity import DEFAULT_SIMILARITY_THRESHOLD
from repro.train import TrainingConfig

from benchmarks.bench_common import best_model_config, save_result

#: Sample indices start past the training corpus so no replayed listing
#: was seen during training.
_BASE_INDEX = 40

#: Extra junk-code probability for variant j of a base sample.  The
#: range stays inside the calibrated corridor (variants >= ~0.57
#: estimated Jaccard).  Steps are coarse on purpose: junk insertion
#: draws one RNG number per site, so two probabilities that are too
#: close select the *same* junk sites and produce byte-identical
#: listings (which would hit the exact tier, not the similar tier).
_JUNK_STEP = 0.1
_JUNK_FLOOR = 0.1

#: Seed offset for replay listings (never seen during training).
_TRAFFIC_SEED = 100

_DIGEST_SCRIPT = """
from repro.datasets.mskcfg import generate_mskcfg_sample
from repro.features.pipeline import AcfgPipeline
from repro.similarity import fingerprint_acfg

name, text, label = generate_mskcfg_sample("{family}", {index}, seed=0)
acfg = AcfgPipeline().extract_from_texts([(name, text, label)]).acfgs[0]
print(fingerprint_acfg(acfg).digest())
"""


def _traffic(
    bases: int, variants: int
) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
    """(base samples, variant replay trace) over distinct families.

    Listings use reshaped family profiles — the same move as
    ``bench_serve_throughput``: CFG extraction is identical on both
    engine configurations, so with full-size listings it swamps the
    stage the configurations actually differ on (a fingerprint+lookup
    versus a forward pass).  Many short blocks keep the vertex count —
    what the forward pass scales with — while cutting the instruction
    count that extraction scales with; graphs stay large enough (~20-35
    vertices) that the calibrated similarity corridor holds.
    """
    profiles = [
        dataclasses.replace(
            profile,
            num_functions=(2, 3),
            blocks_per_function=(8, 12),
            block_length=(2, 4),
        )
        for profile in MSKCFG_PROFILES.values()
    ]
    base_samples, variant_samples = [], []
    for position in range(bases):
        profile = profiles[position % len(profiles)]
        listing_seed = _TRAFFIC_SEED + position
        base_samples.append((
            f"{profile.name}_{position}",
            generate_family_listing(profile, listing_seed),
        ))
        for step in range(variants):
            # The same sample re-obfuscated: same generation seed, more
            # junk-code insertion.
            mutated = dataclasses.replace(
                profile,
                junk_probability=min(
                    0.95,
                    profile.junk_probability
                    + _JUNK_FLOOR + _JUNK_STEP * step,
                ),
            )
            variant_samples.append((
                f"{profile.name}_{position}_v{step}",
                generate_family_listing(mutated, listing_seed),
            ))
    return base_samples, variant_samples


def _train_registry(tmp_root: str, seed: int) -> None:
    """Publish a briefly-trained paper-architecture model.

    The Table II best model (adaptive pooling, four graph-conv layers)
    — not the unit-test tiny model — so the forward pass the tier skips
    costs what it costs in the reproduction.
    """
    dataset = generate_mskcfg_dataset(
        total=36, seed=seed, minimum_per_family=4
    )
    magic = Magic(
        best_model_config(dataset.num_classes, seed=seed),
        dataset.family_names,
    )
    magic.fit(
        dataset.acfgs,
        training_config=TrainingConfig(epochs=2, batch_size=8, seed=seed),
    )
    publish(magic, tmp_root, "bench")


def _replay(
    engine: InferenceEngine,
    base_samples: List[Tuple[str, str]],
    variant_samples: List[Tuple[str, str]],
) -> Tuple[float, List]:
    """Warm the engine with the bases, then time the variant trace.

    Only the cold pass is timed — a second pass would hit the exact
    cache on *both* configurations and measure nothing.  The trace is
    long enough (``bases * variants`` distinct requests) that
    per-request scheduler noise averages out inside the single pass.
    """
    for name, text in base_samples:
        engine.classify_text(text, name)
    started = time.perf_counter()
    results = [
        engine.classify_text(text, name) for name, text in variant_samples
    ]
    return time.perf_counter() - started, results


def _digest_in_subprocess(family: str, index: int) -> str:
    """Fingerprint digest of one sample, computed in a fresh process."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src"), repo_root]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    completed = subprocess.run(
        [sys.executable, "-c",
         _DIGEST_SCRIPT.format(family=family, index=index)],
        capture_output=True, text=True, check=True, env=env,
    )
    return completed.stdout.strip()


def run_bench(
    bases: int = 6,
    variants: int = 4,
    seed: int = 3,
    repeats: int = 3,
) -> Dict:
    import tempfile

    from repro.features.pipeline import AcfgPipeline
    from repro.similarity import fingerprint_acfg

    base_samples, variant_samples = _traffic(bases, variants)

    with tempfile.TemporaryDirectory(prefix="bench-similarity-") as root:
        _train_registry(root, seed)

        # Reference: full inference for every request (all caching off).
        # Doubles as the warm-up pass so neither timed configuration
        # pays first-touch costs (BLAS init, allocator growth).
        reference = InferenceEngine.from_registry(root, "bench",
                                                  cache_size=0)
        reference_labels = {
            name: reference.classify_text(text, name).label
            for name, text in variant_samples
        }

        # Best-of-``repeats`` with a fresh engine per pass: the work is
        # deterministic, so the minimum strips scheduler noise — the
        # same move as bench_serve_throughput.
        exact_seconds = float("inf")
        for _ in range(repeats):
            exact_engine = InferenceEngine.from_registry(root, "bench")
            seconds, exact_results = _replay(
                exact_engine, base_samples, variant_samples
            )
            exact_seconds = min(exact_seconds, seconds)

        tiered_seconds = float("inf")
        for _ in range(repeats):
            tiered_engine = InferenceEngine.from_registry(
                root, "bench",
                similar_threshold=DEFAULT_SIMILARITY_THRESHOLD,
            )
            seconds, tiered_results = _replay(
                tiered_engine, base_samples, variant_samples
            )
            tiered_seconds = min(tiered_seconds, seconds)

    # --- contract checks, before any timing claim -----------------------
    assert all(result.ok for result in exact_results)
    assert all(result.ok for result in tiered_results)
    # Exact-only never produces a similar-flagged response.
    assert not any(result.similar for result in exact_results)
    # Every similarity-tier response is flagged and carries its score.
    similar_hits = [r for r in tiered_results if r.similar]
    assert all(
        result.similarity is not None
        and result.similarity >= DEFAULT_SIMILARITY_THRESHOLD
        for result in similar_hits
    )
    # No silent substitution: a response NOT flagged similar must carry
    # the same label full inference produces.  (A flagged response may
    # serve the keeper's prediction — that is the tier's contract; it is
    # counted, never hidden.)
    unflagged_flips = sum(
        1 for result in tiered_results
        if not result.similar
        and result.label != reference_labels[result.name]
    )
    assert unflagged_flips == 0, (
        f"{unflagged_flips} unflagged responses diverged from full "
        "inference"
    )
    assert not any(
        result.label != reference_labels[result.name]
        for result in exact_results
    )
    flagged_substitutions = sum(
        1 for result in similar_hits
        if result.label != reference_labels[result.name]
    )

    # Fingerprint determinism across processes, bit for bit.
    family, index = list(MSKCFG_PROFILES)[0], _BASE_INDEX
    name, text, label = generate_mskcfg_sample(family, index, seed=0)
    acfg = AcfgPipeline().extract_from_texts([(name, text, label)]).acfgs[0]
    local_digest = fingerprint_acfg(acfg).digest()
    subprocess_digest = _digest_in_subprocess(family, index)
    assert local_digest == subprocess_digest, (
        "fingerprint digest differs across processes: "
        f"{local_digest} vs {subprocess_digest}"
    )

    trace = len(variant_samples)
    tier_metrics = tiered_engine.metrics.snapshot()["cache"]
    payload = {
        "bases": bases,
        "variants_per_base": variants,
        "trace_length": trace,
        "repeats": repeats,
        "threshold": DEFAULT_SIMILARITY_THRESHOLD,
        "cpu_count": os.cpu_count(),
        "exact_only_seconds": round(exact_seconds, 3),
        "two_tier_seconds": round(tiered_seconds, 3),
        "exact_only_rps": round(trace / exact_seconds, 2),
        "two_tier_rps": round(trace / tiered_seconds, 2),
        "speedup": round(exact_seconds / tiered_seconds, 3),
        "tiered_faster": tiered_seconds < exact_seconds,
        "similar_hits": len(similar_hits),
        "similar_hit_rate": round(len(similar_hits) / trace, 3),
        "unflagged_label_flips": 0,
        "flagged_substitutions": flagged_substitutions,
        "similar_tier_metrics": {
            "exact_hits": tier_metrics["exact_hits"],
            "similar_hits": tier_metrics["similar_hits"],
            "misses": tier_metrics["misses"],
        },
        "fingerprint_digest": local_digest,
        "digest_reproducible": True,
    }
    path = save_result("BENCH_similarity", payload)
    print(f"exact-only {exact_seconds:6.2f}s "
          f"({payload['exact_only_rps']} req/s)")
    print(f"two-tier   {tiered_seconds:6.2f}s "
          f"({payload['two_tier_rps']} req/s, "
          f"{len(similar_hits)}/{trace} similar hits)")
    print(f"speedup {payload['speedup']}x — 0 unflagged flips, "
          f"{flagged_substitutions} flagged substitutions; "
          f"digest reproducible across processes")
    print(f"written to {path}")
    return payload


def test_similarity_tier_beats_exact_only_on_variant_replay():
    """CI smoke: the tier converts variant traffic into similar hits,
    beats the exact-only configuration on the same trace, and never
    diverges from full inference without flagging it."""
    payload = run_bench(bases=4, variants=3, repeats=3)
    assert payload["similar_hits"] > 0
    assert payload["tiered_faster"]
    assert payload["two_tier_rps"] > payload["exact_only_rps"]
    assert payload["unflagged_label_flips"] == 0
    assert payload["digest_reproducible"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bases", type=int, default=6)
    parser.add_argument("--variants", type=int, default=4)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    run_bench(bases=args.bases, variants=args.variants, seed=args.seed,
              repeats=args.repeats)


if __name__ == "__main__":
    main()
