#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from benchmarks/output/*.json.

Run the benchmark suite first (``pytest benchmarks/ --benchmark-only``),
then::

    python benchmarks/render_experiments.py > EXPERIMENTS.md
"""

from __future__ import annotations

import json
import os
import sys
from typing import Optional

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

HEADER = """\
# EXPERIMENTS — paper-reported vs measured

Every table and figure of the paper's evaluation (Section V) mapped to
its benchmark and the most recent measured result.  Regenerate with::

    pytest benchmarks/ --benchmark-only -s
    python benchmarks/render_experiments.py > EXPERIMENTS.md

**Scale note.** The paper evaluates on 10,868 (MSKCFG) and 16,351
(YANCFG) real samples with 100-epoch training on GPUs; this repository
evaluates on synthetic corpora of a few hundred samples with ~30-epoch
CPU training (see DESIGN.md §2 and §6).  Absolute numbers therefore
differ; the claims reproduced are the *shapes*: orderings, gaps, and
which families/methods win or lose.
"""


def load(name: str) -> Optional[dict]:
    path = os.path.join(OUTPUT_DIR, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def missing(artifact: str) -> str:
    return (f"\n*(no recorded run for {artifact} — "
            f"run the benchmark suite first)*\n")


def render_table1() -> str:
    data = load("table1_attributes")
    out = ["## Table I — block-level attributes\n"]
    out.append("Paper: 11 attributes (9 code-sequence + 2 vertex-structure); "
               "extraction averaged ~5.8 s/sample with IDA Pro.\n")
    if not data:
        return "".join(out) + missing("Table I")
    per_sample = data.get("extract_seconds_per_sample")
    out.append(f"Measured: attribute set `{', '.join(data['attributes'])}` "
               f"({len(data['attributes'])} channels); extraction "
               f"{per_sample * 1000:.2f} ms/sample over {data['samples']} "
               f"samples (no disassembler in the loop).\n")
    return "".join(out)


def render_table2() -> str:
    data = load("table2_hyperparams")
    out = ["\n## Table II — hyper-parameter grid and best models\n"]
    out.append("Paper: 208 settings (64 adaptive + 96 sort+Conv1D + 48 "
               "sort+WeightedVertices), 5-fold CV each; best model on both "
               "datasets uses adaptive pooling.\n")
    if not data:
        return "".join(out) + missing("Table II")
    out.append(f"Measured: grid reconstruction has "
               f"**{data['full_grid_size']} settings** with per-architecture "
               f"counts {data['grid_by_architecture']} — exactly the paper's "
               f"structure.  Reduced sweep ranking "
               f"({len(data['swept_settings'])} settings):\n\n")
    out.append("| rank | score (min avg val loss) | accuracy | setting |\n")
    out.append("|---|---|---|---|\n")
    for rank, entry in enumerate(data["ranking"], start=1):
        out.append(f"| {rank} | {entry['score']:.4f} | "
                   f"{entry['accuracy']:.3f} | `{entry['setting']}` |\n")
    out.append(f"\nSelected: `{data['best']}`.\n")
    sweep = load("BENCH_sweep")
    if sweep:
        out.append(
            f"\nSweep wall-clock (`bench_sweep_parallel.py`, "
            f"{sweep['settings']} settings x {sweep['folds']} folds = "
            f"{sweep['total_fold_runs']} fold runs): serial "
            f"{sweep['serial_seconds']:.1f} s vs parallel "
            f"{sweep['parallel_seconds']:.1f} s with "
            f"`n_jobs={sweep['n_jobs']}` ({sweep['speedup']}x, "
            f"{sweep['cpu_count']} CPU(s) visible; rankings bit-for-bit "
            f"equal).  The (setting x fold) pool scales with physical "
            f"cores — on a single-CPU substrate it can only break even.\n"
        )
    return "".join(out)


def render_distribution(name: str, title: str, artifact: str) -> str:
    data = load(artifact)
    out = [f"\n## {title}\n"]
    if not data:
        return "".join(out) + missing(title)
    out.append(f"Synthetic corpus of {data['total_synthetic']} samples "
               f"mirroring the paper's {data['total_paper']}-sample "
               f"distribution:\n\n| family | paper count | synthetic count |\n"
               f"|---|---|---|\n")
    for family, paper_count in data["paper_counts"].items():
        out.append(f"| {family} | {paper_count} | "
                   f"{data['synthetic_counts'][family]} |\n")
    return "".join(out)


def render_per_family(artifact: str, title: str, paper_note: str) -> str:
    data = load(artifact)
    out = [f"\n## {title}\n", paper_note + "\n"]
    if not data:
        return "".join(out) + missing(title)
    out.append(f"\nMeasured ({data['cv_folds']}-fold CV): accuracy "
               f"**{data['accuracy']:.4f}**, log-loss "
               f"**{data['log_loss']:.4f}**, macro-F1 "
               f"**{data['macro_f1']:.4f}**.\n\n")
    out.append("| family | paper F1 | measured F1 | measured P | measured R |\n")
    out.append("|---|---|---|---|---|\n")
    paper_f1 = data["paper_f1"]
    for row in data["per_family"]:
        family = row["family"]
        out.append(f"| {family} | {paper_f1.get(family, float('nan')):.4f} | "
                   f"{row['f1']:.4f} | {row['precision']:.4f} | "
                   f"{row['recall']:.4f} |\n")
    if "weak_family_mean_f1" in data:
        out.append(f"\nWeak quartet (Ldpinch/Lmir/Rbot/Sdbot) mean F1 "
                   f"{data['weak_family_mean_f1']:.3f} vs strong-family mean "
                   f"{data['strong_family_mean_f1']:.3f} — the paper's "
                   f"small-family degradation reproduces.\n")
    return "".join(out)


def render_table4() -> str:
    data = load("table4_comparison")
    out = ["\n## Table IV — method comparison on MSKCFG\n"]
    out.append("Paper: GBT w/ heavy feature engineering best log-loss "
               "(0.0197) and accuracy (99.42%); MAGIC second-best log-loss "
               "(0.0543) at 99.25%; autoencoder+GBT and Strand behind.\n")
    if not data:
        return "".join(out) + missing("Table IV")
    out.append("\n| approach | paper log-loss | paper acc | measured "
               "log-loss | measured acc |\n|---|---|---|---|---|\n")
    for name, measured in sorted(
        data["measured"].items(), key=lambda kv: kv[1]["log_loss"]
    ):
        paper = data["paper"].get(name, {})
        paper_ll = (f"{paper['log_loss']:.4f}"
                    if paper.get("log_loss") else "n/r")
        paper_acc = f"{paper['accuracy']:.2f}%" if paper else "n/r"
        out.append(f"| {name} | {paper_ll} | {paper_acc} | "
                   f"{measured['log_loss']:.4f} | "
                   f"{100 * measured['accuracy']:.2f}% |\n")
    out.append("\nShape held: the engineered-feature tree ensembles and "
               "MAGIC form the top tier; Strand trails badly on log-loss.\n")
    return "".join(out)


def render_fig11() -> str:
    data = load("fig11_esvc_comparison")
    out = ["\n## Figure 11 — MAGIC vs ESVC on YANCFG\n"]
    out.append("Paper: MAGIC beats the chained-SVM ensemble on 10 of 12 "
               "malware families (Benign not reported), biggest absolute "
               "gains ≥ 0.2 on Bagle, Koobface, Ldpinch, Lmir; small "
               "regression on Rbot.\n")
    if not data:
        return "".join(out) + missing("Figure 11")
    out.append(f"\nMeasured: MAGIC wins on **{data['magic_wins']}/"
               f"{data['families_compared']}** families.\n\n")
    out.append("| family | MAGIC F1 | ESVC F1 | absolute Δ |\n|---|---|---|---|\n")
    for family, delta in data["absolute_improvement"].items():
        out.append(f"| {family} | {data['magic_f1'][family]:.3f} | "
                   f"{data['esvc_f1'][family]:.3f} | {delta:+.3f} |\n")
    return "".join(out)


def render_overhead() -> str:
    data = load("overhead")
    out = ["\n## Section V-E — execution overhead\n"]
    out.append("Paper (GPU + IDA Pro): ACFG build ~5.8 s/sample; training "
               "29.69±4.90 ms/instance; prediction 11.33±1.35 ms/instance.\n")
    if not data:
        return "".join(out) + missing("overhead")
    out.append(f"\nMeasured (CPU, numpy engine): ACFG build "
               f"{data['feature_ms_per_sample']:.2f} ms/sample; training "
               f"{data['train_ms_per_instance']:.2f} ms/instance; prediction "
               f"{data['predict_ms_per_instance']:.2f} ms/instance — "
               f"comfortably 'actionable for online malware "
               f"classification'.\n")
    return "".join(out)


def render_ablations() -> str:
    out = ["\n## Ablations (DESIGN.md §5)\n"]
    pooling = load("ablation_pooling")
    if pooling:
        out.append("\n**Pooling architecture** (3-fold CV, identical "
                   "conditions):\n\n| architecture | val loss | accuracy | "
                   "macro F1 |\n|---|---|---|---|\n")
        for name, row in pooling.items():
            out.append(f"| {name} | {row['score']:.4f} | "
                       f"{row['accuracy']:.3f} | {row['macro_f1']:.3f} |\n")
    normalization = load("ablation_normalization")
    if normalization:
        out.append("\n**Degree normalization** (Eq. 1's D̂⁻¹Â vs raw Â):\n\n"
                   "| propagation | val loss | accuracy | macro F1 |\n"
                   "|---|---|---|---|\n")
        for name, row in normalization.items():
            out.append(f"| {name} | {row['score']:.4f} | "
                       f"{row['accuracy']:.3f} | {row['macro_f1']:.3f} |\n")
    throughput = load("throughput_batching")
    if throughput:
        memoized = throughput.get("batched_memoized_ms")
        memoized_note = (
            f", {memoized:.1f} ms with memoized collate" if memoized else ""
        )
        out.append(f"\n**Propagation batching**: per-graph dense reference "
                   f"{throughput['per_graph_ms']:.1f} ms vs block-diagonal "
                   f"sparse {throughput['batched_ms']:.1f} ms per "
                   f"{throughput['batch_size']}-graph batch "
                   f"(ratio {throughput['ratio']:.2f}x{memoized_note}) — "
                   f"the batched path is the production default; the "
                   f"per-graph loop survives only as the equivalence-test "
                   f"reference.\n")
    if len(out) == 1:
        out.append(missing("ablations"))
    return "".join(out)


def render_interpretations() -> str:
    return """
## Interpretation choices recorded

* **AMP grid from the pooling ratio** — Table II reuses one "Pooling
  Ratio" axis for both architectures.  For SortPooling it selects ``k``
  as a graph-size quantile (the reference DGCNN rule); for adaptive
  pooling we map ratio → output grid via ``max(2, round(10·ratio))``
  (0.2 → 2×2, 0.64 → 6×6; Figure 6 illustrates 3×3).
* **Benchmark-scale protocol** — 5-fold CV, 30 epochs, Adam lr 3e-3,
  batch 10, L2 1e-4, the paper's LR/10-after-2-increases rule, model
  selected at minimum fold-averaged validation loss.
* **Table IV baselines** — reimplemented method *classes* (GBT, RF,
  AE+GBT, n-gram sequence similarity, chained NP-SVMs, call-graph RF
  ensembles), not the original codebases; the feature-vector methods
  train on aggregate ACFG features, the call-graph ensemble on hashed
  function descriptors.
* **Training-budget sensitivity** — in the 12-epoch ablation the
  sort-pooling+Conv1D architecture converges fastest; at the full
  30-epoch budget the adaptive-pooling architecture overtakes it (the
  Table III/V runs), consistent with Table II selecting adaptive pooling
  after 100-epoch training.
"""


def main() -> None:
    sections = [
        HEADER,
        render_table1(),
        render_table2(),
        render_distribution("fig7", "Figure 7 — MSKCFG family distribution",
                            "fig7_mskcfg_distribution"),
        render_distribution("fig8", "Figure 8 — YANCFG family distribution",
                            "fig8_yancfg_distribution"),
        render_per_family(
            "table3_fig9_mskcfg_scores",
            "Table III / Figure 9 — per-family scores on MSKCFG",
            "Paper: all nine families with precision/recall > 0.96 and "
            "F1 > 0.97; overall accuracy 99.25%.",
        ),
        render_table4(),
        render_per_family(
            "table5_fig10_yancfg_scores",
            "Table V / Figure 10 — per-family scores on YANCFG",
            "Paper: nine families with F1 > 0.9; Ldpinch (0.59), Sdbot "
            "(0.58), Rbot (0.70), Lmir (0.78) markedly worse.",
        ),
        render_fig11(),
        render_overhead(),
        render_ablations(),
        render_interpretations(),
    ]
    sys.stdout.write("\n".join(section.rstrip() + "\n" for section in sections))


if __name__ == "__main__":
    main()
