"""Throughput: per-graph dense vs block-diagonal sparse propagation.

Engineering benchmark behind ModelConfig.use_batched_propagation's
default.  CFG propagation operators are small and dense (self-loops plus
local edges), so per-graph BLAS matmuls usually beat a merged sparse
product; this bench records the actual ratio on the benchmark corpus so
the default is justified by data, not folklore.
"""

import numpy as np

from repro.core.dgcnn import ModelConfig, build_model
from repro.features.scaling import AttributeScaler

from benchmarks.bench_common import save_result


def _model(use_batched: bool):
    return build_model(
        ModelConfig(
            num_attributes=11,
            num_classes=9,
            pooling="sort_weighted",   # cheapest head: isolates propagation
            graph_conv_sizes=(32, 32, 32, 32),
            sort_k=10,
            hidden_size=32,
            dropout=0.0,
            seed=0,
            use_batched_propagation=use_batched,
        )
    )


def test_throughput_per_graph_vs_batched(benchmark, mskcfg_bench):
    acfgs = AttributeScaler().fit_transform(mskcfg_bench.acfgs)[:48]

    per_graph = _model(False)
    batched = _model(True)
    batched.load_state_dict(per_graph.state_dict())
    per_graph.eval()
    batched.eval()

    # Equivalence before timing.
    np.testing.assert_allclose(
        per_graph(acfgs[:8]).data, batched(acfgs[:8]).data, atol=1e-10
    )

    import time

    def timed(model):
        started = time.perf_counter()
        model(acfgs)
        return time.perf_counter() - started

    per_graph_seconds = min(timed(per_graph) for _ in range(3))
    batched_seconds = min(timed(batched) for _ in range(3))

    print("\nPropagation throughput (48-graph batch, 4 conv layers):")
    print(f"  per-graph dense      : {per_graph_seconds * 1000:7.1f} ms")
    print(f"  block-diagonal sparse: {batched_seconds * 1000:7.1f} ms")
    print(f"  ratio (sparse/dense) : {batched_seconds / per_graph_seconds:.2f}x")

    benchmark(lambda: per_graph(acfgs[:16]))

    save_result("throughput_batching", {
        "per_graph_ms": per_graph_seconds * 1000,
        "batched_ms": batched_seconds * 1000,
        "ratio": batched_seconds / per_graph_seconds,
        "batch_size": len(acfgs),
    })
