"""Throughput: batched sparse default path vs per-graph dense reference.

Engineering benchmark behind the batch-first execution contract.  The
production forward pass runs the graph convolutions once over a
block-diagonal CSR merge of the minibatch (``GraphBatch``); the dense
per-graph loop survives only as ``DgcnnBase.forward_reference`` for
equivalence testing.  This bench keeps the speedup claim measured: it
records the actual ratio on the benchmark corpus, including the effect
of collate memoization (the trainer revisits fixed validation chunks
every epoch).

Historical note: an earlier revision of this bench measured the sparse
path *slower* and used that to justify a per-graph default — the batch
operator was being assembled from dense blocks, so every explicit zero
was stored (~1M "non-zeros" instead of ~14k).  Assembling from the
per-graph cached CSR operators removed that artifact.
"""

import gc
import time

import numpy as np

from repro.core.dgcnn import ModelConfig, build_model
from repro.features.scaling import AttributeScaler
from repro.train.batching import BatchCollator

from benchmarks.bench_common import save_result


def _model():
    return build_model(
        ModelConfig(
            num_attributes=11,
            num_classes=9,
            pooling="sort_weighted",   # cheapest head: isolates propagation
            graph_conv_sizes=(32, 32, 32, 32),
            sort_k=10,
            hidden_size=32,
            dropout=0.0,
            seed=0,
        )
    )


def test_throughput_per_graph_vs_batched(benchmark, mskcfg_bench):
    acfgs = AttributeScaler().fit_transform(mskcfg_bench.acfgs)[:48]

    model = _model()
    model.eval()
    collator = BatchCollator()

    # Equivalence before timing: default path == per-graph reference.
    np.testing.assert_allclose(
        model(acfgs[:8]).data, model.forward_reference(acfgs[:8]).data,
        atol=1e-10,
    )

    # Interleave the contenders round-robin so machine-load drift hits
    # them equally, keep the best round for each; one warm-up round
    # absorbs first-call allocator effects.  GC pauses during timing —
    # the reference path allocates thousands of small cyclic autograd
    # tensors whose collection otherwise lands on whichever contender
    # runs next.
    contenders = {
        "per_graph": lambda: model.forward_reference(acfgs),
        "batched_cold": lambda: model(model.collate(acfgs)),
        "batched_warm": lambda: model(collator(acfgs)),
    }
    best = {name: float("inf") for name in contenders}
    for fn in contenders.values():
        fn()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    gc.collect()
    try:
        for _ in range(7):
            for name, fn in contenders.items():
                started = time.perf_counter()
                fn()
                best[name] = min(best[name], time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()

    per_graph_seconds = best["per_graph"]
    batched_cold_seconds = best["batched_cold"]
    batched_warm_seconds = best["batched_warm"]

    ratio = batched_cold_seconds / per_graph_seconds
    print("\nPropagation throughput (48-graph batch, 4 conv layers):")
    print(f"  per-graph dense reference : {per_graph_seconds * 1000:7.1f} ms")
    print(f"  batched sparse (cold)     : {batched_cold_seconds * 1000:7.1f} ms")
    print(f"  batched sparse (memoized) : {batched_warm_seconds * 1000:7.1f} ms")
    print(f"  ratio (batched/per-graph) : {ratio:.2f}x")

    # The batch-first default must never regress behind the old
    # per-graph default (small tolerance absorbs timer noise); the
    # memoized path is what Trainer actually runs, so it gets the
    # tighter bound.
    assert batched_cold_seconds <= per_graph_seconds * 1.10, (
        f"batched path regressed: {batched_cold_seconds * 1000:.1f} ms vs "
        f"per-graph {per_graph_seconds * 1000:.1f} ms"
    )
    assert batched_warm_seconds <= per_graph_seconds * 1.05, (
        f"memoized batched path regressed: "
        f"{batched_warm_seconds * 1000:.1f} ms vs "
        f"per-graph {per_graph_seconds * 1000:.1f} ms"
    )

    benchmark(lambda: model(collator(acfgs[:16])))

    save_result("throughput_batching", {
        "per_graph_ms": per_graph_seconds * 1000,
        "batched_ms": batched_cold_seconds * 1000,
        "batched_memoized_ms": batched_warm_seconds * 1000,
        "ratio": ratio,
        "batch_size": len(acfgs),
    })
