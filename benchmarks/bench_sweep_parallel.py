"""Sweep engine: process-pool parallel grid search vs the serial loop.

Engineering benchmark behind the parallel sweep engine
(``repro.train.sweep``).  The paper's Table II selection is 208 settings
x 5 folds = 1040 independent training runs; the sweep executor fans the
(setting x fold) product over ``n_jobs`` worker processes.  This bench
times a reduced grid both ways, *verifies the parallel ranking and
per-fold validation losses are bit-for-bit equal to the serial ones*,
and persists the measurement to ``output/BENCH_sweep.json``.

The speedup is bounded by physical parallelism: on a single-CPU
substrate the pool adds fork/pickle overhead and can only break even,
so the artifact records ``cpu_count`` alongside the timings and the
honest ``parallel_faster`` verdict for the machine that ran it.

Run standalone::

    PYTHONPATH=src:. python benchmarks/bench_sweep_parallel.py \
        --settings 4 --n-jobs 2

or via pytest (reduced scale): ``pytest benchmarks/bench_sweep_parallel.py``.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.datasets import generate_mskcfg_dataset
from repro.train import GridSearch, SweepExecutor, reduced_table2_grid, setting_key

from benchmarks.bench_common import save_result


def _search(dataset, folds: int, epochs: int, hidden_size: int, seed: int) -> GridSearch:
    return GridSearch(
        dataset, epochs=epochs, n_splits=folds, hidden_size=hidden_size, seed=seed
    )


def run_bench(
    total: int = 90,
    settings_count: int = 4,
    folds: int = 2,
    epochs: int = 6,
    hidden_size: int = 16,
    n_jobs: int = 2,
    seed: int = 3,
) -> dict:
    dataset = generate_mskcfg_dataset(
        total=total, seed=seed, minimum_per_family=folds + 2
    )
    settings = reduced_table2_grid(limit=settings_count)

    started = time.perf_counter()
    serial = _search(dataset, folds, epochs, hidden_size, seed).run(settings)
    serial_seconds = time.perf_counter() - started

    sweep = SweepExecutor(
        _search(dataset, folds, epochs, hidden_size, seed), n_jobs=n_jobs
    ).run(settings)
    parallel = sweep.grid_result
    parallel_seconds = sweep.wall_seconds

    # Equivalence before timing claims: same ranking, same per-fold
    # validation-loss trajectories, exact float equality.
    assert not sweep.failures, sweep.failures
    serial_rank = [setting_key(e.setting) for e in serial.ranking()]
    parallel_rank = [setting_key(e.setting) for e in parallel.ranking()]
    assert serial_rank == parallel_rank
    for a, b in zip(serial.entries, parallel.entries):
        assert a.score == b.score
        for ha, hb in zip(a.result.fold_histories, b.result.fold_histories):
            assert ha.validation_losses == hb.validation_losses

    payload = {
        "settings": len(settings),
        "folds": folds,
        "epochs": epochs,
        "corpus_size": len(dataset),
        "total_fold_runs": len(settings) * folds,
        "n_jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 3),
        "parallel_faster": parallel_seconds < serial_seconds,
        "bitwise_equivalent": True,
        "best_setting": serial.best.setting.describe(),
    }
    path = save_result("BENCH_sweep", payload)
    print(f"serial  {serial_seconds:7.2f}s")
    print(f"parallel{parallel_seconds:7.2f}s  (n_jobs={n_jobs}, "
          f"{os.cpu_count()} CPUs visible)")
    print(f"speedup {payload['speedup']}x — rankings bit-for-bit equal")
    print(f"written to {path}")
    return payload


def test_sweep_parallel_matches_serial():
    """CI smoke: parallel execution is equivalent; timings are recorded."""
    payload = run_bench(
        total=45, settings_count=4, folds=2, epochs=2, hidden_size=8, n_jobs=2
    )
    assert payload["bitwise_equivalent"]
    assert payload["total_fold_runs"] == 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--total", type=int, default=90)
    parser.add_argument("--settings", type=int, default=4)
    parser.add_argument("--folds", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--hidden-size", type=int, default=16)
    parser.add_argument("--n-jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()
    run_bench(
        total=args.total,
        settings_count=args.settings,
        folds=args.folds,
        epochs=args.epochs,
        hidden_size=args.hidden_size,
        n_jobs=args.n_jobs,
        seed=args.seed,
    )


if __name__ == "__main__":
    main()
