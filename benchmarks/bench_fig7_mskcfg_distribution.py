"""Figure 7 — malware family distribution in the MSKCFG dataset.

Regenerates the family histogram: the synthetic corpus preserves the
real corpus's proportions (Kelihos_ver3 > Lollipop > Ramnit > ... >
Simda), so the figure's shape reproduces at any corpus scale.
"""

from repro.datasets import MSKCFG_FAMILY_COUNTS

from benchmarks.bench_common import save_result


def test_fig7_family_distribution(benchmark, mskcfg_bench):
    counts = benchmark(mskcfg_bench.family_counts)

    print("\nFigure 7 — MSKCFG family distribution (synthetic corpus):")
    for family, count in counts.items():
        print(f"  {family:16s} {count:4d} {'#' * count}")

    # Shape assertions against the real distribution.
    real = MSKCFG_FAMILY_COUNTS
    assert max(counts, key=counts.get) == max(real, key=real.get)  # Kelihos_ver3
    # Simda is the smallest family (possibly tied at the per-family floor).
    assert counts["Simda"] == min(counts.values())
    # Orderings of the three largest families hold.
    assert counts["Kelihos_ver3"] >= counts["Lollipop"] >= counts["Ramnit"]

    save_result("fig7_mskcfg_distribution", {
        "synthetic_counts": counts,
        "paper_counts": real,
        "total_synthetic": sum(counts.values()),
        "total_paper": sum(real.values()),
    })
